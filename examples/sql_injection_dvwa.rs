//! The paper's §V-B case study: hardening DVWA against SQL injection with
//! three frontends at mixed sanitization levels, one shared backend
//! database behind RDDR's **outgoing** request proxy, and CSRF tokens kept
//! working by RDDR's ephemeral-state handling (§IV-B3).
//!
//! ```text
//! cargo run --example sql_injection_dvwa
//! ```

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::dvwa::{seed_dvwa_schema, SQLI_PAYLOAD};
use rddr_repro::httpsim::framework::url_encode;
use rddr_repro::httpsim::{DvwaSim, HttpClient, SecurityLevel};
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::pgsim::{Database, PgServer, PgVersion};
use rddr_repro::protocols::{HttpProtocol, PgProtocol};
use rddr_repro::proxy::{IncomingProxy, OutgoingProxy};

fn token_from(html: &str) -> String {
    html.split("name=\"user_token\" value=\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .expect("CSRF token in page")
        .to_string()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(8);

    // One shared backend database.
    let mut db = Database::new(PgVersion::parse("10.9")?);
    seed_dvwa_schema(&mut db)?;
    let _db = cluster.run_container(
        "dvwa-db-0",
        Image::new("postgres", "10.9"),
        &ServiceAddr::new("db", 5432),
        Arc::new(PgServer::new(db)),
    )?;

    // The outgoing proxy merges and verifies the 3 frontends' queries.
    let outgoing_addr = ServiceAddr::new("rddr-out", 5432);
    let outgoing = OutgoingProxy::start(
        Arc::new(cluster.net()),
        &outgoing_addr,
        ServiceAddr::new("db", 5432),
        EngineConfig::builder(3)
            .response_deadline(Duration::from_secs(2))
            .build()?,
        Arc::new(|| Box::new(PgProtocol::new())),
    )?;

    // Three frontends: filter pair unsanitized, third at High sanitization.
    let mut frontends = Vec::new();
    for (i, (level, seed)) in [
        (SecurityLevel::Low, 1u64),
        (SecurityLevel::Low, 2),
        (SecurityLevel::High, 3),
    ]
    .into_iter()
    .enumerate()
    {
        frontends.push(cluster.run_container(
            format!("dvwa-{i}"),
            Image::new("dvwa", "v1"),
            &ServiceAddr::new("dvwa", 8000 + i as u16),
            Arc::new(DvwaSim::new(level, outgoing_addr.clone(), seed)),
        )?);
    }

    // And the incoming proxy in front (CSRF capture + response diffing).
    let incoming = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr-dvwa", 80),
        (0..3).map(|i| ServiceAddr::new("dvwa", 8000 + i)).collect(),
        EngineConfig::builder(3)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(2))
            .build()?,
        Arc::new(|| Box::new(HttpProtocol::new())),
    )?;

    let net = cluster.net();

    // --- benign flow ---------------------------------------------------------
    let mut user = HttpClient::connect(&net, &ServiceAddr::new("rddr-dvwa", 80))?;
    let page = user.get("/vuln/sqli")?;
    let token = token_from(&page.body_text());
    println!("got SQLi demo page; RDDR captured the per-instance CSRF tokens");
    println!("client sees one token: {token}");
    let result = user.get(&format!("/vuln/sqli/run?id=3&user_token={token}"))?;
    println!(
        "benign lookup (id=3): status {}\n{}",
        result.status,
        result.body_text()
    );

    // --- exploit ---------------------------------------------------------------
    println!("launching injection: id={SQLI_PAYLOAD:?}");
    let mut attacker = HttpClient::connect(&net, &ServiceAddr::new("rddr-dvwa", 80))?;
    let page = attacker.get("/vuln/sqli")?;
    let token = token_from(&page.body_text());
    match attacker.get(&format!(
        "/vuln/sqli/run?id={}&user_token={token}",
        url_encode(SQLI_PAYLOAD)
    )) {
        Err(_) => println!("connection severed — injection blocked"),
        Ok(resp) => {
            let text = resp.body_text();
            assert!(
                !text.contains("Pablo"),
                "the full table dump must never reach the attacker"
            );
            println!(
                "injection answered with status {} and no row dump",
                resp.status
            );
        }
    }
    println!("\noutgoing proxy stats: {:?}", outgoing.stats());
    println!("incoming proxy stats: {:?}", incoming.stats());
    Ok(())
}
