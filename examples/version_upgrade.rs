//! The paper's first motivating scenario (§II): "running the old and new
//! versions in parallel while checking for consistency" during a software
//! update — mitigating both the original bug *and* any bug the patch
//! introduces, reducing the attack surface to their intersection.
//!
//! Here nginx 1.13.2 (vulnerable to CVE-2017-7529) runs next to 1.13.4
//! (patched) behind RDDR, with a known-variance rule covering the version
//! banners (§IV-B4).
//!
//! ```text
//! cargo run --example version_upgrade
//! ```

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::{EngineConfig, VarianceRule, VarianceRules};
use rddr_repro::httpsim::{HttpClient, NginxSim, NginxVersion};
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::protocols::HttpProtocol;
use rddr_repro::proxy::IncomingProxy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for (i, version) in ["1.13.2", "1.13.4"].iter().enumerate() {
        let server = NginxSim::file_server(NginxVersion::parse(version));
        server.publish(
            "/report.html",
            b"<html>quarterly numbers</html>".to_vec(),
            b"ADJACENT-CACHE: another user's session".to_vec(),
        );
        handles.push(cluster.run_container(
            format!("nginx-{i}"),
            Image::new("nginx", *version),
            &ServiceAddr::new("nginx", 8000 + i as u16),
            Arc::new(server),
        )?);
        println!("deployed nginx:{version} (image tag selects the version, §V-D)");
    }

    // Version banners differ by design: configure known variance for them.
    let mut variance = VarianceRules::new();
    variance.push(VarianceRule::new("http:header:server", "*")?);

    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr-nginx", 80),
        vec![
            ServiceAddr::new("nginx", 8000),
            ServiceAddr::new("nginx", 8001),
        ],
        EngineConfig::builder(2)
            .variance(variance)
            .response_deadline(Duration::from_secs(2))
            .build()?,
        Arc::new(|| Box::new(HttpProtocol::new())),
    )?;
    let net = cluster.net();

    // Benign: plain requests and valid ranges agree across versions.
    let mut client = HttpClient::connect(&net, &ServiceAddr::new("rddr-nginx", 80))?;
    let page = client.get("/report.html")?;
    println!(
        "\nbenign GET: status {} ({} bytes)",
        page.status,
        page.body.len()
    );
    let mut client = HttpClient::connect(&net, &ServiceAddr::new("rddr-nginx", 80))?;
    client.send_raw(b"GET /report.html HTTP/1.1\r\nHost: n\r\nRange: bytes=0-5\r\n\r\n")?;
    let partial = client.read_response()?;
    println!(
        "benign range: status {} body {:?}",
        partial.status,
        partial.body_text()
    );

    // The CVE-2017-7529 exploit: only 1.13.2 leaks, so RDDR intervenes.
    println!("\nsending the overflowing Range header ...");
    let mut attacker = HttpClient::connect(&net, &ServiceAddr::new("rddr-nginx", 80))?;
    attacker.send_raw(
        b"GET /report.html HTTP/1.1\r\nHost: n\r\nRange: bytes=-9223372036854775608\r\n\r\n",
    )?;
    match attacker.read_response() {
        Err(_) => println!("connection severed — the cache leak never left the deployment"),
        Ok(resp) => {
            assert!(!resp.body_text().contains("ADJACENT-CACHE"));
            println!("answered {} with no leaked bytes", resp.status);
        }
    }
    println!("proxy stats: {:?}", proxy.stats());
    Ok(())
}
