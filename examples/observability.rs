//! Observability: watch a poisoned N-versioned deployment through the
//! telemetry admin endpoint.
//!
//! Three diverse instances of a line service run behind the RDDR incoming
//! proxy on the in-memory fabric; one variant leaks extra bytes on `login`
//! lines. After a benign exchange and one severed divergence, the admin
//! endpoint is served on a real TCP port so any HTTP client can inspect
//! the deployment:
//!
//! ```text
//! cargo run --example observability
//! curl http://127.0.0.1:<port>/healthz
//! curl http://127.0.0.1:<port>/metrics
//! curl http://127.0.0.1:<port>/divergences
//! ```
//!
//! `RDDR_ADMIN_SECS` (default 10) controls how long the endpoint stays up.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::EngineConfig;
use rddr_repro::net::{Network, ServiceAddr, Stream, TcpNet};
use rddr_repro::orchestra::{Cluster, FnService, Image, Service};
use rddr_repro::proxy::{n_version_with_telemetry, ProxyTelemetry, Variant};
use rddr_repro::telemetry::AdminServer;

/// A line-echo service; when `leaky`, lines containing `login` come back
/// with extra bytes appended — the divergence RDDR is there to catch.
fn echo(leaky: bool) -> Arc<dyn Service> {
    Arc::new(FnService::new("echo", move |mut conn, _ctx| {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        loop {
            match conn.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                let mut reply = line[..line.len() - 1].to_vec();
                if leaky && reply.windows(5).any(|w| w == b"login") {
                    reply.extend_from_slice(b" token=hunter2");
                }
                reply.push(b'\n');
                if conn.write_all(&reply).is_err() {
                    return;
                }
            }
        }
    }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Three diverse variants behind the proxy; the third one leaks.
    let cluster = Cluster::new(4);
    let telemetry = ProxyTelemetry::new("demo");
    let service = n_version_with_telemetry(
        &cluster,
        "demo",
        &ServiceAddr::new("demo", 8000),
        vec![
            Variant::new(Image::new("demo", "v1"), echo(false)),
            Variant::new(Image::new("demo", "v2"), echo(false)),
            Variant::new(Image::new("demo", "evil"), echo(true)),
        ],
        EngineConfig::builder(3).build()?,
        Arc::new(|| Box::new(LineProtocol::new())),
        telemetry.clone(),
    )?;

    // 2. A benign exchange passes; the poisoned one is severed and audited.
    let mut conn = cluster.net().dial(&service.addr)?;
    conn.write_all(b"ping\n")?;
    let mut reply = [0u8; 5];
    conn.read_exact(&mut reply)?;
    println!("benign exchange: {:?}", String::from_utf8_lossy(&reply));

    let mut victim = cluster.net().dial(&service.addr)?;
    victim.write_all(b"login alice\n")?;
    let mut buf = [0u8; 1];
    match victim.read(&mut buf) {
        Ok(0) | Err(_) => println!("poisoned exchange: severed before any leak"),
        Ok(_) => println!("poisoned exchange: unexpectedly answered"),
    }
    std::thread::sleep(Duration::from_millis(50));
    println!("audited divergences: {}", telemetry.audit.len());

    // 3. Publish the instance containers' resource meters as gauges.
    for container in &service.containers {
        // Prometheus metric names forbid '-', so "demo-0" becomes "demo_0".
        let prefix = container.name().replace('-', "_");
        container
            .meter()
            .export_gauges(&telemetry.registry, &prefix);
    }

    // 4. Serve the admin endpoint on a real TCP port for external clients.
    let net: Arc<dyn Network> = Arc::new(TcpNet::new());
    let admin = AdminServer::serve(
        net,
        &ServiceAddr::new("127.0.0.1", 0),
        Arc::clone(&telemetry.registry),
        Arc::clone(&telemetry.audit),
    )?;
    println!("admin endpoint: http://{}", admin.addr());
    println!("routes: /healthz /metrics /divergences");

    let secs: u64 = std::env::var("RDDR_ADMIN_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    std::thread::sleep(Duration::from_secs(secs));
    admin.shutdown();
    Ok(())
}
