//! The paper's motivating deployment (Figure 1): a DeathStarBench-style
//! social network where only the two most exposed services — Search and
//! Compose Post — are 3-versioned behind RDDR, keeping the overhead at a
//! fraction of whole-deployment N-versioning (§II).
//!
//! ```text
//! cargo run --example social_network
//! ```

use rddr_repro::httpsim::HttpClient;
use rddr_repro::orchestra::Cluster;

// The deployment builders live in the benchmark harness crate's `social`
// module; this example re-creates them inline against the public API so it
// stands alone.
use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::{HttpResponse, HttpService};
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::Image;
use rddr_repro::protocols::HttpProtocol;
use rddr_repro::proxy::IncomingProxy;

const SERVICES: &[&str] = &[
    "frontend-logic",
    "compose-post",
    "search",
    "user-service",
    "home-timeline",
    "social-graph",
    "url-shorten",
    "media",
    "user-storage",
    "post-storage",
    "home-timeline-storage",
    "social-graph-storage",
];
const PROTECTED: &[&str] = &["search", "compose-post"];

fn stub(name: &'static str) -> Arc<HttpService> {
    Arc::new(HttpService::new(name).route("GET", "/", move |req, _ctx| {
        HttpResponse::ok(format!("{name}: {}", req.path))
    }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(8);
    let n = 3;
    let mut containers = Vec::new();
    let mut proxies = Vec::new();
    let mut entrypoints = Vec::new();

    for (i, name) in SERVICES.iter().enumerate() {
        let base_port = 8000 + (i as u16) * 10;
        if PROTECTED.contains(name) {
            // N diverse instances + an RDDR incoming proxy.
            for k in 0..n as u16 {
                containers.push(cluster.run_container(
                    format!("{name}-{k}"),
                    Image::new(*name, format!("v{}", k + 1)),
                    &ServiceAddr::new(*name, base_port + 1 + k),
                    stub(name),
                )?);
            }
            let entry = ServiceAddr::new(*name, base_port);
            proxies.push(IncomingProxy::start(
                Arc::new(cluster.net()),
                &entry,
                (0..n as u16)
                    .map(|k| ServiceAddr::new(*name, base_port + 1 + k))
                    .collect(),
                EngineConfig::builder(n)
                    .response_deadline(Duration::from_secs(2))
                    .build()?,
                Arc::new(|| Box::new(HttpProtocol::new())),
            )?);
            entrypoints.push((*name, entry));
        } else {
            let entry = ServiceAddr::new(*name, base_port);
            containers.push(cluster.run_container(
                format!("{name}-0"),
                Image::new(*name, "v1"),
                &entry,
                stub(name),
            )?);
            entrypoints.push((*name, entry));
        }
    }

    let plain_count = SERVICES.len();
    let extra = containers.len() - plain_count;
    println!("social network: {} logical services", SERVICES.len());
    println!(
        "containers: {} (plain would be {plain_count}, +{extra} for RDDR)",
        containers.len()
    );
    println!(
        "overhead: {:.0}% for micro-versioning {:?} vs {:.0}% for whole-deployment {n}-versioning",
        100.0 * extra as f64 / plain_count as f64,
        PROTECTED,
        100.0 * (n as f64 - 1.0) * plain_count as f64 / plain_count as f64,
    );

    // Every entry point answers; protected ones flow through RDDR.
    let net = cluster.net();
    for (name, addr) in &entrypoints {
        let mut client = HttpClient::connect(&net, addr)?;
        let resp = client.get("/")?;
        let via = if PROTECTED.contains(name) {
            " (via RDDR)"
        } else {
            ""
        };
        println!("  {name:<22} -> {}{via}", resp.status);
    }
    Ok(())
}
