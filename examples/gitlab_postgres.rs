//! The paper's §V-F case study (Figure 3): GitLab with its Postgres module
//! 3-versioned behind RDDR — versions 10.7, 10.7 (filter pair) and 10.9 —
//! mitigating CVE-2019-10130 while every benign GitLab flow keeps working.
//!
//! ```text
//! cargo run --example gitlab_postgres
//! ```

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::framework::url_encode;
use rddr_repro::httpsim::gitlab::{deploy_gitlab, seed_gitlab_schema};
use rddr_repro::httpsim::HttpClient;
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::pgsim::{Database, PgServer, PgVersion};
use rddr_repro::protocols::PgProtocol;
use rddr_repro::proxy::IncomingProxy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(8);

    // Three Postgres instances: buggy filter pair (10.7) + fixed (10.9).
    let mut handles = Vec::new();
    for (i, version) in ["10.7", "10.7", "10.9"].iter().enumerate() {
        let mut db = Database::new(PgVersion::parse(version)?);
        seed_gitlab_schema(&mut db)?;
        handles.push(cluster.run_container(
            format!("gitlab-postgres-{i}"),
            Image::new("postgres", *version),
            &ServiceAddr::new("pg", 5432 + i as u16),
            Arc::new(PgServer::new(db)),
        )?);
        println!("started postgres:{version} as gitlab-postgres-{i}");
    }

    // RDDR's incoming proxy is what GitLab sees as "the database".
    let db_addr = ServiceAddr::new("gitlab-postgres", 5432);
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &db_addr,
        (0..3).map(|i| ServiceAddr::new("pg", 5432 + i)).collect(),
        EngineConfig::builder(3)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(3))
            .build()?,
        Arc::new(|| Box::new(PgProtocol::new())),
    )?;

    let gitlab = deploy_gitlab(&cluster, db_addr)?;
    println!(
        "GitLab composite up: {} containers + RDDR\n",
        gitlab.containers.len() + 3
    );

    // Benign flows: sign in, create a project, list projects.
    let net = cluster.net();
    let mut user = HttpClient::connect(&net, &gitlab.addrs.workhorse)?;
    let page = user.get("/users/sign_in")?;
    let token = page
        .body_text()
        .split("value=\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .expect("authenticity token")
        .to_string();
    let welcome = user.post(
        "/users/sign_in",
        &format!("user=ada&password=pw&authenticity_token={token}"),
    )?;
    println!("sign-in: {}", welcome.body_text().trim());
    user.post("/projects", "name=n-version-everything")?;
    let projects = user.get("/projects")?;
    println!("projects page served, {} bytes", projects.body.len());

    // The exploit (Listing 2), via the assumed frontend SQL injection.
    println!("\nlaunching CVE-2019-10130 exploit ...");
    let statements = [
        "CREATE FUNCTION op_leak(int, int) RETURNS bool \
         AS 'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' \
         LANGUAGE plpgsql",
        "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, \
         restrict=scalarltsel)",
        "SELECT * FROM user_secrets WHERE secret_level <<< 1000",
    ];
    for (i, sql) in statements.iter().enumerate() {
        let mut attacker = HttpClient::connect(&net, &gitlab.addrs.workhorse)?;
        match attacker.get(&format!("/api/v4/sql?q={}", url_encode(sql))) {
            Ok(resp) => {
                let text = resp.body_text();
                assert!(
                    !text.contains("ROOT-ADMIN"),
                    "protected rows must never reach the attacker"
                );
                println!(
                    "  step {}: status {} ({} bytes)",
                    i + 1,
                    resp.status,
                    text.len()
                );
                if resp.status == 500 {
                    println!("  => RDDR severed the database connection: leak blocked");
                    break;
                }
            }
            Err(_) => {
                println!("  step {}: connection severed — leak blocked", i + 1);
                break;
            }
        }
    }

    // Benign traffic still works afterwards.
    let mut user = HttpClient::connect(&net, &gitlab.addrs.workhorse)?;
    let again = user.get("/projects")?;
    println!(
        "\npost-attack /projects: status {} — GitLab fully operational",
        again.status
    );
    println!("RDDR proxy stats: {:?}", proxy.stats());
    Ok(())
}
