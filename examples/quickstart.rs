//! Quickstart: protect a microservice with RDDR in ~40 lines.
//!
//! We deploy two diverse "user lookup" instances — one has a bug that leaks
//! every user's record when given a crafted id — put RDDR's incoming proxy
//! in front of them, and watch benign traffic flow while the exploit gets
//! severed.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::{HttpResponse, HttpService};
use rddr_repro::net::{ServiceAddr, Stream};
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::proxy::IncomingProxy;

fn lookup_service(vulnerable: bool) -> HttpService {
    HttpService::new("user-lookup").route("GET", "/user", move |req, _ctx| {
        let id = req.param("id").unwrap_or("");
        if vulnerable && id.contains("*") {
            // The bug: a wildcard id dumps the whole table.
            return HttpResponse::ok("alice:secret1\nbob:secret2\ncarol:secret3");
        }
        match id {
            "alice" => HttpResponse::ok("alice:secret1"),
            "bob" => HttpResponse::ok("bob:secret2"),
            _ => HttpResponse::status(404, "no such user"),
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A cluster with two diverse implementations of the same service.
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for (i, vulnerable) in [(0u16, true), (1, false)] {
        handles.push(cluster.run_container(
            format!("lookup-{i}"),
            Image::new("user-lookup", if vulnerable { "impl-a" } else { "impl-b" }),
            &ServiceAddr::new("lookup", 8000 + i),
            Arc::new(lookup_service(vulnerable)),
        )?);
    }

    // 2. RDDR in front: replicate, de-noise, diff, respond.
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr", 80),
        vec![
            ServiceAddr::new("lookup", 8000),
            ServiceAddr::new("lookup", 8001),
        ],
        EngineConfig::builder(2).build()?,
        Arc::new(|| Box::new(rddr_repro::protocols::HttpProtocol::new())),
    )?;
    let net = cluster.net();

    // 3. Benign traffic passes untouched.
    let mut client = rddr_repro::httpsim::HttpClient::connect(&net, &ServiceAddr::new("rddr", 80))?;
    let resp = client.get("/user?id=alice")?;
    println!("benign lookup: {} -> {:?}", resp.status, resp.body_text());
    assert_eq!(resp.body_text(), "alice:secret1");

    // 4. The exploit diverges (only one implementation leaks) — severed.
    let mut attacker =
        rddr_repro::httpsim::HttpClient::connect(&net, &ServiceAddr::new("rddr", 80))?;
    match attacker.get("/user?id=*") {
        Err(_) => println!("exploit: connection severed before any leak"),
        Ok(resp) => {
            assert!(
                !resp.body_text().contains("secret2"),
                "leak must be blocked"
            );
            println!("exploit: answered {} with no leaked rows", resp.status);
        }
    }
    println!("proxy stats: {:?}", proxy.stats());

    // Demonstrate the engine API directly, too.
    let mut engine = rddr_repro::core::NVersionEngine::new(
        EngineConfig::builder(2).build()?,
        LineProtocol::new(),
    );
    let verdict = engine.evaluate_responses(&[b"ok\n".to_vec(), b"ok\nEXTRA\n".to_vec()])?;
    println!("engine verdict on a leaky response pair: {verdict:?}");

    // Keep the line-protocol imports honest (the library API is used above).
    let _ = |mut s: rddr_repro::net::BoxStream| {
        let _ = s.write_all(b"bye");
    };
    Ok(())
}
