//! The paper's §V-E proof of concept: RDDR + OS-generated diversity (ASLR)
//! defeat a pointer leak. Two instances of the *same* echo-server binary
//! get different address-space layouts; the buffer-overflow read leaks a
//! different pointer from each, and the Diff phase severs the connection
//! at step (1) of the exploit chain.
//!
//! ```text
//! cargo run --example aslr_echo
//! ```

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::rest::AslrEchoService;
use rddr_repro::libsim::aslr::BUFFER_SIZE;
use rddr_repro::libsim::AslrEcho;
use rddr_repro::net::{BoxStream, Network, ServiceAddr, Stream};
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::proxy::IncomingProxy;

fn read_line(conn: &mut BoxStream) -> Option<String> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match conn.read(&mut byte) {
            Ok(0) | Err(_) => {
                return (!out.is_empty()).then(|| String::from_utf8_lossy(&out).into_owned())
            }
            Ok(_) if byte[0] == b'\n' => return Some(String::from_utf8_lossy(&out).into_owned()),
            Ok(_) => out.push(byte[0]),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Show the raw leak first: what the attacker would get WITHOUT RDDR.
    let process = AslrEcho::launch(0xbeef);
    println!("single instance, no RDDR:");
    println!("  buffer at    {:#x}", process.buffer_address());
    println!("  leak target  {:#x}", process.adjacent_pointer());
    let overflow = vec![b'A'; BUFFER_SIZE + 8];
    let leaked = process.echo(&overflow);
    println!(
        "  overflow response ends with: …{}",
        String::from_utf8_lossy(&leaked[BUFFER_SIZE..])
    );
    println!("  => the attacker now knows the stack layout.\n");

    // Now the RDDR deployment: two instances, ASLR diversity only.
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for (i, seed) in [(0u16, 101u64), (1, 202)] {
        handles.push(cluster.run_container(
            format!("echo-{i}"),
            Image::new("echo-poc", "v1"),
            &ServiceAddr::new("echo", 7000 + i),
            Arc::new(AslrEchoService::launch(seed)),
        )?);
    }
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr-echo", 7),
        vec![
            ServiceAddr::new("echo", 7000),
            ServiceAddr::new("echo", 7001),
        ],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_secs(2))
            .build()?,
        Arc::new(|| Box::new(LineProtocol::new())),
    )?;
    let net = cluster.net();

    println!("2-version deployment behind RDDR:");
    let mut conn = net.dial(&ServiceAddr::new("rddr-echo", 7))?;
    conn.write_all(b"hello echo\n")?;
    println!("  benign echo: {:?}", read_line(&mut conn));

    let mut attacker = net.dial(&ServiceAddr::new("rddr-echo", 7))?;
    attacker.write_all(&overflow)?;
    attacker.write_all(b"\n")?;
    match read_line(&mut attacker) {
        None => println!("  overflow: connection severed — pointer leak blocked"),
        Some(reply) => {
            let tail = &reply[reply.len().saturating_sub(16)..];
            assert!(
                !tail.bytes().all(|b| b.is_ascii_hexdigit()),
                "a pointer must never reach the attacker"
            );
            println!("  overflow reply carried no pointer: {reply:?}");
        }
    }
    println!("  proxy stats: {:?}", proxy.stats());
    Ok(())
}
