//! Umbrella crate for the RDDR reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` and `DESIGN.md` at the repository root.

pub use rddr_core as core;
pub use rddr_fuzz as fuzz;
pub use rddr_httpsim as httpsim;
pub use rddr_libsim as libsim;
pub use rddr_net as net;
pub use rddr_orchestra as orchestra;
pub use rddr_pgsim as pgsim;
pub use rddr_pgstore as pgstore;
pub use rddr_protocols as protocols;
pub use rddr_proxy as proxy;
pub use rddr_telemetry as telemetry;
pub use rddr_vulns as vulns;
