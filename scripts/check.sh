#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Fully offline: every dependency is vendored in-tree under shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> rddr-analyze (all six passes, stale-baseline check, dispatch + timing gates)"
cargo run --release -p rddr-analyze -- \
  --baseline analyze-baseline.toml --forbid-stale --json BENCH_analyze.json \
  --min-dispatch-edges 1 --max-total-ms 150

echo "==> proxy_hotpath smoke (correctness gate + throughput report)"
cargo run --release -p rddr-bench --bin proxy_hotpath -- --smoke --json BENCH_proxy_smoke.json

echo "==> pgstore_bench smoke (recovery gate + storage throughput report)"
cargo run --release -p rddr-bench --bin pgstore_bench -- --smoke --json BENCH_pgstore_smoke.json

echo "==> fuzz_bench smoke (zero-FP + true-positive gates) and fuzz-under-chaos"
cargo run --release -p rddr-bench --bin fuzz_bench -- --smoke --json BENCH_fuzz_smoke.json
cargo run --release -p rddr-bench --bin fuzz_bench -- --smoke --chaos --json BENCH_fuzz_chaos_smoke.json

echo "==> committed corpus replay + campaign determinism gates"
cargo test --release -q --test fuzz_replay

echo "==> chaos + crash-recovery suites under the three CI seeds"
for seed in 1 271828 3141592653; do
  echo "    seed $seed"
  RDDR_CHAOS_SEED=$seed cargo test -q --test chaos
  RDDR_CHAOS_SEED=$seed cargo test -q --test recovery_chaos
done

echo "OK"
