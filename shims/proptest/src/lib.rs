//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the RDDR test-suite uses: the [`proptest!`] macro
//! (with `pattern in strategy` argument syntax), `prop_assert*`/[`prop_assume!`],
//! uniform range strategies, regex-subset string strategies, `any::<T>()`,
//! tuple strategies, and `collection::{vec, btree_map}`.
//!
//! Cases are generated from a seed derived from the test name, so failures
//! are reproducible run to run. Shrinking is not implemented — a failing
//! case panics with the generated inputs' debug rendering via the assertion
//! message instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
mod pattern;

/// How a generated case ended, mirroring proptest's `TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An explicit `prop_assert*` failure.
    Fail(String),
    /// The case was vetoed by `prop_assume!` and should not count.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of values for one `proptest!` argument.
///
/// Unlike upstream proptest there is no intermediate value tree: strategies
/// produce final values directly from the runner's RNG.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String strategies: a `&str` is interpreted as a regex subset — a sequence
/// of atoms (`.`, `[class]`, literal chars), each with an optional `{m,n}`
/// or `{n}` counted repetition.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        pattern::Pattern::parse(self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Marker strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the full-range strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, i8, i16, i32);

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut StdRng) -> u64 {
        use rand::RngCore;
        rng.next_u64()
    }
}

impl Strategy for Any<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut StdRng) -> i64 {
        use rand::RngCore;
        rng.next_u64() as i64
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Number of passing cases each property must accumulate.
const DEFAULT_CASES: usize = 64;

/// Runs `body` until `DEFAULT_CASES` cases pass, panicking on the first
/// failure. Rejected cases (via `prop_assume!`) are retried, with a cap so a
/// pathological assumption cannot loop forever.
pub fn run_cases<F>(name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    while passed < DEFAULT_CASES {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 4096,
                    "property {name}: too many rejected cases ({rejected}); \
                     prop_assume! is vetoing nearly every input"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed on case {passed} (seed {seed}, \
                     rerun with PROPTEST_SEED={seed}): {msg}"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Defines property tests. Each function body runs repeatedly with inputs
/// generated from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    #[allow(unreachable_code)]
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )+
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Vetoes the current case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -5i64..=5) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn string_patterns_shape(s in "[a-z]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {} of {s:?}", s.len());
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_generate_pairwise((a, b) in (0i64..10, 10i64..20)) {
            prop_assert!(a < b);
        }
    }

    #[test]
    fn btree_map_reaches_target_len() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let m = collection::btree_map(0i64..1000, "[a-z]{1,4}", 1..20).generate(&mut rng);
            assert!((1..20).contains(&m.len()));
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_panic_with_seed() {
        run_cases("always_fails", |_| Err(TestCaseError::fail("nope")));
    }
}
