//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "vec strategy with empty size range");
    VecStrategy { element, size }
}

/// Strategy for `BTreeMap<K, V>` with a target size drawn from `size`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let target = rng.gen_range(self.size.clone());
        let mut map = BTreeMap::new();
        // Duplicate keys collapse, so allow extra draws before settling for
        // a smaller map (matches proptest, which also under-fills when the
        // key space is narrow).
        let mut attempts = target * 8 + 16;
        while map.len() < target && attempts > 0 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts -= 1;
        }
        map
    }
}

/// `proptest::collection::btree_map(key, value, size)`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    assert!(!size.is_empty(), "btree_map strategy with empty size range");
    BTreeMapStrategy { key, value, size }
}
