//! Regex-subset parser backing string strategies.
//!
//! Supported syntax — the shapes actually used by the workspace's property
//! tests: literal characters, `.` (printable ASCII), `[a-z0-9_]`-style
//! classes (with `\n`/`\t`/`\\`-style escapes), and a trailing `{n}` or
//! `{m,n}` counted repetition on any atom. Alternation, anchors, `*`/`+`/`?`
//! and groups are not supported and panic at parse time so a typo fails
//! loudly rather than generating garbage.

use rand::rngs::StdRng;
use rand::Rng;

/// One generatable unit of the pattern.
enum Atom {
    /// A fixed character.
    Literal(char),
    /// `.`: any printable ASCII character (space through `~`).
    AnyPrintable,
    /// `[...]`: a union of inclusive character ranges.
    Class(Vec<(char, char)>),
}

impl Atom {
    fn generate(&self, rng: &mut StdRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::AnyPrintable => rng.gen_range(b' '..=b'~') as char,
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                let mut pick = rng.gen_range(0u32..total);
                for &(a, b) in ranges {
                    let size = b as u32 - a as u32 + 1;
                    if pick < size {
                        return char::from_u32(a as u32 + pick)
                            .expect("class ranges hold valid chars");
                    }
                    pick -= size;
                }
                unreachable!("pick < total by construction")
            }
        }
    }
}

/// A parsed pattern: atoms with repetition bounds.
pub struct Pattern {
    parts: Vec<(Atom, u32, u32)>,
}

impl Pattern {
    /// Parses `src`, panicking on unsupported syntax.
    pub fn parse(src: &str) -> Pattern {
        let chars: Vec<char> = src.chars().collect();
        let mut i = 0;
        let mut parts = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1, src);
                    i = next;
                    class
                }
                '.' => {
                    i += 1;
                    Atom::AnyPrintable
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in pattern {src:?}");
                    i += 2;
                    Atom::Literal(unescape(chars[i - 1]))
                }
                c @ ('*' | '+' | '?' | '(' | ')' | '|' | '^' | '$') => {
                    panic!("pattern {src:?}: unsupported regex operator {c:?}")
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let (bounds, next) = parse_repeat(&chars, i + 1, src);
                i = next;
                bounds
            } else {
                (1, 1)
            };
            parts.push((atom, min, max));
        }
        Pattern { parts }
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in &self.parts {
            let count = if min == max {
                *min
            } else {
                rng.gen_range(*min..=*max)
            };
            for _ in 0..count {
                out.push(atom.generate(rng));
            }
        }
        out
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parses a `[...]` class body starting just past the `[`. Returns the atom
/// and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, src: &str) -> (Atom, usize) {
    let mut ranges: Vec<(char, char)> = Vec::new();
    loop {
        assert!(
            i < chars.len(),
            "unterminated character class in pattern {src:?}"
        );
        match chars[i] {
            ']' => return (Atom::Class(merge_singletons(ranges)), i + 1),
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "dangling escape in class, pattern {src:?}"
                );
                let c = unescape(chars[i + 1]);
                ranges.push((c, c));
                i += 2;
            }
            c => {
                // `a-z` range, unless the '-' is last-in-class (then literal).
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (c, chars[i + 2]);
                    assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {src:?}");
                    ranges.push((lo, hi));
                    i += 3;
                } else {
                    ranges.push((c, c));
                    i += 1;
                }
            }
        }
    }
}

/// Collapses duplicate singleton entries so class sampling stays uniform-ish;
/// overlapping ranges are left as-is (slight over-weighting is acceptable for
/// test generation).
fn merge_singletons(mut ranges: Vec<(char, char)>) -> Vec<(char, char)> {
    ranges.sort_unstable();
    ranges.dedup();
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

/// Parses `{n}` or `{m,n}` starting just past the `{`. Returns the bounds and
/// the index just past the `}`.
fn parse_repeat(chars: &[char], mut i: usize, src: &str) -> ((u32, u32), usize) {
    let read_number = |i: &mut usize| -> u32 {
        let start = *i;
        while *i < chars.len() && chars[*i].is_ascii_digit() {
            *i += 1;
        }
        assert!(
            *i > start,
            "expected digits in repetition of pattern {src:?}"
        );
        chars[start..*i]
            .iter()
            .collect::<String>()
            .parse()
            .expect("digits parse")
    };
    let min = read_number(&mut i);
    let max = if i < chars.len() && chars[i] == ',' {
        i += 1;
        read_number(&mut i)
    } else {
        min
    };
    assert!(
        i < chars.len() && chars[i] == '}',
        "unterminated repetition in pattern {src:?}"
    );
    assert!(
        min <= max,
        "inverted repetition {{{min},{max}}} in pattern {src:?}"
    );
    ((min, max), i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(pat: &str, seed: u64) -> String {
        Pattern::parse(pat).generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(gen("abc", 0), "abc");
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        for seed in 0..50 {
            let s = gen("[a-zA-Z0-9 \\\\\"\n\t]{0,40}", seed);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " \\\"\n\t".contains(c)));
        }
    }

    #[test]
    fn dot_generates_printables() {
        for seed in 0..50 {
            let s = gen(".{5}", seed);
            assert_eq!(s.len(), 5);
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }

    #[test]
    fn counted_repetition_bounds() {
        for seed in 0..100 {
            let len = gen("[01]{2,6}", seed).len();
            assert!((2..=6).contains(&len), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex operator")]
    fn star_is_rejected() {
        Pattern::parse("a*");
    }
}
