//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the RDDR benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — as a simple
//! wall-clock timing harness. Each benchmark is calibrated briefly, then
//! timed over enough iterations to fill a fixed measurement window, and the
//! mean ns/iter is printed. No statistics, plots, or baselines.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(250);

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Just a parameter, rendered as-is.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first calibrating iteration count during a short
    /// warm-up so the measurement window holds many iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up doubles the batch until it fills the warm-up window; that
        // also primes caches and estimates per-iter cost.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                hint_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch = batch.saturating_mul(2);
        };
        let iters = ((MEASURE.as_nanos() as f64 / per_iter.max(1.0)) as u64).max(1);
        let start = Instant::now();
        for _ in 0..iters {
            hint_black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named collection of parameterised benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<48} (no iterations timed)");
    } else {
        println!(
            "{label:<48} {:>12.1} ns/iter ({} iters)",
            bencher.ns_per_iter, bencher.iters
        );
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_a_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let input = vec![1u8, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, i| {
            b.iter(|| i.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}
