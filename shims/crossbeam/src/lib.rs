//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided —
//! the subset the RDDR proxies and SimNet use — implemented over
//! `std::sync::mpsc`, which since Rust 1.72 is itself the crossbeam
//! implementation.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Cloneable.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over received messages until all senders are gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn clone_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send("b").unwrap());
            tx.send("a").unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, ["a", "b"]);
        }

        #[test]
        fn recv_timeout_expires() {
            let (tx, rx) = unbounded::<u8>();
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
            drop(tx);
            assert!(matches!(rx.recv(), Err(RecvError)));
        }
    }
}
