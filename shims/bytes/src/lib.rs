//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace patches `bytes` to this in-tree implementation. Only the subset
//! actually used by the RDDR crates is provided: a growable byte buffer with
//! cheap-enough front splitting (`split_to`), slice deref, and `From<&[u8]>`.
//!
//! The real crate amortizes `split_to` with reference-counted views; here a
//! plain `Vec<u8>` plus a read cursor gives the same O(1) amortized front
//! split without any unsafe code.

use std::fmt;

/// A mutable, growable byte buffer, API-compatible (for the used subset)
/// with `bytes::BytesMut`.
#[derive(Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before `head` have been split off and are logically gone.
    head: usize,
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut {
            data: Vec::new(),
            head: 0,
        }
    }

    /// Creates an empty buffer with at least `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            head: 0,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether no bytes are readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.compact_if_large();
        self.data.extend_from_slice(extend);
    }

    /// Removes and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {at} > {}",
            self.len()
        );
        let front = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        self.compact_if_large();
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// Removes all bytes, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    /// Copies the readable bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Consumes the buffer, returning its readable bytes.
    pub fn freeze(self) -> Vec<u8> {
        if self.head == 0 {
            self.data
        } else {
            self.data[self.head..].to_vec()
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Drops the dead prefix once it dominates the allocation, keeping
    /// `split_to` O(1) amortized.
    fn compact_if_large(&mut self) {
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(bytes: &[u8]) -> Self {
        BytesMut {
            data: bytes.to_vec(),
            head: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, head: 0 }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_removes_prefix() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let front = b.split_to(6);
        assert_eq!(&front[..], b"hello ");
        assert_eq!(&b[..], b"world");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn extend_after_split_sees_only_tail() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        b.split_to(3);
        b.extend_from_slice(b"gh");
        assert_eq!(&b[..], b"defgh");
        assert_eq!(b.to_vec(), b"defgh");
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![7u8; 10_000]);
        b.split_to(9_000);
        b.extend_from_slice(b"xyz");
        assert_eq!(b.len(), 1_003);
        assert_eq!(&b[1_000..], b"xyz");
    }

    #[test]
    fn equality_ignores_split_history() {
        let mut a = BytesMut::from(&b"xyz"[..]);
        a.extend_from_slice(b"tail");
        a.split_to(3);
        let fresh = BytesMut::from(&b"tail"[..]);
        assert_eq!(a.to_vec(), fresh.to_vec());
    }
}
