//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Provides the subset the RDDR workspace uses: `Mutex` whose `lock()`
//! returns a guard directly (poisoning is swallowed — a panicked holder does
//! not wedge the lock), and `Condvar` whose `wait`/`wait_for` take `&mut
//! MutexGuard` like parking_lot's.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's panic-tolerant API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership of it (std's condvar consumes and returns the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` calling convention.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
