//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the RDDR workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and float
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — not
//! bit-compatible with upstream `StdRng` (callers only rely on determinism
//! per seed, never on specific draws).

use std::ops::{Range, RangeInclusive};

/// The core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, `rand`-style.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio with zero denominator");
        assert!(numerator <= denominator, "gen_ratio with ratio above 1");
        self.gen_range(0u32..denominator) < numerator
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Namespaces matching `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
