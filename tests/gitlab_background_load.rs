//! §V-F robustness: "RDDR functions robustly when deployed in a complex
//! system with high levels of benign traffic." Benign GitLab flows hammer
//! the 3-versioned Postgres while the exploit fires concurrently; the
//! exploit must be blocked and every benign request must keep succeeding.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::framework::url_encode;
use rddr_repro::httpsim::gitlab::{deploy_gitlab, seed_gitlab_schema};
use rddr_repro::httpsim::HttpClient;
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::pgsim::{Database, PgServer, PgVersion};
use rddr_repro::protocols::PgProtocol;
use rddr_repro::proxy::IncomingProxy;

#[test]
fn exploit_is_blocked_under_concurrent_benign_load() {
    let cluster = Cluster::new(8);
    let mut handles = Vec::new();
    for (i, version) in ["10.7", "10.7", "10.9"].iter().enumerate() {
        let mut db = Database::new(PgVersion::parse(version).unwrap());
        seed_gitlab_schema(&mut db).unwrap();
        handles.push(
            cluster
                .run_container(
                    format!("pg-{i}"),
                    Image::new("postgres", *version),
                    &ServiceAddr::new("pg", 5432 + i as u16),
                    Arc::new(PgServer::new(db)),
                )
                .unwrap(),
        );
    }
    let proxy_addr = ServiceAddr::new("gitlab-postgres", 5432);
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &proxy_addr,
        (0..3).map(|i| ServiceAddr::new("pg", 5432 + i)).collect(),
        EngineConfig::builder(3)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(5))
            .build()
            .unwrap(),
        Arc::new(|| Box::new(PgProtocol::new())),
    )
    .unwrap();
    let gitlab = deploy_gitlab(&cluster, proxy_addr).unwrap();
    let net = cluster.net();
    let workhorse = gitlab.addrs.workhorse.clone();

    let stop = Arc::new(AtomicBool::new(false));
    let benign_ok = Arc::new(AtomicU64::new(0));
    let benign_fail = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Four benign browsers looping /projects and the health endpoint.
        for _ in 0..4 {
            let net = net.clone();
            let workhorse = workhorse.clone();
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&benign_ok);
            let fail = Arc::clone(&benign_fail);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let fine = HttpClient::connect(&net, &workhorse)
                        .and_then(|mut c| c.get("/projects"))
                        .map(|r| r.status == 200 && r.body_text().contains("gitlab-ce"))
                        .unwrap_or(false);
                    if fine {
                        ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        fail.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The attacker, mid-load.
        let mut leaked = false;
        let mut blocked = false;
        for sql in [
            "CREATE FUNCTION op_leak(int, int) RETURNS bool \
             AS 'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' \
             LANGUAGE plpgsql",
            "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, \
             restrict=scalarltsel)",
            "SELECT * FROM user_secrets WHERE secret_level <<< 1000",
        ] {
            let Ok(mut attacker) = HttpClient::connect(&net, &workhorse) else {
                break;
            };
            match attacker.get(&format!("/api/v4/sql?q={}", url_encode(sql))) {
                Err(_) => {
                    blocked = true;
                    break;
                }
                Ok(resp) => {
                    let text = resp.body_text();
                    if text.contains("ROOT-ADMIN") {
                        leaked = true;
                    }
                    if resp.status == 500 {
                        blocked = true;
                        break;
                    }
                }
            }
        }
        // Let the benign load run a little longer after the attack.
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);

        assert!(blocked, "the exploit must be blocked under load");
        assert!(!leaked, "no protected row may leak under load");
    });

    let ok = benign_ok.load(Ordering::Relaxed);
    let fail = benign_fail.load(Ordering::Relaxed);
    assert!(ok >= 20, "benign load must flow ({ok} ok / {fail} failed)");
    assert_eq!(fail, 0, "no benign request may be disturbed by the attack");
}
