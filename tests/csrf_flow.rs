//! End-to-end checks of RDDR's ephemeral-state handling (§IV-B3): CSRF
//! tokens minted per instance are captured, one is forwarded to the client,
//! the client's echo is substituted per instance, and tokens die after use.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::{HttpClient, HttpResponse, HttpService};
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image, Service};
use rddr_repro::protocols::HttpProtocol;
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

/// A service that mints a fixed per-instance token and only accepts *its
/// own* token back — exactly the handshake that breaks naive N-versioning.
fn token_service(token: &'static str) -> Arc<dyn Service> {
    Arc::new(
        HttpService::new("form")
            .route("GET", "/form", move |_req, _ctx| {
                HttpResponse::html(format!(
                    "<form><input type=\"hidden\" name=\"t\" value=\"{token}\"></form>"
                ))
            })
            .route("POST", "/submit", move |req, _ctx| {
                let got = req.form().get("t").cloned().unwrap_or_default();
                if got == token {
                    HttpResponse::ok("accepted")
                } else {
                    HttpResponse::status(403, format!("bad token {got}"))
                }
            }),
    )
}

fn http() -> ProtocolFactory {
    Arc::new(|| Box::new(HttpProtocol::new()))
}

fn deploy(
    tokens: &[&'static str],
) -> (
    Cluster,
    Vec<rddr_repro::orchestra::ContainerHandle>,
    IncomingProxy,
) {
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        handles.push(
            cluster
                .run_container(
                    format!("form-{i}"),
                    Image::new("form", "v1"),
                    &ServiceAddr::new("form", 8000 + i as u16),
                    token_service(token),
                )
                .unwrap(),
        );
    }
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr", 80),
        (0..tokens.len() as u16)
            .map(|i| ServiceAddr::new("form", 8000 + i))
            .collect(),
        EngineConfig::builder(tokens.len())
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        http(),
    )
    .unwrap();
    (cluster, handles, proxy)
}

#[test]
fn tokens_are_captured_and_substituted_per_instance() {
    let (cluster, _handles, _proxy) = deploy(&["AAAAAAAAAA", "BBBBBBBBBB", "CCCCCCCCCC"]);
    let net = cluster.net();
    let mut client = HttpClient::connect(&net, &ServiceAddr::new("rddr", 80)).unwrap();

    // The page is forwarded with the FIRST instance's token (the paper
    // forwards "the page sent by the first instance").
    let page = client.get("/form").unwrap();
    assert!(
        page.body_text().contains("AAAAAAAAAA"),
        "client must see instance 0's token: {}",
        page.body_text()
    );

    // Submitting that token must be accepted by ALL instances — i.e. the
    // proxy substituted B's and C's own tokens on the way in.
    let resp = client.post("/submit", "t=AAAAAAAAAA").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.body_text(), "accepted");
}

#[test]
fn without_token_capture_the_submission_would_diverge() {
    // Control experiment: short tokens (below the 10-char threshold) are
    // NOT captured, so instances B and C receive A's token and reject it —
    // RDDR then severs on the divergent 403s. This demonstrates why the
    // ephemeral-state feature exists.
    let (cluster, _handles, proxy) = deploy(&["AAAA", "BBBB", "CCCC"]);
    let net = cluster.net();
    let mut client = HttpClient::connect(&net, &ServiceAddr::new("rddr", 80)).unwrap();
    let page = client.get("/form");
    // The page itself already diverges (3 different short tokens, no filter
    // pair, no capture) — either the page or the submit gets severed.
    let severed_early = page.is_err();
    if !severed_early {
        let submit = client.post("/submit", "t=AAAA");
        assert!(
            submit.is_err() || submit.unwrap().status == 403,
            "uncaptured tokens must not be silently accepted"
        );
    }
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        proxy.stats().divergences >= 1,
        "divergence must be recorded"
    );
}

#[test]
fn tokens_are_single_use() {
    let (cluster, _handles, _proxy) = deploy(&["AAAAAAAAAA", "BBBBBBBBBB", "CCCCCCCCCC"]);
    let net = cluster.net();
    let mut client = HttpClient::connect(&net, &ServiceAddr::new("rddr", 80)).unwrap();
    let _page = client.get("/form").unwrap();
    assert_eq!(client.post("/submit", "t=AAAAAAAAAA").unwrap().status, 200);

    // The mapping was deleted after forwarding ("because they are
    // ephemeral, tokens are deleted after forwarding"): a replayed token is
    // forwarded verbatim, instances B/C reject it, and RDDR severs.
    let replay = client.post("/submit", "t=AAAAAAAAAA");
    assert!(
        replay.is_err() || replay.unwrap().status != 200,
        "replayed token must not be re-substituted"
    );
}
