//! End-to-end observability: an N-versioned deployment with one poisoned
//! instance serves `/healthz`, `/metrics`, and `/divergences` through the
//! telemetry admin endpoint — over the in-memory `SimNet` (via the
//! orchestra deployment helper) and over real TCP sockets.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::EngineConfig;
use rddr_repro::net::{Network, ServiceAddr, SimNet, Stream, TcpNet};
use rddr_repro::orchestra::{Cluster, FnService, Image, Service};
use rddr_repro::protocols::{parse_json, JsonValue};
use rddr_repro::proxy::{
    n_version_with_telemetry, IncomingProxy, ProtocolFactory, ProxyTelemetry, Variant,
};
use rddr_repro::telemetry::AdminServer;

fn line() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

/// One HTTP GET against the admin endpoint; returns the full response.
fn admin_get(net: &dyn Network, addr: &ServiceAddr, path: &str) -> String {
    let mut conn = net.dial(addr).unwrap();
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8(out).unwrap()
}

/// Body of an HTTP response (everything past the blank line).
fn body(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Asserts the three routes reflect one audited divergence blamed on
/// `poisoned` under metric prefix `{prefix}_in_*`.
fn assert_observability(net: &dyn Network, addr: &ServiceAddr, prefix: &str, poisoned: usize) {
    let health = admin_get(net, addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert_eq!(body(&health), "ok\n");

    let metrics = admin_get(net, addr, "/metrics");
    assert!(
        metrics.contains(&format!("{prefix}_in_exchanges_total 1")),
        "exchange counter missing:\n{metrics}"
    );
    assert!(
        metrics.contains(&format!("{prefix}_in_divergences_total 1")),
        "divergence counter missing:\n{metrics}"
    );
    for series in [
        "exchange_latency_us",
        "fanout_latency_us",
        "merge_latency_us",
    ] {
        assert!(
            metrics.contains(&format!("{prefix}_in_{series}{{quantile=\"0.99\"}}")),
            "latency quantiles for {series} missing:\n{metrics}"
        );
        assert!(
            metrics.contains(&format!("{prefix}_in_{series}_count 1")),
            "{metrics}"
        );
    }

    // Reactor observability rides the same registry: worker/session gauges
    // and the per-step session-state histogram must be live on /metrics.
    for gauge in ["reactor_workers", "reactor_sessions", "reactor_ready_depth"] {
        assert!(
            metrics.contains(&format!("{prefix}_in_{gauge} ")),
            "reactor gauge {gauge} missing:\n{metrics}"
        );
    }
    assert!(
        metrics.contains(&format!("{prefix}_in_reactor_session_state_count")),
        "reactor session-state histogram missing:\n{metrics}"
    );

    let divergences = admin_get(net, addr, "/divergences");
    let doc = parse_json(body(&divergences)).expect("audit JSON parses");
    let entry = doc
        .get("divergences")
        .and_then(|d| d.index(0))
        .expect("one audited divergence");
    assert_eq!(
        entry.get("offending_instance").and_then(JsonValue::as_f64),
        Some(poisoned as f64),
        "audit must name the diverging instance: {divergences}"
    );
    assert_eq!(
        entry.get("service").and_then(JsonValue::as_str),
        Some(format!("{prefix}_in").as_str())
    );
    let timeline = entry.get("timeline").expect("span timeline attached");
    assert!(timeline.index(0).is_some(), "timeline empty: {divergences}");
}

/// A line-echo service appending `suffix` to every line.
fn suffix_echo(suffix: &'static str) -> Arc<dyn Service> {
    Arc::new(FnService::new("echo", move |mut conn, _ctx| {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        loop {
            match conn.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                let mut reply = line[..line.len() - 1].to_vec();
                reply.extend_from_slice(suffix.as_bytes());
                reply.push(b'\n');
                if conn.write_all(&reply).is_err() {
                    return;
                }
            }
        }
    }))
}

#[test]
fn poisoned_deployment_observable_over_simnet() {
    let cluster = Cluster::new(4);
    let telemetry = ProxyTelemetry::new("svc");
    let service = n_version_with_telemetry(
        &cluster,
        "svc",
        &ServiceAddr::new("svc", 8000),
        vec![
            Variant::new(Image::new("svc", "v1"), suffix_echo("")),
            Variant::new(Image::new("svc", "v2"), suffix_echo("")),
            Variant::new(Image::new("svc", "evil"), suffix_echo(" LEAK")),
        ],
        EngineConfig::builder(3).build().unwrap(),
        line(),
        telemetry.clone(),
    )
    .unwrap();

    // One poisoned exchange: the Block policy severs the client.
    let mut conn = cluster.net().dial(&service.addr).unwrap();
    conn.write_all(b"login alice\n").unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(conn.read(&mut buf).unwrap(), 0, "divergence must sever");
    std::thread::sleep(Duration::from_millis(50));

    let net: Arc<dyn Network> = Arc::new(cluster.net());
    let admin = AdminServer::serve(
        Arc::clone(&net),
        &ServiceAddr::new("admin", 9900),
        Arc::clone(&telemetry.registry),
        Arc::clone(&telemetry.audit),
    )
    .unwrap();
    assert_observability(net.as_ref(), admin.addr(), "svc", 2);
    admin.shutdown();
}

/// Starts a real TCP line server on an ephemeral port.
fn spawn_tcp_line_server(suffix: &'static str) -> ServiceAddr {
    let net = TcpNet::new();
    let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 256];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        let mut reply = line[..line.len() - 1].to_vec();
                        reply.extend_from_slice(suffix.as_bytes());
                        reply.push(b'\n');
                        if conn.write_all(&reply).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn poisoned_deployment_observable_over_tcp() {
    let net: Arc<dyn Network> = Arc::new(TcpNet::new());
    let instances = vec![
        spawn_tcp_line_server(""),
        spawn_tcp_line_server(""),
        spawn_tcp_line_server(" LEAK"),
    ];
    let telemetry = ProxyTelemetry::new("svc");
    let mut proxy = IncomingProxy::start_with_telemetry(
        Arc::clone(&net),
        &ServiceAddr::new("127.0.0.1", 0),
        instances,
        EngineConfig::builder(3).build().unwrap(),
        line(),
        Some(telemetry.clone()),
    )
    .unwrap();

    let mut conn = net.dial(proxy.listen_addr()).unwrap();
    conn.write_all(b"login alice\n").unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(conn.read(&mut buf).unwrap(), 0, "divergence must sever");
    std::thread::sleep(Duration::from_millis(50));

    let admin = AdminServer::serve(
        Arc::clone(&net),
        &ServiceAddr::new("127.0.0.1", 0),
        Arc::clone(&telemetry.registry),
        Arc::clone(&telemetry.audit),
    )
    .unwrap();
    assert_observability(net.as_ref(), admin.addr(), "svc", 2);
    admin.shutdown();
    proxy.stop();
}

/// The admin endpoint also runs over `SimNet` with a *healthy* deployment:
/// `/divergences` stays empty while `/metrics` still counts exchanges.
#[test]
fn healthy_deployment_has_empty_audit() {
    let net: Arc<dyn Network> = Arc::new(SimNet::new());
    let instances: Vec<ServiceAddr> = (0..2).map(|i| ServiceAddr::new("echo", 7000 + i)).collect();
    for addr in &instances {
        let mut listener = net.listen(addr).unwrap();
        std::thread::spawn(move || {
            while let Ok(mut conn) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 256];
                    while let Ok(n) = conn.read(&mut buf) {
                        if n == 0 || conn.write_all(&buf[..n]).is_err() {
                            return;
                        }
                    }
                });
            }
        });
    }
    let telemetry = ProxyTelemetry::new("echo");
    let _proxy = IncomingProxy::start_with_telemetry(
        Arc::clone(&net),
        &ServiceAddr::new("rddr", 80),
        instances,
        EngineConfig::builder(2).build().unwrap(),
        line(),
        Some(telemetry.clone()),
    )
    .unwrap();
    let mut conn = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    conn.write_all(b"ping\n").unwrap();
    let mut reply = [0u8; 5];
    conn.read_exact(&mut reply).unwrap();
    assert_eq!(&reply, b"ping\n");

    let admin = AdminServer::serve(
        Arc::clone(&net),
        &ServiceAddr::new("admin", 9901),
        Arc::clone(&telemetry.registry),
        Arc::clone(&telemetry.audit),
    )
    .unwrap();
    let divergences = admin_get(net.as_ref(), admin.addr(), "/divergences");
    assert!(
        body(&divergences).contains("\"divergences\":[]"),
        "{divergences}"
    );
    let metrics = admin_get(net.as_ref(), admin.addr(), "/metrics");
    assert!(metrics.contains("echo_in_exchanges_total 1"), "{metrics}");
    assert!(metrics.contains("echo_in_divergences_total 0"), "{metrics}");
    admin.shutdown();
}
