//! Control experiments: the same exploits against *unprotected* single
//! instances must succeed. This is what makes Table I meaningful — the
//! attacks are real, and RDDR (not the substrate) is what stops them.

use std::sync::Arc;

use rddr_repro::httpsim::haproxy::{smuggling_payload, smuggling_target_service};
use rddr_repro::httpsim::{DvwaSim, HaproxySim, HttpClient, NginxSim, NginxVersion, SecurityLevel};
use rddr_repro::libsim::aslr::BUFFER_SIZE;
use rddr_repro::net::{Network, ServiceAddr};
use rddr_repro::orchestra::{Cluster, ContainerHandle, Image};
use rddr_repro::pgsim::{Database, PgServer, PgVersion};

fn keep(h: ContainerHandle) {
    std::mem::forget(h);
}

#[test]
fn unprotected_nginx_leaks_cache_memory() {
    let cluster = Cluster::new(2);
    let server = NginxSim::file_server(NginxVersion::parse("1.13.2"));
    server.publish("/f", b"doc".to_vec(), b"NEIGHBOUR-SECRET".to_vec());
    keep(
        cluster
            .run_container(
                "n",
                Image::new("nginx", "1.13.2"),
                &ServiceAddr::new("n", 80),
                Arc::new(server),
            )
            .unwrap(),
    );
    let net = cluster.net();
    let mut attacker = HttpClient::connect(&net, &ServiceAddr::new("n", 80)).unwrap();
    attacker
        .send_raw(b"GET /f HTTP/1.1\r\nHost: n\r\nRange: bytes=-9223372036854775608\r\n\r\n")
        .unwrap();
    let resp = attacker.read_response().unwrap();
    assert_eq!(resp.status, 206);
    assert!(
        resp.body_text().contains("NEIGHBOUR-SECRET"),
        "without RDDR the overflow must leak"
    );
}

#[test]
fn unprotected_haproxy_serves_the_smuggled_internal_route() {
    let cluster = Cluster::new(2);
    keep(
        cluster
            .run_container(
                "s1",
                Image::new("s1", "v1"),
                &ServiceAddr::new("s1", 9100),
                Arc::new(smuggling_target_service()),
            )
            .unwrap(),
    );
    keep(
        cluster
            .run_container(
                "h",
                Image::new("haproxy", "1.5.3"),
                &ServiceAddr::new("h", 8080),
                Arc::new(HaproxySim::new(ServiceAddr::new("s1", 9100))),
            )
            .unwrap(),
    );
    let net = cluster.net();
    let mut attacker = HttpClient::connect(&net, &ServiceAddr::new("h", 8080)).unwrap();
    attacker.send_raw(&smuggling_payload()).unwrap();
    let _outer = attacker.read_response().unwrap();
    let smuggled = attacker.read_response().unwrap();
    assert!(
        smuggled.body_text().contains("INTERNAL"),
        "without RDDR the smuggled request must reach /internal"
    );
}

#[test]
fn unprotected_dvwa_low_dumps_the_users_table() {
    let cluster = Cluster::new(2);
    let mut db = Database::new(PgVersion::parse("10.9").unwrap());
    rddr_repro::httpsim::dvwa::seed_dvwa_schema(&mut db).unwrap();
    keep(
        cluster
            .run_container(
                "db",
                Image::new("postgres", "10.9"),
                &ServiceAddr::new("db", 5432),
                Arc::new(PgServer::new(db)),
            )
            .unwrap(),
    );
    keep(
        cluster
            .run_container(
                "dvwa",
                Image::new("dvwa", "v1"),
                &ServiceAddr::new("dvwa", 80),
                Arc::new(DvwaSim::new(
                    SecurityLevel::Low,
                    ServiceAddr::new("db", 5432),
                    1,
                )),
            )
            .unwrap(),
    );
    let net = cluster.net();
    let mut attacker = HttpClient::connect(&net, &ServiceAddr::new("dvwa", 80)).unwrap();
    let page = attacker.get("/vuln/sqli").unwrap();
    let token = page
        .body_text()
        .split("name=\"user_token\" value=\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .unwrap()
        .to_string();
    let resp = attacker
        .get(&format!(
            "/vuln/sqli/run?id={}&user_token={token}",
            rddr_repro::httpsim::framework::url_encode("1' OR '1'='1")
        ))
        .unwrap();
    let text = resp.body_text();
    for name in ["admin", "Gordon", "Pablo", "Bob"] {
        assert!(text.contains(name), "full dump must include {name}: {text}");
    }
}

#[test]
fn unprotected_pg_10_7_leaks_rls_rows() {
    let mut db = Database::new(PgVersion::parse("10.7").unwrap());
    rddr_repro::httpsim::gitlab::seed_gitlab_schema(&mut db).unwrap();
    let mut session = db.session("gitlab");
    db.execute(
        &mut session,
        "CREATE FUNCTION op_leak(int, int) RETURNS bool \
         AS 'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' \
         LANGUAGE plpgsql",
    )
    .unwrap();
    db.execute(
        &mut session,
        "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, \
         restrict=scalarltsel)",
    )
    .unwrap();
    let r = db
        .execute(
            &mut session,
            "SELECT * FROM user_secrets WHERE secret_level <<< 1000",
        )
        .unwrap();
    assert!(
        r.notices.iter().any(|n| n.contains("900")),
        "without RDDR the 10.7 instance leaks hidden rows via NOTICE: {:?}",
        r.notices
    );
}

#[test]
fn unprotected_aslr_echo_leaks_a_pointer() {
    let cluster = Cluster::new(2);
    keep(
        cluster
            .run_container(
                "echo",
                Image::new("echo-poc", "v1"),
                &ServiceAddr::new("echo", 7),
                Arc::new(rddr_repro::httpsim::rest::AslrEchoService::launch(0xfeed)),
            )
            .unwrap(),
    );
    let net = cluster.net();
    use rddr_repro::net::Stream as _;
    let mut conn = net.dial(&ServiceAddr::new("echo", 7)).unwrap();
    let mut payload = vec![b'A'; BUFFER_SIZE + 8];
    payload.push(b'\n');
    conn.write_all(&payload).unwrap();
    let mut reply = Vec::new();
    let mut b = [0u8; 1];
    while conn.read(&mut b).map(|n| n > 0).unwrap_or(false) {
        if b[0] == b'\n' {
            break;
        }
        reply.push(b[0]);
    }
    let text = String::from_utf8_lossy(&reply);
    let tail = &text[text.len() - 16..];
    assert!(
        tail.bytes().all(|c| c.is_ascii_hexdigit()),
        "without RDDR the pointer leaks: {text}"
    );
}

#[test]
fn unprotected_forged_rsa_ciphertext_decrypts() {
    use rddr_repro::libsim::{craft_forged_ciphertext, RsaDecryptor, RsaKeyPair, RsaLib};
    let key = RsaKeyPair::demo();
    let forged = craft_forged_ciphertext(&key);
    let plaintext = RsaLib::new().decrypt(&key, forged).unwrap();
    assert!(
        plaintext.starts_with(b"pw"),
        "without a diverse pair the forgery decrypts to attacker-chosen bytes"
    );
}
