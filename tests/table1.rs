//! Workspace-level regeneration of Table I: every scenario must report
//! mitigated, with benign traffic unaffected.

use rddr_repro::vulns::{run_all, TABLE_I};

#[test]
fn all_ten_table_i_rows_are_mitigated() {
    let results = run_all();
    assert_eq!(results.len(), TABLE_I.len());
    for (row, report) in &results {
        assert!(
            report.mitigated(),
            "{} must be mitigated:\n{report}",
            row.cve
        );
        assert!(report.benign_ok, "{}: benign traffic must pass", row.cve);
        assert!(
            !report.leak_reached_client,
            "{}: no leak may reach the client",
            row.cve
        );
    }
}

#[test]
fn rendered_table_lists_every_row() {
    let results = run_all();
    let table = rddr_repro::vulns::render_table(&results);
    for row in TABLE_I {
        assert!(table.contains(row.cve), "table must mention {}", row.cve);
    }
    assert!(
        !table.contains(" NO\n"),
        "no row may be unmitigated:\n{table}"
    );
}
