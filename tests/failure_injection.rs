//! Failure-injection tests: instances crashing mid-session, unreachable
//! backends, hung instances, and the DoS-throttling extension.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::{DegradePolicy, EngineConfig, ResponsePolicy};
use rddr_repro::httpsim::{HttpResponse, HttpService};
use rddr_repro::net::{BoxStream, Network, ServiceAddr, SimNet, Stream};
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::proxy::{IncomingProxy, OutgoingProxy, ProtocolFactory};

fn line() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

/// Outcome of reading one newline-terminated line from a proxied connection.
///
/// A clean `Eof` (the peer closed between lines) and a `Reset` (the
/// connection died mid-line, losing the tail) are different failures: a
/// severed exchange must look like the former, never the latter.
#[derive(Debug, PartialEq, Eq)]
enum LineRead {
    /// A complete line, terminator stripped.
    Line(Vec<u8>),
    /// Clean close: no bytes buffered when the stream ended.
    Eof,
    /// The stream ended mid-line; the partial bytes read so far.
    Reset(Vec<u8>),
}

fn read_line(conn: &mut BoxStream) -> LineRead {
    let mut out = Vec::new();
    let mut b = [0u8; 1];
    loop {
        match conn.read(&mut b) {
            Ok(0) | Err(_) => {
                return if out.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Reset(out)
                }
            }
            Ok(_) if b[0] == b'\n' => return LineRead::Line(out),
            Ok(_) => out.push(b[0]),
        }
    }
}

fn echo_cluster(n: u16) -> (Cluster, Vec<rddr_repro::orchestra::ContainerHandle>) {
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for i in 0..n {
        handles.push(
            cluster
                .run_container(
                    format!("echo-{i}"),
                    Image::new("echo", "v1"),
                    &ServiceAddr::new("echo", 9000 + i),
                    Arc::new(
                        HttpService::new("unused").route("GET", "/", |_r, _c| HttpResponse::ok("")),
                    ),
                )
                .unwrap(),
        );
    }
    (cluster, handles)
}

/// Line-echo servers managed manually so we can kill one mid-session.
fn spawn_echo(net: &SimNet, addr: ServiceAddr) -> std::sync::Arc<std::sync::atomic::AtomicBool> {
    let alive = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    let flag = std::sync::Arc::clone(&alive);
    let mut listener = net.listen(&addr).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            let flag = std::sync::Arc::clone(&flag);
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 512];
                loop {
                    if !flag.load(std::sync::atomic::Ordering::Relaxed) {
                        conn.shutdown();
                        return;
                    }
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        if !flag.load(std::sync::atomic::Ordering::Relaxed) {
                            conn.shutdown();
                            return;
                        }
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        if conn.write_all(&line).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
    alive
}

#[test]
fn instance_crash_mid_session_severs_cleanly() {
    let net = SimNet::new();
    let _a = spawn_echo(&net, ServiceAddr::new("svc", 9000));
    let b_alive = spawn_echo(&net, ServiceAddr::new("svc", 9001));
    let _proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_millis(400))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();

    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    client.write_all(b"first\n").unwrap();
    assert_eq!(read_line(&mut client), LineRead::Line(b"first".to_vec()));

    // Kill instance B, then issue another request: the proxy must sever
    // rather than silently serving from the surviving instance — and the
    // sever must be a *clean* close, not a mid-line reset leaking a partial
    // single-survivor response.
    b_alive.store(false, std::sync::atomic::Ordering::Relaxed);
    client.write_all(b"second\n").unwrap();
    let reply = read_line(&mut client);
    assert_eq!(
        reply,
        LineRead::Eof,
        "single-survivor output must not be forwarded"
    );
}

#[test]
fn unreachable_instance_at_session_start_closes_client() {
    let net = SimNet::new();
    let _a = spawn_echo(&net, ServiceAddr::new("svc", 9000));
    // Instance 9001 is never started.
    let _proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2).build().unwrap(),
        line(),
    )
    .unwrap();
    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    client.write_all(b"hello\n").unwrap();
    assert_eq!(
        read_line(&mut client),
        LineRead::Eof,
        "session must be refused"
    );
}

#[test]
fn outgoing_proxy_with_dead_backend_severs_instances() {
    let net = SimNet::new();
    let _proxy = OutgoingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr-out", 5432),
        ServiceAddr::new("ghost-db", 5432),
        EngineConfig::builder(2)
            .response_deadline(Duration::from_millis(300))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();
    let mut a = net.dial(&ServiceAddr::new("rddr-out", 5432)).unwrap();
    let mut b = net.dial(&ServiceAddr::new("rddr-out", 5432)).unwrap();
    a.write_all(b"query\n").unwrap();
    b.write_all(b"query\n").unwrap();
    assert_eq!(read_line(&mut a), LineRead::Eof);
    assert_eq!(read_line(&mut b), LineRead::Eof);
}

#[test]
fn cluster_container_stop_is_observed_by_proxy() {
    let (cluster, mut handles) = echo_cluster(2);
    let net = cluster.net();
    let _proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![
            ServiceAddr::new("echo", 9000),
            ServiceAddr::new("echo", 9001),
        ],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_millis(300))
            .build()
            .unwrap(),
        Arc::new(|| Box::new(rddr_repro::protocols::HttpProtocol::new())),
    )
    .unwrap();
    // Stop one container: new sessions cannot dial it, so clients are cut.
    handles[1].stop();
    let mut client =
        rddr_repro::httpsim::HttpClient::connect(&net, &ServiceAddr::new("rddr", 80)).unwrap();
    assert!(
        client.get("/").is_err(),
        "session with a stopped instance must fail"
    );
}

#[test]
fn throttled_attacker_cannot_grind_instances() {
    let net = SimNet::new();
    let _a = spawn_echo(&net, ServiceAddr::new("svc", 9000));
    // A "diverse" instance that appends junk to one specific input.
    let mut listener = net.listen(&ServiceAddr::new("svc", 9001)).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 512];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        let reply = if line.starts_with(b"evil") {
                            b"evil DIVERGENT\n".to_vec()
                        } else {
                            line
                        };
                        if conn.write_all(&reply).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2)
            .throttle(0)
            .response_deadline(Duration::from_millis(500))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();

    // First exploit in a session: replicated, detected, severed.
    let mut c = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    c.write_all(b"evil\n").unwrap();
    assert_eq!(read_line(&mut c), LineRead::Eof);
    std::thread::sleep(Duration::from_millis(50));
    let s = proxy.stats();
    assert!(s.divergences >= 1, "{s:?}");
}

#[test]
fn read_line_distinguishes_reset_from_clean_eof() {
    // A raw SimNet pair: the server writes a partial line then dies, which
    // must surface as `Reset(partial)` — distinct from the clean `Eof` the
    // proxy produces when it severs between lines.
    let net = SimNet::new();
    let mut listener = net.listen(&ServiceAddr::new("raw", 7000)).unwrap();
    std::thread::spawn(move || {
        if let Ok(mut conn) = listener.accept() {
            let _ = conn.write_all(b"par");
            conn.shutdown();
        }
    });
    let mut client = net.dial(&ServiceAddr::new("raw", 7000)).unwrap();
    assert_eq!(read_line(&mut client), LineRead::Reset(b"par".to_vec()));
    // A second read on the dead connection is a clean EOF.
    assert_eq!(read_line(&mut client), LineRead::Eof);
}

#[test]
fn degraded_mode_ejects_crashed_instance_and_keeps_serving() {
    let net = SimNet::new();
    let _a = spawn_echo(&net, ServiceAddr::new("svc", 9000));
    let b_alive = spawn_echo(&net, ServiceAddr::new("svc", 9001));
    let _c = spawn_echo(&net, ServiceAddr::new("svc", 9002));
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![
            ServiceAddr::new("svc", 9000),
            ServiceAddr::new("svc", 9001),
            ServiceAddr::new("svc", 9002),
        ],
        EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .degrade(DegradePolicy::eject())
            .response_deadline(Duration::from_millis(500))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();

    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    client.write_all(b"first\n").unwrap();
    assert_eq!(read_line(&mut client), LineRead::Line(b"first".to_vec()));

    // Kill instance B. Under DegradePolicy::eject the proxy drops it from
    // the roster and keeps serving from the surviving pair instead of
    // severing the whole session.
    b_alive.store(false, std::sync::atomic::Ordering::Relaxed);
    client.write_all(b"second\n").unwrap();
    assert_eq!(read_line(&mut client), LineRead::Line(b"second".to_vec()));
    client.write_all(b"third\n").unwrap();
    assert_eq!(read_line(&mut client), LineRead::Line(b"third".to_vec()));
    client.shutdown();

    std::thread::sleep(Duration::from_millis(50));
    let s = proxy.stats();
    assert!(
        s.ejected >= 1,
        "crash must be counted as an ejection: {s:?}"
    );
    assert_eq!(s.severed, 0, "no session sever in degraded mode: {s:?}");
}
