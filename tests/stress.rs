//! Concurrency stress: many clients hammering one incoming proxy at once.
//! Sessions are independent, so no exchange may be lost, duplicated, cross
//! paired with another client's, or falsely flagged divergent.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::{DegradePolicy, EngineConfig, ResponsePolicy};
use rddr_repro::net::{BoxStream, Network, ServiceAddr, SimNet, Stream};
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

const CLIENTS: usize = 24;
const EXCHANGES: usize = 25;

fn line() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

fn spawn_echo(net: &SimNet, addr: ServiceAddr) {
    let mut listener = net.listen(&addr).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        if conn.write_all(&line).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
}

fn read_line(conn: &mut BoxStream) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut b = [0u8; 1];
    loop {
        match conn.read(&mut b) {
            Ok(0) | Err(_) => return None,
            Ok(_) if b[0] == b'\n' => return Some(out),
            Ok(_) => out.push(b[0]),
        }
    }
}

#[test]
fn concurrent_sessions_are_isolated_and_lossless() {
    let net = SimNet::new();
    for port in [9000u16, 9001, 9002] {
        spawn_echo(&net, ServiceAddr::new("svc", port));
    }
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        (9000..9003).map(|p| ServiceAddr::new("svc", p)).collect(),
        EngineConfig::builder(3)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(10))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();

    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let net = net.clone();
            scope.spawn(move || {
                let mut conn = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
                for i in 0..EXCHANGES {
                    let msg = format!("client-{client_id}-msg-{i}\n");
                    conn.write_all(msg.as_bytes()).unwrap();
                    let reply = read_line(&mut conn)
                        .unwrap_or_else(|| panic!("client {client_id} lost exchange {i}"));
                    assert_eq!(
                        reply,
                        msg.trim_end().as_bytes(),
                        "client {client_id} got another session's reply"
                    );
                }
            });
        }
    });

    std::thread::sleep(Duration::from_millis(50));
    let stats = proxy.stats();
    assert_eq!(stats.sessions, CLIENTS as u64);
    assert_eq!(stats.exchanges, (CLIENTS * EXCHANGES) as u64);
    assert_eq!(stats.divergences, 0, "identical echoes must never diverge");
    assert_eq!(stats.severed, 0);
}

/// Counts live threads whose name starts with `rddr-` — the proxy's own
/// threads (accept loops, reactor workers). The test harness's unnamed
/// helper threads (echo handlers, client drivers) don't match.
#[cfg(target_os = "linux")]
fn rddr_threads() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .filter_map(|t| std::fs::read_to_string(t.ok()?.path().join("comm")).ok())
        .filter(|comm| comm.starts_with("rddr-"))
        .count()
}

/// The reactor's core claim, asserted as a regression test: session count
/// must not move proxy thread count. Before the reactor every session cost
/// one thread per direction plus a reader per instance; any reappearance of
/// per-session threads shows up here as growth while clients are in flight.
#[cfg(target_os = "linux")]
#[test]
fn proxy_thread_count_stays_flat_under_concurrent_sessions() {
    let net = SimNet::new();
    for port in [9200u16, 9201, 9202] {
        spawn_echo(&net, ServiceAddr::new("fsvc", port));
    }
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr-flat", 80),
        (9200..9203).map(|p| ServiceAddr::new("fsvc", p)).collect(),
        EngineConfig::builder(3)
            .response_deadline(Duration::from_secs(10))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();
    // The proxy's fixed thread budget: its reactor workers plus the accept
    // loop. (A freshly spawned thread only names itself once scheduled, so a
    // pre-session `rddr_threads()` baseline would race on a loaded box.)
    let budget = proxy.workers() + 1;

    let peak = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let net = net.clone();
            let peak = Arc::clone(&peak);
            scope.spawn(move || {
                let mut conn = net.dial(&ServiceAddr::new("rddr-flat", 80)).unwrap();
                for i in 0..EXCHANGES {
                    let msg = format!("flat-{client_id}-{i}\n");
                    conn.write_all(msg.as_bytes()).unwrap();
                    assert_eq!(read_line(&mut conn).unwrap(), msg.trim_end().as_bytes());
                    peak.fetch_max(rddr_threads(), std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });

    let peak = peak.load(std::sync::atomic::Ordering::Relaxed);
    assert!(peak > 0, "proxy threads must be named rddr-*");
    assert!(
        peak <= budget,
        "proxy threads grew with sessions: budget {budget} (workers + accept), saw {peak} \
         with {CLIENTS} live clients — per-session threads are back"
    );
    drop(proxy);
}

/// Echo that mangles any line containing `evil` — a deterministic
/// divergence trigger for one instance of a voting trio.
fn spawn_mangling_echo(net: &SimNet, addr: ServiceAddr) {
    let mut listener = net.listen(&addr).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let mut line: Vec<u8> = buf.drain(..=pos).collect();
                        if line.windows(4).any(|w| w == b"evil") {
                            line = b"mangled\n".to_vec();
                        }
                        if conn.write_all(&line).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
}

/// Regression for the pipelined-batching throttle-lag caveat: once the
/// signature throttle has recorded a divergence, batch depth must clamp to
/// one frame so a repeated diverging input *within a single client write*
/// is refused at its exact budget instead of riding a whole-batch fan-out
/// past a stale throttle check.
#[test]
fn engaged_throttle_clamps_pipelined_batch_depth() {
    let net = SimNet::new();
    spawn_echo(&net, ServiceAddr::new("tsvc", 9100));
    spawn_echo(&net, ServiceAddr::new("tsvc", 9101));
    spawn_mangling_echo(&net, ServiceAddr::new("tsvc", 9102));
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr-throttle", 80),
        (9100..9103).map(|p| ServiceAddr::new("tsvc", p)).collect(),
        EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            // Ejecting degrade mode lets the outvoted (quarantined) mangler
            // rejoin before each batch, so every exchange keeps all three
            // instances in the diff set and repeats keep diverging.
            .degrade(DegradePolicy::eject())
            .throttle(0)
            .response_deadline(Duration::from_secs(10))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();

    let mut conn = net.dial(&ServiceAddr::new("rddr-throttle", 80)).unwrap();
    // Engage the throttle: one diverging exchange, allowed (budget 0 allows
    // the first occurrence) and recorded. Majority voting keeps the session
    // alive and forwards the honest echo.
    conn.write_all(b"evil-seed\n").unwrap();
    assert_eq!(read_line(&mut conn).unwrap(), b"evil-seed");

    // One pipelined write carrying a *new* diverging input twice. With the
    // engaged-throttle clamp the frames meet the throttle one at a time:
    // the first occurrence is allowed and recorded, the repeat is refused
    // and the session severed. Without the clamp the whole batch fans out
    // against the stale pre-batch throttle state and the repeat (and the
    // trailing frame) are answered as if nothing happened.
    conn.write_all(b"evil-fresh\nevil-fresh\nafter\n").unwrap();
    assert_eq!(
        read_line(&mut conn).unwrap(),
        b"evil-fresh",
        "first occurrence of a new diverging input is within budget"
    );
    assert!(
        read_line(&mut conn).is_none(),
        "the in-batch repeat must be throttled and the session severed"
    );

    std::thread::sleep(Duration::from_millis(50));
    let stats = proxy.stats();
    assert!(
        stats.throttled >= 1,
        "the repeated signature must hit the throttle, got {stats:?}"
    );
    assert!(
        stats.divergences >= 2,
        "both evil inputs diverged once each"
    );
}
