//! Chaos suite: seeded network fault injection against a degraded-mode
//! N-version deployment.
//!
//! The acceptance scenario kills one of three instances mid-exchange with a
//! [`FaultPlan`] byte-budget reset; the proxy must finish the exchange from
//! the surviving quorum, count the ejection, readmit the replica via a
//! rejoin probe, and — replayed under the same seed — produce a
//! byte-identical replay-stable audit log. A second run of the same
//! schedule over the encrypted transport must match the plain SimNet audit
//! byte for byte.
//!
//! The seed is `RDDR_CHAOS_SEED` when set (CI runs the suite under three
//! fixed seeds), with a fixed default for local runs.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::{DegradePolicy, EngineConfig, ResponsePolicy};
use rddr_repro::net::{
    BoxStream, ChaosProfile, ConnSelector, FaultNet, FaultPlan, FaultStats, Network, PresharedKey,
    SecureNet, ServiceAddr, SimNet, Stream,
};
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory, ProxyTelemetry, StatsSnapshot};

/// Default seed for local runs; CI overrides via `RDDR_CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0x0D5A_2022;

fn chaos_seed() -> u64 {
    std::env::var("RDDR_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn line() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

fn svc(port: u16) -> ServiceAddr {
    ServiceAddr::new("svc", port)
}

#[derive(Debug, PartialEq, Eq)]
enum LineRead {
    Line(Vec<u8>),
    Eof,
    Reset(Vec<u8>),
}

fn read_line(conn: &mut BoxStream) -> LineRead {
    let mut out = Vec::new();
    let mut b = [0u8; 1];
    loop {
        match conn.read(&mut b) {
            Ok(0) | Err(_) => {
                return if out.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Reset(out)
                }
            }
            Ok(_) if b[0] == b'\n' => return LineRead::Line(out),
            Ok(_) => out.push(b[0]),
        }
    }
}

/// A line-echo server listening through `net` (so it speaks whatever
/// transport the stack provides). When `divergent` is set it corrupts any
/// line starting with `evil` — the version-diverse instance whose answer
/// loses the quorum vote.
fn spawn_echo(net: &Arc<dyn Network>, addr: ServiceAddr, divergent: bool) {
    let mut listener = net.listen(&addr).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 512];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        let reply = if divergent && line.starts_with(b"evil") {
                            b"evil EXPLOITED\n".to_vec()
                        } else {
                            line
                        };
                        if conn.write_all(&reply).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
}

/// The acceptance scenario, generic over the transport stack carrying the
/// fault plan. Three instances behind a MajorityVote + eject proxy; the
/// plan's byte budget kills instance 1's first connection mid-exchange.
///
/// Exchange 1 (`alpha`): the reset fires while instance 1's reply streams
/// back — the quorum of two survivors still answers. Exchange 2 (`evil`):
/// instance 1 rejoins on its probe, the divergent instance 2 is outvoted
/// and quarantined. Exchange 3 (`omega`): instance 2 rejoins and all three
/// agree again.
fn run_quorum_scenario(net: Arc<dyn Network>) -> (StatsSnapshot, String) {
    spawn_echo(&net, svc(9000), false);
    spawn_echo(&net, svc(9001), false);
    spawn_echo(&net, svc(9002), true);
    let telemetry = ProxyTelemetry::new("chaos");
    let proxy = IncomingProxy::start_with_telemetry(
        Arc::clone(&net),
        &ServiceAddr::new("rddr", 80),
        vec![svc(9000), svc(9001), svc(9002)],
        EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .degrade(DegradePolicy::eject())
            .response_deadline(Duration::from_millis(500))
            .instance_deadline(Duration::from_millis(200))
            .build()
            .unwrap(),
        line(),
        Some(telemetry.clone()),
    )
    .unwrap();

    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    client.write_all(b"alpha\n").unwrap();
    assert_eq!(read_line(&mut client), LineRead::Line(b"alpha".to_vec()));
    client.write_all(b"evil\n").unwrap();
    assert_eq!(read_line(&mut client), LineRead::Line(b"evil".to_vec()));
    client.write_all(b"omega\n").unwrap();
    assert_eq!(read_line(&mut client), LineRead::Line(b"omega".to_vec()));
    client.shutdown();

    // Let the session thread retire so its counters settle.
    std::thread::sleep(Duration::from_millis(50));
    let stats = proxy.stats();
    (stats, telemetry.audit.stable_json())
}

/// The fault schedule of the acceptance scenario: instance 1's first
/// connection resets after 8 payload bytes — the 6-byte `alpha\n` fan-out
/// goes through, the echo reply crosses the budget mid-stream.
fn plan_for(seed: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed);
    plan.reset_after(&svc(9001), ConnSelector::Nth(0), 8);
    plan
}

#[test]
fn seeded_fault_kills_one_of_three_and_quorum_serves() {
    let net: Arc<dyn Network> = Arc::new(FaultNet::new(SimNet::new(), plan_for(chaos_seed())));
    let (stats, audit) = run_quorum_scenario(net);
    assert!(
        stats.ejected >= 1,
        "mid-exchange reset must eject: {stats:?}"
    );
    assert!(stats.rejoined >= 1, "replica must rejoin: {stats:?}");
    assert!(
        stats.quarantined >= 1,
        "outvoted instance must be quarantined: {stats:?}"
    );
    assert_eq!(stats.exchanges, 3, "{stats:?}");
    assert_eq!(stats.severed, 0, "degraded mode must not sever: {stats:?}");
    assert!(
        audit.contains("\"offending_instance\":2"),
        "quorum vote must implicate the divergent instance: {audit}"
    );
}

#[test]
fn same_seed_replay_produces_identical_audit_log() {
    let seed = chaos_seed();
    let first: Arc<dyn Network> = Arc::new(FaultNet::new(SimNet::new(), plan_for(seed)));
    let second: Arc<dyn Network> = Arc::new(FaultNet::new(SimNet::new(), plan_for(seed)));
    let (stats_a, audit_a) = run_quorum_scenario(first);
    let (stats_b, audit_b) = run_quorum_scenario(second);
    assert!(!audit_a.is_empty());
    assert_eq!(audit_a, audit_b, "replay must be byte-identical");
    assert_eq!(stats_a, stats_b, "replayed counters must match");
}

#[test]
fn chaos_over_secure_transport_matches_simnet_audit() {
    let seed = chaos_seed();
    let plain: Arc<dyn Network> = Arc::new(FaultNet::new(SimNet::new(), plan_for(seed)));
    // FaultNet wraps the *secured* streams, so byte budgets count plaintext
    // on both stacks and the same schedule fires at the same points.
    let key = PresharedKey::new("chaos-suite-key").unwrap();
    let secure: Arc<dyn Network> = Arc::new(FaultNet::new(
        SecureNet::new(SimNet::new(), key),
        plan_for(seed),
    ));
    let (_, audit_plain) = run_quorum_scenario(plain);
    let (_, audit_secure) = run_quorum_scenario(secure);
    assert!(audit_plain.contains("\"offending_instance\":2"));
    assert_eq!(
        audit_plain, audit_secure,
        "transport must not leak into the audit log"
    );
}

#[test]
fn chaos_profile_replays_identically() {
    let seed = chaos_seed();
    let run = |seed: u64| -> FaultStats {
        let sim = SimNet::new();
        let base: Arc<dyn Network> = Arc::new(sim.clone());
        spawn_echo(&base, svc(9000), false);
        let plan = FaultPlan::new(seed);
        plan.chaos(
            &svc(9000),
            ChaosProfile {
                refuse_per_mille: 300,
                reset_per_mille: 300,
                reset_window_bytes: 16,
                stall_per_mille: 100,
                stall: Duration::from_millis(1),
            },
        );
        let net = FaultNet::new(sim, plan);
        for _ in 0..32 {
            if let Ok(mut conn) = net.dial(&svc(9000)) {
                let _ = conn.write_all(b"ping\n");
                let _ = read_line(&mut conn);
                conn.shutdown();
            }
        }
        net.plan().stats()
    };
    let a = run(seed);
    assert_eq!(a, run(seed), "chaos draws must be a pure function of seed");
    assert!(a.dials == 32, "{a:?}");
}

#[test]
fn proxy_survives_sustained_chaos_without_wrong_answers() {
    let plan = FaultPlan::new(chaos_seed() ^ 0x5EED);
    let profile = ChaosProfile {
        refuse_per_mille: 200,
        reset_per_mille: 250,
        reset_window_bytes: 48,
        stall_per_mille: 100,
        stall: Duration::from_millis(1),
    };
    plan.chaos(&svc(9000), profile);
    plan.chaos(&svc(9001), profile);
    plan.chaos(&svc(9002), profile);
    let net: Arc<dyn Network> = Arc::new(FaultNet::new(SimNet::new(), plan));
    spawn_echo(&net, svc(9000), false);
    spawn_echo(&net, svc(9001), false);
    spawn_echo(&net, svc(9002), false);
    let proxy = IncomingProxy::start(
        Arc::clone(&net),
        &ServiceAddr::new("rddr", 80),
        vec![svc(9000), svc(9001), svc(9002)],
        EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .degrade(DegradePolicy::eject())
            .response_deadline(Duration::from_millis(400))
            .instance_deadline(Duration::from_millis(100))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();

    let mut answered = 0u32;
    for session in 0..20u32 {
        let Ok(mut client) = net.dial(&ServiceAddr::new("rddr", 80)) else {
            continue;
        };
        for exchange in 0..3u32 {
            let msg = format!("s{session}e{exchange}\n");
            if client.write_all(msg.as_bytes()).is_err() {
                break;
            }
            match read_line(&mut client) {
                // Integrity invariant: whatever the fault mix does, the
                // client never sees a corrupted or partial answer — the
                // correct echo, or a clean close. Never `Reset`.
                LineRead::Line(reply) => {
                    assert_eq!(reply, msg.trim_end().as_bytes(), "wrong answer forwarded");
                    answered += 1;
                }
                LineRead::Eof => break,
                LineRead::Reset(partial) => {
                    panic!("client saw a mid-line reset: {partial:?}")
                }
            }
        }
        client.shutdown();
    }
    assert!(
        answered > 0,
        "chaos mix too hot: no exchange ever completed"
    );
    let s = proxy.stats();
    assert!(s.ejected > 0, "chaos mix never faulted an instance: {s:?}");
}
