//! Storage-engine equivalence properties (proptest).
//!
//! The paged engine is only a valid diversity axis if it is *behaviourally
//! invisible*: for any seeded statement stream, a MiniPg backed by
//! `rddr-pgstore` must answer byte-identically on the wire to one backed by
//! the in-memory store — tags, rows, notices, and error frames alike.
//! Otherwise every mixed-engine deployment would drown RDDR in false
//! divergences. The second property pins crash recovery itself: killing a
//! paged instance mid-transaction and replaying the WAL is deterministic —
//! the same seed leaves the same WAL image, recovery stats, and state
//! digest every time.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rddr_repro::net::{BoxStream, Network, ServiceAddr};
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::pgsim::{
    query_message, startup_message, Database, DbFlavor, PgServer, PgVersion, RecoveryPolicy,
    StorageEngine, VDisk,
};
use rddr_repro::protocols::PgMessage;

fn version() -> PgVersion {
    PgVersion::parse("10.7").unwrap()
}

/// A deterministic SQL statement stream: DDL, multi-row inserts, point and
/// aggregate selects, updates, deletes, transaction verbs, and the odd
/// guaranteed error (error frames must match byte-for-byte too).
fn statement_stream(seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stmts = vec!["CREATE TABLE t (id INT, name TEXT, score FLOAT)".to_string()];
    let mut next_id = 0i64;
    let mut in_txn = false;
    for _ in 0..len {
        match rng.gen_range(0u32..10) {
            0..=3 => {
                let rows: Vec<String> = (0..rng.gen_range(1usize..=3))
                    .map(|_| {
                        next_id += 1;
                        format!(
                            "({next_id}, 'n{}', {}.5)",
                            rng.gen_range(0u32..100),
                            rng.gen_range(0i64..50)
                        )
                    })
                    .collect();
                stmts.push(format!("INSERT INTO t VALUES {}", rows.join(", ")));
            }
            4 => stmts.push(format!(
                "SELECT name, score FROM t WHERE id = {}",
                rng.gen_range(0i64..=next_id.max(1))
            )),
            5 => stmts.push("SELECT COUNT(*), SUM(score) FROM t".to_string()),
            6 => stmts.push(format!(
                "UPDATE t SET score = {}.25 WHERE id = {}",
                rng.gen_range(0i64..90),
                rng.gen_range(0i64..=next_id.max(1))
            )),
            7 => stmts.push(format!(
                "DELETE FROM t WHERE id = {}",
                rng.gen_range(0i64..=next_id.max(1))
            )),
            8 => {
                stmts.push(
                    match (in_txn, rng.gen_bool(0.5)) {
                        (false, _) => "BEGIN",
                        (true, true) => "COMMIT",
                        (true, false) => "ROLLBACK",
                    }
                    .to_string(),
                );
                in_txn = !in_txn;
            }
            _ => stmts.push("SELECT ghost FROM phantom".to_string()),
        }
    }
    if in_txn {
        stmts.push("COMMIT".to_string());
    }
    stmts
}

/// A raw pg-wire session: sends simple queries and returns the exact
/// response bytes up to and including ReadyForQuery.
struct WireSession {
    conn: BoxStream,
    buf: Vec<u8>,
}

impl WireSession {
    fn connect(cluster: &Cluster, addr: &ServiceAddr) -> Self {
        let mut conn = cluster.net().dial(addr).unwrap();
        conn.write_all(&startup_message("app")).unwrap();
        let mut session = WireSession {
            conn,
            buf: Vec::new(),
        };
        // The greeting carries instance-specific BackendKeyData (excluded
        // from diffing by the protocol module), so it is read and dropped
        // rather than compared.
        session.read_until_ready();
        session
    }

    fn read_until_ready(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            while let Some((m, used)) = PgMessage::decode(&self.buf, false).unwrap() {
                out.extend_from_slice(&self.buf[..used]);
                self.buf.drain(..used);
                if m.tag == b'Z' {
                    return out;
                }
            }
            let n = self
                .conn
                .read(&mut chunk)
                .expect("server closed mid-response");
            assert!(n > 0, "server closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn exchange(&mut self, sql: &str) -> Vec<u8> {
        self.conn.write_all(&query_message(sql)).unwrap();
        self.read_until_ready()
    }
}

/// Runs the same seeded stream against both engines and the list of
/// per-statement wire responses each produced.
fn wire_responses(engine: StorageEngine, stmts: &[String]) -> Vec<Vec<u8>> {
    let cluster = Cluster::new(1);
    let addr = ServiceAddr::new("db", 5432);
    let disk = VDisk::new("db-0");
    let db = Database::with_engine(version(), DbFlavor::Postgres, engine, &disk).unwrap();
    let _c = cluster
        .run_container(
            "db-0",
            Image::new("minipg", engine.as_str()),
            &addr,
            std::sync::Arc::new(PgServer::new(db)),
        )
        .unwrap();
    let mut session = WireSession::connect(&cluster, &addr);
    stmts.iter().map(|sql| session.exchange(sql)).collect()
}

/// Crash-recovery fixture: run a seeded stream, open a transaction, kill
/// the instance mid-transaction (drop + disk crash), then recover. Returns
/// the recovered WAL image, recovery stats, the post-recovery digest, and
/// how many phantom (uncommitted) rows survived.
fn recovered_state(seed: u64) -> (Vec<u8>, rddr_repro::pgsim::RecoveryStats, u64, usize) {
    let engine = StorageEngine::Paged {
        policy: RecoveryPolicy::ReplayForward,
    };
    let disk = VDisk::new("db-0");
    let mut db = Database::with_engine(version(), DbFlavor::Postgres, engine, &disk).unwrap();
    let mut session = db.session("app");
    for sql in statement_stream(seed, 14) {
        let _ = db.execute(&mut session, &sql);
    }
    db.execute(&mut session, "BEGIN").unwrap();
    db.execute(&mut session, "INSERT INTO t VALUES (9999, 'phantom', 0.5)")
        .unwrap();
    // Kill mid-transaction: the process dies and unsynced writes with it.
    drop(db);
    disk.crash();
    let mut db = Database::with_engine(version(), DbFlavor::Postgres, engine, &disk).unwrap();
    let stats = db.recovery_stats().expect("paged engine reports recovery");
    let wal = disk.read("wal", 0, disk.len("wal") as usize);
    let digest = db.state_digest();
    let mut session = db.session("app");
    let phantoms = db
        .execute(&mut session, "SELECT id FROM t WHERE id = 9999")
        .unwrap()
        .rows
        .len();
    (wal, stats, digest, phantoms)
}

proptest! {
    /// Byte-identical wire responses: memory vs paged, any seeded stream.
    #[test]
    fn paged_engine_is_wire_identical_to_memory(seed in any::<u64>(), len in 6usize..24) {
        let stmts = statement_stream(seed, len);
        let memory = wire_responses(StorageEngine::InMemory, &stmts);
        let paged = wire_responses(
            StorageEngine::Paged { policy: RecoveryPolicy::ReplayForward },
            &stmts,
        );
        for (i, (m, p)) in memory.iter().zip(&paged).enumerate() {
            prop_assert_eq!(
                m, p,
                "statement {} diverged on the wire: {:?}",
                i, &stmts[i]
            );
        }
    }

    /// Byte-identical WAL replay: the same seed and the same mid-transaction
    /// kill leave the same durable state, bit for bit.
    #[test]
    fn same_seed_wal_replay_is_byte_identical(seed in any::<u64>()) {
        let (wal_a, stats_a, digest_a, phantoms_a) = recovered_state(seed);
        let (wal_b, stats_b, digest_b, _) = recovered_state(seed);
        prop_assert!(!wal_a.is_empty(), "the stream must leave a WAL behind");
        prop_assert_eq!(wal_a, wal_b, "WAL image must replay byte-identically");
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(digest_a, digest_b);
        // The crash drops only unsynced writes, so the WAL tail sits on an
        // fsync boundary: nothing torn, and the phantom row died with the
        // process. (`discarded_txns` is seed-dependent: a stream ROLLBACK
        // hardened by a later commit's fsync replays as a discarded txn.)
        prop_assert!(!stats_a.torn_tail, "{:?}", stats_a);
        prop_assert_eq!(phantoms_a, 0, "uncommitted row must not survive the crash");
    }
}
