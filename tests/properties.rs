//! Property-based tests (proptest) on the core data structures and
//! invariants: the de-noise mask, ephemeral tokens, glob matching, LIKE,
//! the toy `rle` coding, JSON parsing, SQL round trips, and value ordering.

use proptest::prelude::*;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::{
    diff_segments, EngineConfig, EphemeralStore, GlobPattern, NVersionEngine, NoiseMask, Segment,
    SignatureThrottle, VarianceRules, Verdict,
};
use rddr_repro::pgsim::{Database, PgVersion, Value};
use rddr_repro::protocols::http::{rle_decode, rle_encode};
use rddr_repro::protocols::{parse_json, HttpProtocol};

fn segs(lines: &[String]) -> Vec<Segment> {
    lines
        .iter()
        .map(|l| Segment::new("line", l.as_bytes().to_vec()))
        .collect()
}

proptest! {
    /// Identical outputs never diverge, whatever they contain.
    #[test]
    fn identical_outputs_never_diverge(lines in proptest::collection::vec(".{0,40}", 0..20)) {
        let instances: Vec<Vec<Segment>> = (0..3).map(|_| segs(&lines)).collect();
        let out = diff_segments(&instances, &NoiseMask::none(), &VarianceRules::new());
        prop_assert!(!out.report.diverged());
    }

    /// Any single-segment payload change on a non-reference instance is
    /// detected when no masking applies.
    #[test]
    fn payload_change_is_detected(
        lines in proptest::collection::vec("[a-z]{1,20}", 1..10),
        idx in 0usize..10,
        suffix in "[A-Z]{1,8}",
    ) {
        let idx = idx % lines.len();
        let mut mutated = lines.clone();
        mutated[idx] = format!("{}{}", mutated[idx], suffix);
        let instances = vec![segs(&lines), segs(&mutated)];
        let out = diff_segments(&instances, &NoiseMask::none(), &VarianceRules::new());
        prop_assert!(out.report.diverged());
    }

    /// The filter-pair mask makes the pair itself always compare equal —
    /// the core soundness property of the de-noiser.
    #[test]
    fn filter_pair_canonicalizes_itself_equal(
        common_prefix in "[a-z]{0,10}",
        noise_a in "[0-9a-f]{1,12}",
        noise_b in "[0-9a-f]{1,12}",
        common_suffix in "[a-z]{0,10}",
    ) {
        let a = segs(&[format!("{common_prefix}{noise_a}{common_suffix}")]);
        let b = segs(&[format!("{common_prefix}{noise_b}{common_suffix}")]);
        let mask = NoiseMask::from_filter_pair(&a, &b);
        let canon_a = mask.apply(0, &a[0].payload);
        let canon_b = mask.apply(0, &b[0].payload);
        prop_assert_eq!(canon_a, canon_b);
    }

    /// A captured ephemeral token substitutes round-trip: instance i always
    /// receives exactly its own token.
    #[test]
    fn ephemeral_substitution_round_trips(
        t0 in "[a-zA-Z0-9]{10,20}",
        t1 in "[a-zA-Z0-9]{10,20}",
        t2 in "[a-zA-Z0-9]{10,20}",
    ) {
        prop_assume!(t0 != t1 && t1 != t2 && t0 != t2);
        let mut store = EphemeralStore::new();
        let pages: Vec<Vec<u8>> = [&t0, &t1, &t2]
            .iter()
            .map(|t| format!("<input value=\"{t}\">").into_bytes())
            .collect();
        let views: Vec<&[u8]> = pages.iter().map(Vec::as_slice).collect();
        let token = store.scan_position(&views);
        prop_assume!(token.is_some()); // prefixes may overlap pathologically
        let request = format!("POST /x token={t0} end");
        for (i, expected) in [&t0, &t1, &t2].iter().enumerate() {
            let rewritten = store.substitute(request.as_bytes(), i);
            let text = String::from_utf8_lossy(&rewritten).into_owned();
            prop_assert!(text.contains(expected.as_str()), "{i}: {text}");
        }
    }

    /// The unanimous fast path renders verdicts identical to the full
    /// pipeline, whatever the instances answer: unanimous ⇔ unanimous with
    /// the same forwarded bytes, and byte-for-byte the same
    /// `DivergenceReport` on a mismatch. Covers clean agreement, filter-pair
    /// noise (which forces a fast-path miss and a full de-noise run), and a
    /// surplus-line leak on a non-filter-pair instance.
    #[test]
    fn fast_path_verdicts_match_full_pipeline(
        lines in proptest::collection::vec("[a-z]{1,12}", 1..6),
        with_nonce in any::<bool>(),
        nonces in proptest::collection::vec("[0-9a-f]{4,8}", 3..4),
        with_leak in any::<bool>(),
        leak in "[A-Z]{1,6}",
    ) {
        let nonce = with_nonce.then_some(&nonces);
        let leak = with_leak.then_some(&leak);
        let mut responses: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                let mut out = String::new();
                for (k, line) in lines.iter().enumerate() {
                    // Optional per-instance noise on the first line: the
                    // (0,1) filter pair should mask it when it is truly
                    // nondeterministic, and flag instance 2 when not.
                    match (&nonce, k) {
                        (Some(ns), 0) => {
                            let n = &ns[i];
                            out.push_str(&format!("id={n} {line}\n"));
                        }
                        _ => {
                            out.push_str(line);
                            out.push('\n');
                        }
                    }
                }
                out.into_bytes()
            })
            .collect();
        if let Some(extra) = &leak {
            // A surplus line from instance 2 only: the classic data leak.
            responses[2].extend_from_slice(format!("{extra}\n").as_bytes());
        }
        let run = |fast: bool| {
            let config = EngineConfig::builder(3).fast_path(fast).build().unwrap();
            NVersionEngine::new(config, LineProtocol::new())
                .evaluate_responses(&responses)
                .unwrap()
        };
        match (run(true), run(false)) {
            (Verdict::Unanimous(a), Verdict::Unanimous(b)) => prop_assert_eq!(a, b),
            (Verdict::Divergent(a), Verdict::Divergent(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "verdicts disagree: {a:?} vs {b:?}"),
        }
    }

    /// Replication is copy-on-write under ephemeral-token substitution: a
    /// request that echoes the captured token is rewritten per instance
    /// (each instance receives exactly its own token), while a token-free
    /// request shares one allocation across all N copies even with live
    /// tokens in the store.
    #[test]
    fn ephemeral_replication_is_copy_on_write(
        t0 in "[a-zA-Z0-9]{12,18}",
        t1 in "[a-zA-Z0-9]{12,18}",
        t2 in "[a-zA-Z0-9]{12,18}",
    ) {
        prop_assume!(t0 != t1 && t1 != t2 && t0 != t2);
        let config = EngineConfig::builder(3).build().unwrap();
        let mut engine = NVersionEngine::new(config, HttpProtocol::new());
        for (i, t) in [&t0, &t1, &t2].iter().enumerate() {
            let body = format!("token={t}\n");
            let resp = format!(
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            engine.push_response(i, resp.as_bytes()).unwrap();
        }
        let outcome = engine.finish_exchange().unwrap();
        // Pathological token overlaps (shared prefixes shrinking the
        // differing middle below the capture threshold) abort capture.
        prop_assume!(outcome.report.tokens_captured > 0);
        prop_assert!(!outcome.report.diverged());

        // Token-free request: live tokens, nothing fires — all N copies
        // borrow the same shared buffer.
        let plain = b"GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        let copies = engine.replicate_request(plain).unwrap();
        for copy in &copies {
            prop_assert!(copy.is_shared());
            prop_assert_eq!(copy.as_bytes().as_ptr(), copies[0].as_bytes().as_ptr());
        }

        // The canonical token echoed back: every instance's copy is
        // rewritten to carry its own token.
        let echo = format!("POST /s?t={t0} HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        let copies = engine.replicate_request(echo.as_bytes()).unwrap();
        prop_assert_eq!(copies.len(), 3);
        for (copy, expected) in copies.iter().zip([&t0, &t1, &t2]) {
            let text = String::from_utf8_lossy(copy.as_bytes()).into_owned();
            prop_assert!(text.contains(expected.as_str()), "{text}");
        }
    }

    /// Glob: a pattern built by wildcard-ing a string always matches it.
    #[test]
    fn glob_self_match(s in "[a-zA-Z0-9 ]{1,30}", cut in 0usize..30) {
        let cut = cut % s.len();
        let pattern = format!("{}*{}", &s[..cut], &s[cut..]);
        let g = GlobPattern::new(&pattern).unwrap();
        prop_assert!(g.matches(s.as_bytes()));
    }

    /// Glob: a literal pattern matches exactly itself.
    #[test]
    fn glob_literal_exactness(s in "[a-zA-Z0-9]{1,20}", other in "[a-zA-Z0-9]{1,20}") {
        let g = GlobPattern::new(&s).unwrap();
        prop_assert!(g.matches(s.as_bytes()));
        prop_assert_eq!(g.matches(other.as_bytes()), s == other);
    }

    /// rle: decode(encode(x)) == x for arbitrary bytes.
    #[test]
    fn rle_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = rle_encode(&data);
        prop_assert_eq!(rle_decode(&encoded).unwrap(), data);
    }

    /// Signature throttle: recording a request makes exactly that request
    /// refusable; others stay unaffected.
    #[test]
    fn throttle_is_precise(bad in proptest::collection::vec(any::<u8>(), 1..64),
                           good in proptest::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(bad != good);
        let mut t = SignatureThrottle::new(0);
        t.record(&bad);
        prop_assert!(t.should_refuse(&bad));
        prop_assert!(!t.should_refuse(&good));
    }

    /// JSON: integers round-trip through render + reparse.
    #[test]
    fn json_number_round_trip(n in -1_000_000_000i64..1_000_000_000) {
        let doc = format!("{{\"v\": {n}}}");
        let parsed = parse_json(&doc).unwrap();
        let rendered = parsed.to_string();
        let reparsed = parse_json(&rendered).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// JSON: escaped strings round-trip.
    #[test]
    fn json_string_round_trip(s in "[a-zA-Z0-9 \\\\\"\n\t]{0,40}") {
        let escaped = s
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t");
        let doc = format!("\"{escaped}\"");
        let parsed = parse_json(&doc).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// SQL: inserted rows are retrievable by key and COUNT agrees.
    #[test]
    fn sql_insert_select_round_trip(rows in proptest::collection::btree_map(
        0i64..1000, "[a-zA-Z0-9]{0,12}", 1..20)) {
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        let mut session = db.session("app");
        db.execute(&mut session, "CREATE TABLE t (id INT, name TEXT)").unwrap();
        let values: Vec<String> =
            rows.iter().map(|(k, v)| format!("({k}, '{v}')")).collect();
        db.execute(&mut session, &format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        let count = db.execute(&mut session, "SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(count.rows[0][0].to_string(), rows.len().to_string());
        for (k, v) in rows.iter().take(5) {
            let r = db
                .execute(&mut session, &format!("SELECT name FROM t WHERE id = {k}"))
                .unwrap();
            prop_assert_eq!(r.rows.len(), 1);
            prop_assert_eq!(r.rows[0][0].to_string(), v.clone());
        }
    }

    /// Value::total_cmp is antisymmetric and transitive on a sample triple.
    #[test]
    fn value_total_cmp_is_consistent(a in -100i64..100, b in -100i64..100, c in -100i64..100) {
        let (va, vb, vc) = (Value::Int(a), Value::Float(b as f64), Value::Int(c));
        let ab = va.total_cmp(&vb);
        let ba = vb.total_cmp(&va);
        prop_assert_eq!(ab, ba.reverse());
        if ab != std::cmp::Ordering::Greater && vb.total_cmp(&vc) != std::cmp::Ordering::Greater {
            prop_assert_ne!(va.total_cmp(&vc), std::cmp::Ordering::Greater);
        }
    }

    /// ORDER BY sorts whatever we throw at it.
    #[test]
    fn sql_order_by_sorts(mut xs in proptest::collection::vec(-1000i64..1000, 1..30)) {
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        let mut session = db.session("app");
        db.execute(&mut session, "CREATE TABLE t (x INT)").unwrap();
        let values: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
        db.execute(&mut session, &format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        let r = db.execute(&mut session, "SELECT x FROM t ORDER BY x").unwrap();
        xs.sort_unstable();
        let got: Vec<i64> = r
            .rows
            .iter()
            .map(|row| row[0].to_string().parse().unwrap())
            .collect();
        prop_assert_eq!(got, xs);
    }
}
