//! Configuration-file round trip: parse an RDDR config (§IV-B1/IV-B4),
//! resolve its protocol module, start a proxy from it, and serve traffic —
//! the "operator edits a file, redeploys the proxy container" workflow.

use std::sync::Arc;

use rddr_repro::core::ConfigFile;
use rddr_repro::httpsim::{HttpClient, HttpResponse, HttpService};
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::proxy::{protocol_factory, IncomingProxy};

const CONFIG: &str = "
    # nginx version-diversity deployment (the §V-D case study)
    instances = 2
    protocol = http
    policy = block
    response_deadline_ms = 2000

    [variance]
    http:header:server *
";

fn versioned_service(version: &'static str) -> Arc<HttpService> {
    Arc::new(
        HttpService::new("api").route("GET", "/data", move |_req, _ctx| {
            HttpResponse::ok("the same payload").header("Server", version)
        }),
    )
}

#[test]
fn proxy_built_from_config_file_serves_and_applies_variance() {
    let cfg = ConfigFile::parse(CONFIG).expect("config parses");
    let protocol = protocol_factory(&cfg.protocol).expect("protocol known");

    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for (i, version) in ["nginx/1.13.2", "nginx/1.13.4"].iter().enumerate() {
        handles.push(
            cluster
                .run_container(
                    format!("api-{i}"),
                    Image::new("api", *version),
                    &ServiceAddr::new("api", 8000 + i as u16),
                    versioned_service(version),
                )
                .unwrap(),
        );
    }
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("api", 8000), ServiceAddr::new("api", 8001)],
        cfg.engine,
        protocol,
    )
    .unwrap();

    // Differing Server banners are covered by the config's variance rule;
    // the identical bodies flow through.
    let net = cluster.net();
    let mut client = HttpClient::connect(&net, &ServiceAddr::new("rddr", 80)).unwrap();
    let resp = client.get("/data").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_text(), "the same payload");
}

#[test]
fn unknown_protocol_name_is_reported() {
    assert!(protocol_factory("grpc").is_none());
    for known in ["http", "postgres", "pg", "json", "line", "raw"] {
        assert!(protocol_factory(known).is_some(), "{known}");
    }
}
