//! Crash-recovery chaos: kill a paged MiniPg instance mid-transaction,
//! respawn it through the supervisor's service factory (WAL recovery runs
//! before readiness), and let RDDR vote on what recovery produced.
//!
//! The acceptance scenario runs three paged instances behind a
//! MajorityVote + eject proxy. Instances 0 and 1 recover with
//! `replay-forward`; instance 2's policy is the variable. A first
//! transaction inserts a durably-committed marker row; a second is in
//! flight when instance 2's container is stopped and its disk crashes with
//! a seeded truncated-WAL-tail fault — tearing the *marker's* commit
//! record. `replay-forward` honours the torn trailing commit; a
//! `shadow-discard` instance discards it, diverges on the next read, and
//! is quarantined with `"offending_instance":2` in the audit log. The same
//! seed replays byte-for-byte: audit log, recovered WAL image, and state
//! digest.
//!
//! The seed is `RDDR_CHAOS_SEED` when set (CI runs the suite under three
//! fixed seeds), with a fixed default for local runs.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use rddr_repro::core::{DegradePolicy, EngineConfig, ResponsePolicy};
use rddr_repro::net::{ConnSelector, FaultPlan, Network, ServiceAddr, StorageFault};
use rddr_repro::orchestra::{Cluster, Image, Service, Supervisor};
use rddr_repro::pgsim::{
    Database, DbFlavor, PgClient, PgServer, PgVersion, PlanDiskFaults, RecoveryStats,
    StorageEngine, VDisk,
};
use rddr_repro::protocols::PgProtocol;
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory, ProxyTelemetry, StatsSnapshot};

const DEFAULT_SEED: u64 = 0x0D5A_2022;

fn chaos_seed() -> u64 {
    std::env::var("RDDR_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn pg() -> ProtocolFactory {
    Arc::new(|| Box::new(PgProtocol::new()))
}

fn minipg(engine: StorageEngine, disk: &VDisk) -> Result<Arc<dyn Service>, String> {
    let db = Database::with_engine(
        PgVersion::parse("10.7").map_err(|e| e.to_string())?,
        DbFlavor::Postgres,
        engine,
        disk,
    )
    .map_err(|e| e.to_string())?;
    Ok(Arc::new(PgServer::new(db)) as Arc<dyn Service>)
}

/// What one scenario run leaves behind for replay comparison.
#[derive(Debug, PartialEq)]
struct RunResult {
    stats: StatsSnapshot,
    audit: String,
    /// Instance 2's recovery outcome and post-recovery state digest,
    /// captured inside the respawn factory.
    recovery: Option<(RecoveryStats, u64)>,
    /// Instance 2's WAL image after recovery repaired it.
    wal_bytes: Vec<u8>,
    /// What the client read back for the marker row after the respawn.
    marker_rows: Vec<Vec<String>>,
    restarts: u64,
}

/// Kill-mid-transaction → crash with a torn WAL tail → factory respawn →
/// fresh-session readmission → RDDR votes on the recovered state.
/// `third_policy` picks instance 2's engine spec.
fn run_scenario(seed: u64, third_policy: &str) -> RunResult {
    let plan = FaultPlan::new(seed);
    // First crash of instance 2's WAL tears the tail of its last durable
    // append — which the scenario arranges to be the marker's commit record.
    plan.storage_inject(
        "db-2",
        Some("wal"),
        ConnSelector::Nth(0),
        StorageFault::TruncatedWalTail,
    );

    let cluster = Cluster::new(3);
    let supervisor = Supervisor::new();
    let specs = ["paged:replay-forward", "paged:replay-forward", third_policy];
    let mut disks: Vec<VDisk> = Vec::new();
    let mut handles = Vec::new();
    // Instance 2's recovery stats + post-recovery digest, written by the
    // respawn factory — proof recovery ran before the readiness probe.
    let recovered: Arc<Mutex<Option<(RecoveryStats, u64)>>> = Arc::new(Mutex::new(None));
    for (i, spec) in specs.iter().enumerate() {
        let engine = StorageEngine::parse(spec).unwrap();
        let disk = PlanDiskFaults::disk(plan.clone(), &format!("db-{i}"));
        let addr = ServiceAddr::new("db", 5432 + i as u16);
        let image = Image::new("minipg", *spec);
        handles.push(
            cluster
                .run_container(
                    format!("db-{i}"),
                    image.clone(),
                    &addr,
                    minipg(engine, &disk).unwrap(),
                )
                .unwrap(),
        );
        let factory_disk = disk.clone();
        let slot = Arc::clone(&recovered);
        supervisor.register_factory(format!("db-{i}"), image, addr, move || {
            let db = Database::with_engine(
                PgVersion::parse("10.7").map_err(|e| e.to_string())?,
                DbFlavor::Postgres,
                engine,
                &factory_disk,
            )
            .map_err(|e| e.to_string())?;
            if let Some(stats) = db.recovery_stats() {
                *slot.lock().unwrap() = Some((stats, db.state_digest()));
            }
            Ok(Arc::new(PgServer::new(db)) as Arc<dyn Service>)
        });
        disks.push(disk);
    }

    let telemetry = ProxyTelemetry::new("recovery-chaos");
    let rddr = ServiceAddr::new("rddr-db", 5432);
    let proxy = IncomingProxy::start_with_telemetry(
        Arc::new(cluster.net()),
        &rddr,
        vec![
            ServiceAddr::new("db", 5432),
            ServiceAddr::new("db", 5433),
            ServiceAddr::new("db", 5434),
        ],
        EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .degrade(DegradePolicy::eject())
            .response_deadline(Duration::from_millis(800))
            .instance_deadline(Duration::from_millis(300))
            .build()
            .unwrap(),
        pg(),
        Some(telemetry.clone()),
    )
    .unwrap();

    // Session 1: a durably-committed marker, then a transaction that is
    // mid-flight when instance 2 dies.
    let conn = cluster.net().dial(&rddr).unwrap();
    let mut client = PgClient::connect(conn, "app").unwrap();
    client
        .query("CREATE TABLE journal (id INT, note TEXT)")
        .unwrap();
    client.query("BEGIN").unwrap();
    client
        .query("INSERT INTO journal VALUES (1, 'marker')")
        .unwrap();
    let r = client.query("COMMIT").unwrap();
    assert_eq!(r.tag, "COMMIT");
    client.query("BEGIN").unwrap();
    client
        .query("INSERT INTO journal VALUES (2, 'phantom')")
        .unwrap();
    // Kill instance 2 mid-transaction: container gone, disk crashed. The
    // uncommitted phantom records die in the page cache; the armed fault
    // tears the durable tail — the marker's commit record.
    handles[2].kill();
    disks[2].crash();
    // The surviving quorum finishes the transaction; the dead replica is
    // ejected from the diff set.
    let r = client.query("ROLLBACK").unwrap();
    assert_eq!(r.tag, "ROLLBACK");
    drop(client);

    // Respawn through the factory: WAL recovery runs inside it, so the
    // readiness probe passing implies recovery completed.
    let respawned = supervisor
        .respawn(&cluster, "db-2", Duration::from_secs(2))
        .unwrap();

    // Session 2: the recovered replica is readmitted by the fresh fan-out
    // (a recovered replica reappears as a fresh session) and RDDR votes on
    // what its recovery policy kept.
    let conn = cluster.net().dial(&rddr).unwrap();
    let mut client = PgClient::connect(conn, "app").unwrap();
    let marker = client
        .query("SELECT note FROM journal WHERE id = 1")
        .unwrap();
    drop(client);
    drop(respawned);

    // Let the session thread retire so its counters settle.
    std::thread::sleep(Duration::from_millis(50));
    let stats = proxy.stats();
    let wal_len = disks[2].len("wal") as usize;
    let recovery = *recovered.lock().unwrap();
    RunResult {
        stats,
        audit: telemetry.audit.stable_json(),
        recovery,
        wal_bytes: disks[2].read("wal", 0, wal_len),
        marker_rows: marker.rows,
        restarts: supervisor.restarts(),
    }
}

#[test]
fn shadow_discard_recovery_diverges_and_is_quarantined() {
    let run = run_scenario(chaos_seed(), "paged:shadow-discard");
    assert_eq!(run.restarts, 1, "supervisor must have respawned db-2");
    let (stats, digest) = run.recovery.expect("factory must capture recovery");
    assert!(stats.torn_tail, "the armed fault must tear the WAL tail");
    assert!(
        !stats.honoured_torn_commit,
        "shadow-discard must not honour the torn commit: {stats:?}"
    );
    assert_eq!(stats.discarded_txns, 1, "{stats:?}");
    assert_ne!(digest, 0);
    // The dead replica was ejected mid-transaction…
    assert!(run.stats.ejected >= 1, "{:?}", run.stats);
    // …and its divergent recovery was outvoted and quarantined.
    assert!(run.stats.quarantined >= 1, "{:?}", run.stats);
    assert!(
        run.audit.contains("\"offending_instance\":2"),
        "vote must implicate the shadow-discard instance: {}",
        run.audit
    );
    // The client still gets the quorum's answer: the marker survived.
    assert_eq!(run.marker_rows, vec![vec!["marker".to_string()]]);
}

#[test]
fn replay_forward_recovery_converges_and_rejoins_cleanly() {
    let run = run_scenario(chaos_seed(), "paged:replay-forward");
    let (stats, _) = run.recovery.expect("factory must capture recovery");
    assert!(stats.torn_tail, "{stats:?}");
    assert!(
        stats.honoured_torn_commit,
        "replay-forward must roll the torn commit forward: {stats:?}"
    );
    assert!(run.stats.ejected >= 1, "{:?}", run.stats);
    // Identical recovery policies reach identical state: no divergence,
    // no quarantine, nothing to pin on the respawned instance.
    assert_eq!(run.stats.quarantined, 0, "{:?}", run.stats);
    assert!(
        !run.audit.contains("\"offending_instance\""),
        "convergent recovery must not implicate anyone: {}",
        run.audit
    );
    assert_eq!(run.marker_rows, vec![vec!["marker".to_string()]]);
}

#[test]
fn same_seed_crash_recovery_replays_byte_identically() {
    let seed = chaos_seed();
    let a = run_scenario(seed, "paged:shadow-discard");
    let b = run_scenario(seed, "paged:shadow-discard");
    assert!(!a.audit.is_empty());
    assert_eq!(a.audit, b.audit, "audit log must replay byte-identically");
    assert_eq!(
        a.wal_bytes, b.wal_bytes,
        "recovered WAL image must replay byte-identically"
    );
    assert_eq!(
        a.recovery, b.recovery,
        "recovery stats and digest must match"
    );
    assert_eq!(a.stats, b.stats, "proxy counters must match");
}
