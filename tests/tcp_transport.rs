//! The same RDDR deployment over real TCP sockets ([`TcpNet`]): the
//! production transport the paper's Kubernetes deployment would use.
//! Deployments written against `rddr_net::Network` run unchanged.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::EngineConfig;
use rddr_repro::net::{BoxStream, Network, ServiceAddr, Stream, TcpNet};
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

fn line() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

/// Starts a TCP line server on an ephemeral port, returning its address.
/// `transform` maps each request line to the reply line.
fn spawn_tcp_line_server(
    transform: impl Fn(&str) -> String + Send + Sync + Clone + 'static,
) -> ServiceAddr {
    let net = TcpNet::new();
    let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            let transform = transform.clone();
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let raw: Vec<u8> = buf.drain(..=pos).collect();
                        let text = String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
                        let reply = format!("{}\n", transform(&text));
                        if conn.write_all(reply.as_bytes()).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
    addr
}

fn read_line(conn: &mut BoxStream) -> Option<String> {
    let mut out = Vec::new();
    let mut b = [0u8; 1];
    loop {
        match conn.read(&mut b) {
            Ok(0) | Err(_) => {
                return (!out.is_empty()).then(|| String::from_utf8_lossy(&out).into_owned())
            }
            Ok(_) if b[0] == b'\n' => return Some(String::from_utf8_lossy(&out).into_owned()),
            Ok(_) => out.push(b[0]),
        }
    }
}

#[test]
fn rddr_over_real_tcp_forwards_and_severs() {
    let instance_a = spawn_tcp_line_server(|req| format!("resp:{req}"));
    let instance_b = spawn_tcp_line_server(|req| {
        if req.contains("exploit") {
            format!("resp:{req} PLUS-A-LEAK")
        } else {
            format!("resp:{req}")
        }
    });

    let proxy = IncomingProxy::start(
        Arc::new(TcpNet::new()),
        &ServiceAddr::new("127.0.0.1", 0),
        vec![instance_a, instance_b],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_secs(3))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();
    let proxy_addr = proxy.listen_addr().clone();
    assert_ne!(proxy_addr.port(), 0, "ephemeral port must be resolved");

    let net = TcpNet::new();
    // Benign traffic flows over real sockets.
    let mut client = net.dial(&proxy_addr).unwrap();
    client.write_all(b"hello\n").unwrap();
    assert_eq!(read_line(&mut client).as_deref(), Some("resp:hello"));
    client.write_all(b"again\n").unwrap();
    assert_eq!(read_line(&mut client).as_deref(), Some("resp:again"));

    // The divergent exploit is severed.
    let mut attacker = net.dial(&proxy_addr).unwrap();
    attacker.write_all(b"exploit\n").unwrap();
    let reply = read_line(&mut attacker);
    assert!(
        reply.as_deref().is_none_or(|r| !r.contains("LEAK")),
        "leak must not cross real TCP either: {reply:?}"
    );
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(proxy.stats().divergences, 1);
}
