//! Corpus replay gates for the seeded fuzz harness.
//!
//! The committed corpus under `tests/corpus/` is the contract the fuzzer
//! must keep honouring: every shrunk reproducer must still rebuild its
//! deployment (re-deriving the chaos plan from the stored case seed),
//! diverge with the same normalized signature, and re-triage to the same
//! verdict. A second gate pins the determinism claim itself — a campaign
//! is a pure function of `(seed, config)`, so two identical runs must
//! serialize byte-identically.

use std::path::PathBuf;

use rddr_repro::fuzz::{corpus, fuzz, replay, FuzzConfig, TargetId, Verdict};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn committed_corpus_replays_exactly() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        entries.len() >= 8,
        "starter corpus went missing: {} entries",
        entries.len()
    );
    for (name, rep) in &entries {
        let outcome = replay(rep).expect("replay deploys");
        assert!(
            outcome.matches(rep),
            "{name}: replay drifted: diverged={} verdict={:?} signature={}",
            outcome.diverged,
            outcome.verdict,
            outcome.signature,
        );
    }
}

#[test]
fn corpus_includes_a_chaos_only_reproducer_and_it_replays() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus loads");
    let chaos_only: Vec<_> = entries
        .iter()
        .filter(|(_, rep)| rep.verdict == Verdict::ChaosOnly)
        .collect();
    assert!(
        !chaos_only.is_empty(),
        "the corpus must carry at least one fuzz-under-chaos finding"
    );
    for (name, rep) in chaos_only {
        assert!(rep.chaos, "{name}: chaos-only finding without a fault plan");
        let outcome = replay(rep).expect("replay deploys");
        assert_eq!(
            outcome.verdict,
            Some(Verdict::ChaosOnly),
            "{name}: divergence should vanish without the fault schedule"
        );
    }
}

#[test]
fn same_seed_campaigns_serialize_byte_identically() {
    let config = FuzzConfig {
        seed: 7,
        targets: vec![TargetId::PgFlavors, TargetId::LibMarkdown],
        cases_per_target: 4,
        max_items: 6,
        shrink_budget: 16,
        chaos: false,
    };
    let a = fuzz(&config).expect("first campaign");
    let b = fuzz(&config).expect("second campaign");
    assert_eq!(a.findings_json(), b.findings_json());
    let texts = |reps: Vec<rddr_repro::fuzz::Reproducer>| {
        reps.iter().map(|r| r.to_text()).collect::<Vec<_>>()
    };
    assert_eq!(texts(a.reproducers()), texts(b.reproducers()));
}
