//! The flip side of N-versioning (§II, citing Knight & Leveson): with **no
//! diversity** — every instance sharing the same bug — the instances leak
//! *identically*, RDDR sees unanimity, and the attack succeeds. "The attack
//! surface of the system is the intersection of the attack surfaces of all
//! instances." This test pins that honest negative behaviour.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::{HttpClient, NginxSim, NginxVersion};
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image};
use rddr_repro::protocols::HttpProtocol;
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

fn http() -> ProtocolFactory {
    Arc::new(|| Box::new(HttpProtocol::new()))
}

#[test]
fn identical_vulnerable_instances_leak_in_unison() {
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    // Both instances run the SAME vulnerable version with the SAME adjacent
    // cache contents — zero diversity.
    for i in 0..2u16 {
        let server = NginxSim::file_server(NginxVersion::parse("1.13.2"));
        server.publish("/f", b"doc".to_vec(), b"SHARED-SECRET".to_vec());
        handles.push(
            cluster
                .run_container(
                    format!("nginx-{i}"),
                    Image::new("nginx", "1.13.2"),
                    &ServiceAddr::new("nginx", 8000 + i),
                    Arc::new(server),
                )
                .unwrap(),
        );
    }
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr", 80),
        vec![
            ServiceAddr::new("nginx", 8000),
            ServiceAddr::new("nginx", 8001),
        ],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        http(),
    )
    .unwrap();

    let net = cluster.net();
    let mut attacker = HttpClient::connect(&net, &ServiceAddr::new("rddr", 80)).unwrap();
    attacker
        .send_raw(b"GET /f HTTP/1.1\r\nHost: n\r\nRange: bytes=-9223372036854775608\r\n\r\n")
        .unwrap();
    let resp = attacker.read_response().unwrap();
    // Unanimous leak: RDDR forwards it — N-versioning is only as strong as
    // the diversity behind it.
    assert_eq!(resp.status, 206);
    assert!(
        resp.body_text().contains("SHARED-SECRET"),
        "a common-mode bug must pass RDDR undetected (by design)"
    );
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(proxy.stats().divergences, 0);
}

#[test]
fn adding_one_patched_instance_restores_the_defence() {
    // Same deployment plus a third, patched instance: the intersection of
    // attack surfaces shrinks and the leak is caught again.
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for (i, version) in ["1.13.2", "1.13.2", "1.13.4"].iter().enumerate() {
        let server = NginxSim::file_server(NginxVersion::parse(version));
        server.publish("/f", b"doc".to_vec(), b"SHARED-SECRET".to_vec());
        handles.push(
            cluster
                .run_container(
                    format!("nginx-{i}"),
                    Image::new("nginx", *version),
                    &ServiceAddr::new("nginx", 8000 + i as u16),
                    Arc::new(server),
                )
                .unwrap(),
        );
    }
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &ServiceAddr::new("rddr", 80),
        (0..3)
            .map(|i| ServiceAddr::new("nginx", 8000 + i))
            .collect(),
        EngineConfig::builder(3)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        http(),
    )
    .unwrap();

    let net = cluster.net();
    let mut attacker = HttpClient::connect(&net, &ServiceAddr::new("rddr", 80)).unwrap();
    attacker
        .send_raw(b"GET /f HTTP/1.1\r\nHost: n\r\nRange: bytes=-9223372036854775608\r\n\r\n")
        .unwrap();
    let blocked = match attacker.read_response() {
        Err(_) => true,
        Ok(resp) => resp.status == 403 && !resp.body_text().contains("SHARED-SECRET"),
    };
    assert!(blocked, "one diverse instance is enough to catch the leak");
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(proxy.stats().divergences, 1);
}
