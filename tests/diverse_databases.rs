//! §V-C2 end-to-end: Postgres + CockroachDB as diverse implementations of
//! one logical database behind RDDR — benign equivalence, the configuration
//! caveats the paper describes (isolation levels, row order), and the
//! divergence that mitigates the exploit.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::net::{Network, ServiceAddr};
use rddr_repro::orchestra::{Cluster, ContainerHandle, Image};
use rddr_repro::pgsim::{CockroachFlavor, Database, DbFlavor, PgClient, PgServer, PgVersion};
use rddr_repro::protocols::PgProtocol;
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

fn pg() -> ProtocolFactory {
    Arc::new(|| Box::new(PgProtocol::new()))
}

fn seed(db: &mut Database) {
    let mut s = db.session("app");
    db.execute(
        &mut s,
        "CREATE TABLE accounts (id INT, owner TEXT, balance INT)",
    )
    .unwrap();
    db.execute(
        &mut s,
        "INSERT INTO accounts VALUES (1, 'ada', 100), (2, 'bob', 250), (3, 'cyd', 50)",
    )
    .unwrap();
}

fn deploy_safe(
    cockroach: CockroachFlavor,
) -> (Cluster, Vec<ContainerHandle>, IncomingProxy, ServiceAddr) {
    let cluster = Cluster::new(4);
    let mut handles = Vec::new();
    for (i, flavor) in [DbFlavor::Postgres, DbFlavor::Cockroach(cockroach)]
        .into_iter()
        .enumerate()
    {
        let mut db = Database::with_flavor(PgVersion::parse("10.7").unwrap(), flavor);
        seed(&mut db);
        handles.push(
            cluster
                .run_container(
                    format!("db-{i}"),
                    Image::new("db", "v1"),
                    &ServiceAddr::new("db", 5432 + i as u16),
                    Arc::new(PgServer::new(db)),
                )
                .unwrap(),
        );
    }
    let addr = ServiceAddr::new("rddr-db", 5432);
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &addr,
        vec![ServiceAddr::new("db", 5432), ServiceAddr::new("db", 5433)],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_millis(800))
            .build()
            .unwrap(),
        pg(),
    )
    .unwrap();
    (cluster, handles, proxy, addr)
}

#[test]
fn ordered_queries_agree_across_implementations() {
    let (cluster, _h, _proxy, addr) = deploy_safe(CockroachFlavor::default());
    let conn = cluster.net().dial(&addr).unwrap();
    let mut client = PgClient::connect(conn, "app").unwrap();
    let r = client
        .query("SELECT owner, balance FROM accounts ORDER BY balance DESC")
        .unwrap();
    assert!(r.error.is_none());
    assert_eq!(
        r.rows,
        vec![
            vec!["bob".to_string(), "250".to_string()],
            vec!["ada".to_string(), "100".to_string()],
            vec!["cyd".to_string(), "50".to_string()],
        ]
    );
}

#[test]
fn aggregates_and_dml_agree_across_implementations() {
    let (cluster, _h, proxy, addr) = deploy_safe(CockroachFlavor::default());
    let conn = cluster.net().dial(&addr).unwrap();
    let mut client = PgClient::connect(conn, "app").unwrap();
    let r = client
        .query("SELECT SUM(balance), COUNT(*) FROM accounts")
        .unwrap();
    assert_eq!(r.rows, vec![vec!["400".to_string(), "3".to_string()]]);
    let r = client
        .query("UPDATE accounts SET balance = balance + 10 WHERE owner = 'cyd'")
        .unwrap();
    assert_eq!(r.tag, "UPDATE 1");
    let r = client
        .query("SELECT balance FROM accounts WHERE owner = 'cyd'")
        .unwrap();
    assert_eq!(r.rows, vec![vec!["60".to_string()]]);
    assert_eq!(proxy.stats().divergences, 0);
}

#[test]
fn unordered_row_order_mismatch_blocks_benign_traffic() {
    // The paper's caveat: "the PostgreSQL query language does not require
    // any particular row order unless specified by ORDER BY … If they
    // differ, then RDDR will block the benign traffic."
    let (cluster, _h, proxy, addr) = deploy_safe(CockroachFlavor {
        scramble_row_order: true,
        ..CockroachFlavor::default()
    });
    let conn = cluster.net().dial(&addr).unwrap();
    let mut client = PgClient::connect(conn, "app").unwrap();
    let result = client.query("SELECT owner FROM accounts");
    assert!(
        result.is_err(),
        "differing row order must trigger a (false-positive) divergence"
    );
    std::thread::sleep(Duration::from_millis(50));
    assert!(proxy.stats().severed >= 1);

    // An ORDER BY restores agreement on a fresh session.
    let conn = cluster.net().dial(&addr).unwrap();
    let mut client = PgClient::connect(conn, "app").unwrap();
    let r = client
        .query("SELECT owner FROM accounts ORDER BY owner")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn isolation_level_must_match_cockroach() {
    // "We configured Postgres' transaction isolation level to match
    // CockroachDB, which forces serializable isolation."
    let (cluster, _h, _proxy, addr) = deploy_safe(CockroachFlavor::default());
    let conn = cluster.net().dial(&addr).unwrap();
    let mut client = PgClient::connect(conn, "app").unwrap();
    // The matching setting is unanimous.
    let r = client
        .query("SET default_transaction_isolation TO 'serializable'")
        .unwrap();
    assert!(r.error.is_none());
    // A non-serializable setting diverges (Postgres accepts, Cockroach
    // rejects) and RDDR severs.
    let result = client.query("SET default_transaction_isolation TO 'read committed'");
    assert!(result.is_err() || result.unwrap().error.is_some());
}
