//! Both proxies composed in a non-database setting: the Figure 1 social
//! network's Compose-Post service, 3-versioned, writing to the shared
//! post-storage service through an RDDR **outgoing** proxy while clients
//! arrive through the **incoming** proxy — the full Figure 2 schematic.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rddr_repro::core::EngineConfig;
use rddr_repro::httpsim::{HttpClient, HttpRequest, HttpResponse, HttpService};
use rddr_repro::net::ServiceAddr;
use rddr_repro::orchestra::{Cluster, Image, Service, ServiceCtx};
use rddr_repro::protocols::HttpProtocol;
use rddr_repro::proxy::{IncomingProxy, OutgoingProxy, ProtocolFactory};

fn http() -> ProtocolFactory {
    Arc::new(|| Box::new(HttpProtocol::new()))
}

/// The shared post-storage service: appends posts, lists them.
fn post_storage(store: Arc<Mutex<Vec<String>>>) -> HttpService {
    let store_get = Arc::clone(&store);
    HttpService::new("post-storage")
        .route("POST", "/store", move |req: &HttpRequest, _ctx| {
            store.lock().push(req.body_text());
            HttpResponse::status(201, "stored")
        })
        .route("GET", "/posts", move |_req, _ctx| {
            HttpResponse::ok(store_get.lock().join("\n"))
        })
}

/// One Compose-Post variant: formats the post, then persists it via the
/// outgoing proxy. `style` is the implementation difference; `inject_leak`
/// models a buggy variant that appends private data to the stored post.
struct ComposePost {
    storage: ServiceAddr,
    inject_leak: bool,
}

impl Service for ComposePost {
    fn name(&self) -> &str {
        "compose-post"
    }

    fn handle(&self, mut conn: rddr_repro::net::BoxStream, ctx: &ServiceCtx) {
        use rddr_repro::net::Stream as _;
        let mut buf = Vec::new();
        loop {
            let Ok(Some((req, _))) =
                rddr_repro::httpsim::framework::read_request(&mut conn, &mut buf)
            else {
                return;
            };
            let response = if req.method == "POST" && req.path == "/compose" {
                let text = req.body_text();
                let mut stored = format!("post: {text}");
                if self.inject_leak && text.contains("trigger") {
                    stored.push_str(" [PRIVATE-DM-DUMP]");
                }
                // Persist through the outgoing proxy.
                let ok = (|| {
                    let mut storage = HttpClient::connect(ctx.net.as_ref(), &self.storage).ok()?;
                    let resp = storage.post("/store", &stored).ok()?;
                    (resp.status == 201).then_some(())
                })()
                .is_some();
                if ok {
                    HttpResponse::status(201, "composed")
                } else {
                    HttpResponse::status(500, "storage unavailable")
                }
            } else {
                HttpResponse::status(404, "not found")
            };
            if conn.write_all(&response.to_bytes()).is_err() {
                return;
            }
        }
    }
}

fn deploy(
    inject_leak_in_one: bool,
) -> (
    Cluster,
    Arc<Mutex<Vec<String>>>,
    ServiceAddr,
    Vec<rddr_repro::orchestra::ContainerHandle>,
) {
    let cluster = Cluster::new(8);
    let store = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();

    // Shared storage + outgoing proxy in front of it.
    handles.push(
        cluster
            .run_container(
                "post-storage-0",
                Image::new("post-storage", "v1"),
                &ServiceAddr::new("post-storage", 9500),
                Arc::new(post_storage(Arc::clone(&store))),
            )
            .unwrap(),
    );
    let out_addr = ServiceAddr::new("rddr-out", 9500);
    let outgoing = OutgoingProxy::start(
        Arc::new(cluster.net()),
        &out_addr,
        ServiceAddr::new("post-storage", 9500),
        EngineConfig::builder(3)
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        http(),
    )
    .unwrap();
    std::mem::forget(outgoing);

    // Three Compose-Post variants + incoming proxy.
    for i in 0..3u16 {
        handles.push(
            cluster
                .run_container(
                    format!("compose-post-{i}"),
                    Image::new("compose-post", format!("v{}", i + 1)),
                    &ServiceAddr::new("compose-post", 9001 + i),
                    Arc::new(ComposePost {
                        storage: out_addr.clone(),
                        inject_leak: inject_leak_in_one && i == 2,
                    }),
                )
                .unwrap(),
        );
    }
    let in_addr = ServiceAddr::new("rddr-in", 80);
    let incoming = IncomingProxy::start(
        Arc::new(cluster.net()),
        &in_addr,
        (0..3)
            .map(|i| ServiceAddr::new("compose-post", 9001 + i))
            .collect(),
        EngineConfig::builder(3)
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        http(),
    )
    .unwrap();
    std::mem::forget(incoming);
    (cluster, store, in_addr, handles)
}

#[test]
fn benign_posts_are_stored_exactly_once() {
    let (cluster, store, in_addr, _handles) = deploy(false);
    let net = cluster.net();
    let mut client = HttpClient::connect(&net, &in_addr).unwrap();
    for i in 0..3 {
        let resp = client.post("/compose", &format!("hello {i}")).unwrap();
        assert_eq!(resp.status, 201);
    }
    let posts = store.lock().clone();
    assert_eq!(
        posts,
        vec!["post: hello 0", "post: hello 1", "post: hello 2"],
        "3 instances must merge to exactly one stored copy per post"
    );
}

#[test]
fn leaky_variant_is_caught_by_the_outgoing_proxy() {
    let (cluster, store, in_addr, _handles) = deploy(true);
    let net = cluster.net();
    let mut client = HttpClient::connect(&net, &in_addr).unwrap();
    // A benign post first.
    assert_eq!(client.post("/compose", "benign words").unwrap().status, 201);
    // The triggering post makes variant 2's stored request diverge; the
    // outgoing proxy severs before anything reaches storage.
    let resp = client.post("/compose", "please trigger the bug");
    match resp {
        Err(_) => {}
        Ok(r) => assert_ne!(r.status, 201, "diverging compose must not succeed"),
    }
    let posts = store.lock().clone();
    assert_eq!(
        posts.len(),
        1,
        "only the benign post may be stored: {posts:?}"
    );
    assert!(
        posts.iter().all(|p| !p.contains("PRIVATE-DM-DUMP")),
        "the private data must never reach storage"
    );
}
