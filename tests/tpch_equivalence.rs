//! TPC-H through the full wire stack: the 3-versioned RDDR deployment must
//! return byte-identical results to the single-instance baseline for the
//! whole 21-query benchmark set — the invariant behind Figure 4's "we are
//! not expected to diverge under benign load".

use std::time::Duration;

use rddr_bench::deploy::{deploy_pg_baseline, deploy_pg_rddr};
use rddr_repro::net::Network;
use rddr_repro::pgsim::{tpch, Database, PgClient, PgServerConfig};

fn quick() -> PgServerConfig {
    PgServerConfig {
        base_cost: Duration::from_micros(5),
        cost_per_row: Duration::from_nanos(100),
    }
}

#[test]
fn rddr_and_baseline_answer_identically_on_all_benchmark_queries() {
    let sf = 0.05;
    let seed = move |db: &mut Database| tpch::load(db, sf).expect("tpch loads");
    let baseline = deploy_pg_baseline(&seed, quick(), 8, 0.001);
    let rddr = deploy_pg_rddr(&seed, quick(), 8, 0.001);

    let mut base_client =
        PgClient::connect(baseline.cluster.net().dial(&baseline.addr).unwrap(), "app").unwrap();
    let mut rddr_client =
        PgClient::connect(rddr.cluster.net().dial(&rddr.addr).unwrap(), "app").unwrap();

    for number in tpch::benchmark_query_numbers() {
        let query = tpch::QUERIES.iter().find(|q| q.number == number).unwrap();
        let a = base_client.query(query.sql).unwrap();
        let b = rddr_client.query(query.sql).unwrap();
        assert!(a.error.is_none(), "Q{number} baseline error: {:?}", a.error);
        assert!(b.error.is_none(), "Q{number} rddr error: {:?}", b.error);
        assert_eq!(a.columns, b.columns, "Q{number} column names");
        assert_eq!(a.rows, b.rows, "Q{number} result rows");
    }
    if let Some(stats) = rddr.proxy_stats() {
        assert_eq!(stats.divergences, 0, "benign TPC-H must never diverge");
    }
}

#[test]
fn tpch_loader_is_identical_across_instances() {
    // The 3 instances of the RDDR deployment must hold byte-identical data,
    // otherwise every query would be a false positive.
    let sf = 0.05;
    let mut dbs: Vec<Database> = (0..3)
        .map(|_| {
            let mut db = Database::new(rddr_repro::pgsim::PgVersion::parse("10.7").unwrap());
            tpch::load(&mut db, sf).unwrap();
            db
        })
        .collect();
    let checks = [
        "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem",
        "SELECT COUNT(*), SUM(o_totalprice) FROM orders",
        "SELECT COUNT(*) FROM partsupp",
    ];
    for sql in checks {
        let mut reference: Option<Vec<Vec<String>>> = None;
        for db in dbs.iter_mut() {
            let mut s = db.session("app");
            let r = db.execute(&mut s, sql).unwrap();
            let rows: Vec<Vec<String>> = r
                .rows
                .iter()
                .map(|row| row.iter().map(|v| v.to_string()).collect())
                .collect();
            match &reference {
                None => reference = Some(rows),
                Some(expected) => assert_eq!(&rows, expected, "{sql}"),
            }
        }
    }
}
