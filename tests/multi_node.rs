//! The §VI discussion, demonstrated: "Such degradation can be mitigated by
//! upgrading to servers with more cores, or deploying each instance of the
//! N-versioned set on a different machine; RDDR can easily be reconfigured
//! to run distributed across multiple hosts."
//!
//! We saturate a 3-version set on one small node, then place each instance
//! on its own node and watch throughput recover toward the single-instance
//! baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rddr_repro::core::EngineConfig;
use rddr_repro::net::{Network, ServiceAddr};
use rddr_repro::orchestra::{Cluster, ContainerHandle, Image};
use rddr_repro::pgsim::{pgbench, Database, PgClient, PgServer, PgServerConfig, PgVersion};
use rddr_repro::protocols::PgProtocol;
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

const VCPUS_PER_NODE: usize = 4;
const CLIENTS: usize = 8;
const TXNS: usize = 30;

fn pg() -> ProtocolFactory {
    Arc::new(|| Box::new(PgProtocol::new()))
}

fn cost() -> PgServerConfig {
    PgServerConfig {
        base_cost: Duration::from_millis(2),
        cost_per_row: Duration::from_micros(10),
    }
}

fn fresh_db() -> Database {
    let mut db = Database::new(PgVersion::parse("10.7").unwrap());
    pgbench::load(&mut db, 1).unwrap();
    db
}

/// Deploys 3 instances + proxy, placing instance *i* on `placement(i)`.
fn deploy(
    cluster: &Cluster,
    placement: impl Fn(usize) -> usize,
) -> (Vec<ContainerHandle>, IncomingProxy, ServiceAddr) {
    let mut handles = Vec::new();
    for i in 0..3usize {
        handles.push(
            cluster
                .run_container_on(
                    placement(i),
                    format!("pg-{i}"),
                    Image::new("postgres", "10.7"),
                    &ServiceAddr::new("pg", 5432 + i as u16),
                    Arc::new(PgServer::with_config(fresh_db(), cost())),
                )
                .unwrap(),
        );
    }
    let addr = ServiceAddr::new("rddr", 5432);
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &addr,
        (0..3).map(|i| ServiceAddr::new("pg", 5432 + i)).collect(),
        EngineConfig::builder(3)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(20))
            .build()
            .unwrap(),
        pg(),
    )
    .unwrap();
    (handles, proxy, addr)
}

fn measure_throughput(cluster: &Cluster, addr: &ServiceAddr) -> f64 {
    let t0 = Instant::now();
    let accounts = pgbench::ACCOUNTS_PER_BRANCH;
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let net = cluster.net();
            let addr = addr.clone();
            scope.spawn(move || {
                let conn = net.dial(&addr).unwrap();
                let mut client = PgClient::connect(conn, "app").unwrap();
                let mut workload = pgbench::SelectWorkload::new(accounts, client_id as u64);
                for _ in 0..TXNS {
                    let r = client.query(&workload.next_query()).unwrap();
                    assert!(r.error.is_none());
                }
            });
        }
    });
    (CLIENTS * TXNS) as f64 / t0.elapsed().as_secs_f64()
}

#[test]
fn spreading_instances_across_nodes_recovers_throughput() {
    // Co-located: all three instances compete for one 4-vCPU node.
    let colocated = Cluster::multi_node(1, VCPUS_PER_NODE, 1.0);
    let (_h1, _p1, addr1) = deploy(&colocated, |_| 0);
    let tps_colocated = measure_throughput(&colocated, &addr1);

    // Distributed: one instance per node, three 4-vCPU nodes.
    let distributed = Cluster::multi_node(3, VCPUS_PER_NODE, 1.0);
    let (_h2, _p2, addr2) = deploy(&distributed, |i| i);
    let tps_distributed = measure_throughput(&distributed, &addr2);

    // Demand: 8 clients x 3 instances x 2ms = 48 ms-of-work per wall-ms,
    // against 4 slots co-located (12x oversubscribed) vs 4 per node
    // distributed (4x oversubscribed per node). Expect a solid speedup.
    assert!(
        tps_distributed > tps_colocated * 1.8,
        "distribution must relieve the saturation: {tps_colocated:.0} -> {tps_distributed:.0} tps"
    );
}

#[test]
fn node_governors_are_independent() {
    let cluster = Cluster::multi_node(2, 2, 1.0);
    assert_eq!(cluster.node_count(), 2);
    let g0 = cluster.node_governor(0);
    let g1 = cluster.node_governor(1);
    let meter = rddr_repro::orchestra::ResourceMeter::new();
    g0.consume(&meter, Duration::from_millis(1));
    assert!(g0.busy_micros() >= 1000);
    assert_eq!(g1.busy_micros(), 0, "work on node 0 must not touch node 1");
}
