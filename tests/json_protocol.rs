//! The JSON protocol module end to end: newline-delimited JSON services
//! behind RDDR, structural comparison tolerating key order and whitespace,
//! and value-level divergence detection.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::EngineConfig;
use rddr_repro::net::{BoxStream, Network, ServiceAddr, SimNet, Stream};
use rddr_repro::protocols::JsonProtocol;
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

fn json() -> ProtocolFactory {
    Arc::new(|| Box::new(JsonProtocol::new()))
}

/// A service answering each request line with a JSON document produced by
/// `render(request, counter)`.
fn spawn_json_service(
    net: &SimNet,
    addr: ServiceAddr,
    render: impl Fn(&str) -> String + Send + Sync + Clone + 'static,
) {
    let mut listener = net.listen(&addr).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            let render = render.clone();
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        let request = String::from_utf8_lossy(&line).trim().to_string();
                        let reply = format!("{}\n", render(&request));
                        if conn.write_all(reply.as_bytes()).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
}

fn read_line(conn: &mut BoxStream) -> Option<String> {
    let mut out = Vec::new();
    let mut b = [0u8; 1];
    loop {
        match conn.read(&mut b) {
            Ok(0) | Err(_) => {
                return (!out.is_empty()).then(|| String::from_utf8_lossy(&out).into_owned())
            }
            Ok(_) if b[0] == b'\n' => return Some(String::from_utf8_lossy(&out).into_owned()),
            Ok(_) => out.push(b[0]),
        }
    }
}

fn proxy_over(net: &SimNet, n: usize) -> ServiceAddr {
    let addr = ServiceAddr::new("rddr-json", 80);
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &addr,
        (0..n as u16)
            .map(|i| ServiceAddr::new("api", 9000 + i))
            .collect(),
        EngineConfig::builder(n)
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        json(),
    )
    .unwrap();
    std::mem::forget(proxy); // lives for the test process
    addr
}

#[test]
fn key_order_and_whitespace_do_not_diverge() {
    let net = SimNet::new();
    // Two "implementations" serializing the same object differently.
    spawn_json_service(&net, ServiceAddr::new("api", 9000), |req| {
        format!("{{\"user\": \"{req}\", \"balance\": 42, \"roles\": [\"a\", \"b\"]}}")
    });
    spawn_json_service(&net, ServiceAddr::new("api", 9001), |req| {
        format!("{{ \"roles\" : [ \"a\" , \"b\" ] , \"balance\" : 42 , \"user\" : \"{req}\" }}")
    });
    let addr = proxy_over(&net, 2);
    let mut conn = net.dial(&addr).unwrap();
    conn.write_all(b"ada\n").unwrap();
    let reply = read_line(&mut conn).expect("structural equality must forward");
    // Instance 0's literal serialization is forwarded.
    assert!(reply.contains("\"user\": \"ada\""), "{reply}");
}

#[test]
fn value_divergence_is_detected() {
    let net = SimNet::new();
    spawn_json_service(&net, ServiceAddr::new("api", 9000), |req| {
        format!("{{\"user\": \"{req}\", \"balance\": 42}}")
    });
    spawn_json_service(&net, ServiceAddr::new("api", 9001), |req| {
        format!("{{\"user\": \"{req}\", \"balance\": 999999}}")
    });
    let addr = proxy_over(&net, 2);
    let mut conn = net.dial(&addr).unwrap();
    conn.write_all(b"ada\n").unwrap();
    assert!(
        read_line(&mut conn).is_none(),
        "differing values must sever"
    );
}

#[test]
fn structural_divergence_is_detected() {
    let net = SimNet::new();
    spawn_json_service(&net, ServiceAddr::new("api", 9000), |req| {
        format!("{{\"user\": \"{req}\"}}")
    });
    spawn_json_service(&net, ServiceAddr::new("api", 9001), |req| {
        format!("{{\"user\": \"{req}\", \"debug_internal\": \"s3cr3t-dsn\"}}")
    });
    let addr = proxy_over(&net, 2);
    let mut conn = net.dial(&addr).unwrap();
    conn.write_all(b"ada\n").unwrap();
    assert!(
        read_line(&mut conn).is_none(),
        "an extra leaked field must sever"
    );
}
