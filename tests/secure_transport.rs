//! The encrypted-transport path (§IV-B1): the paper's RDDR supports
//! "encrypted SSL/TLS … at the transport layer". Here a whole N-versioned
//! deployment runs over the toy keystream channel (`SecureNet`, this
//! repository's documented TLS stand-in): client↔proxy and proxy↔instance
//! links are all encrypted, and the proxies still replicate, diff and sever
//! on the decrypted plaintext.

use std::sync::Arc;
use std::time::Duration;

use rddr_repro::core::protocol::LineProtocol;
use rddr_repro::core::EngineConfig;
use rddr_repro::net::{BoxStream, Network, PresharedKey, SecureNet, ServiceAddr, SimNet, Stream};
use rddr_repro::proxy::{IncomingProxy, ProtocolFactory};

fn line() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

fn key() -> PresharedKey {
    PresharedKey::new("cluster-psk").unwrap()
}

/// Starts a line-echo server on `net` that appends `suffix` to each line.
fn spawn_secure_echo(net: Arc<dyn Network>, addr: ServiceAddr, suffix: &'static str) {
    let mut listener = net.listen(&addr).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 512];
                loop {
                    match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        let mut reply = line[..line.len() - 1].to_vec();
                        reply.extend_from_slice(suffix.as_bytes());
                        reply.push(b'\n');
                        if conn.write_all(&reply).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
}

fn read_line(conn: &mut BoxStream) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut b = [0u8; 1];
    loop {
        match conn.read(&mut b) {
            Ok(0) | Err(_) => return (!out.is_empty()).then_some(out),
            Ok(_) if b[0] == b'\n' => return Some(out),
            Ok(_) => out.push(b[0]),
        }
    }
}

#[test]
fn whole_deployment_runs_encrypted() {
    let fabric = SimNet::new();
    let secure: Arc<dyn Network> = Arc::new(SecureNet::new(fabric.clone(), key()));

    spawn_secure_echo(Arc::clone(&secure), ServiceAddr::new("svc", 9000), "");
    spawn_secure_echo(Arc::clone(&secure), ServiceAddr::new("svc", 9001), "");
    let _proxy = IncomingProxy::start(
        Arc::clone(&secure),
        &ServiceAddr::new("rddr", 443),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();

    let mut client = secure.dial(&ServiceAddr::new("rddr", 443)).unwrap();
    client.write_all(b"confidential query\n").unwrap();
    assert_eq!(read_line(&mut client).unwrap(), b"confidential query");
    // Several exchanges keep the shared keystreams in sequence.
    for i in 0..5 {
        let msg = format!("msg {i}\n");
        client.write_all(msg.as_bytes()).unwrap();
        assert_eq!(read_line(&mut client).unwrap(), msg.trim_end().as_bytes());
    }
}

#[test]
fn divergence_is_detected_on_decrypted_plaintext() {
    let fabric = SimNet::new();
    let secure: Arc<dyn Network> = Arc::new(SecureNet::new(fabric.clone(), key()));
    spawn_secure_echo(Arc::clone(&secure), ServiceAddr::new("svc", 9000), "");
    spawn_secure_echo(Arc::clone(&secure), ServiceAddr::new("svc", 9001), " LEAK");
    let _proxy = IncomingProxy::start(
        Arc::clone(&secure),
        &ServiceAddr::new("rddr", 443),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_secs(2))
            .build()
            .unwrap(),
        line(),
    )
    .unwrap();
    let mut client = secure.dial(&ServiceAddr::new("rddr", 443)).unwrap();
    client.write_all(b"probe\n").unwrap();
    assert!(
        read_line(&mut client).is_none(),
        "divergence must sever even under encryption"
    );
}

#[test]
fn plaintext_never_crosses_the_fabric() {
    // Tap the raw fabric under the secure overlay: the bytes on the wire
    // must not contain the plaintext.
    let fabric = SimNet::new();
    let secure = SecureNet::new(fabric.clone(), key());
    let mut listener = secure.listen(&ServiceAddr::new("svc", 1)).unwrap();
    let server = std::thread::spawn(move || {
        let mut conn = listener.accept().unwrap();
        let mut buf = [0u8; 11];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"SUPERSECRET");
        conn.write_all(b"GOTIT").unwrap();
    });

    // A raw man-in-the-middle reading the fabric sees only ciphertext: we
    // verify indirectly by dialing the *raw* fabric — the handshake bytes
    // it sends are not the plaintext, and a raw peer cannot complete the
    // key confirmation.
    let mut client = secure.dial(&ServiceAddr::new("svc", 1)).unwrap();
    client.write_all(b"SUPERSECRET").unwrap();
    let mut reply = [0u8; 5];
    client.read_exact(&mut reply).unwrap();
    assert_eq!(&reply, b"GOTIT");
    server.join().unwrap();

    // Raw (non-handshaking) client is rejected by the secure listener.
    let mut second = secure.listen(&ServiceAddr::new("svc", 2)).unwrap();
    let reject = std::thread::spawn(move || second.accept().is_err());
    let mut raw = fabric.dial(&ServiceAddr::new("svc", 2)).unwrap();
    raw.write_all(b"not a handshake at all, definitely")
        .unwrap();
    raw.shutdown();
    assert!(
        reject.join().unwrap(),
        "secure listener must reject raw peers"
    );
}

#[test]
fn wrong_key_client_cannot_connect() {
    let fabric = SimNet::new();
    let secure = SecureNet::new(fabric.clone(), key());
    let mut listener = secure.listen(&ServiceAddr::new("svc", 3)).unwrap();
    let acceptor = std::thread::spawn(move || listener.accept().is_err());
    let imposter = SecureNet::new(fabric, PresharedKey::new("wrong").unwrap());
    assert!(imposter.dial(&ServiceAddr::new("svc", 3)).is_err());
    assert!(acceptor.join().unwrap());
}
