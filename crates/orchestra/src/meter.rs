use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time resource reading for one container or an aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceSample {
    /// Total simulated CPU time consumed, in microseconds.
    pub cpu_micros: u64,
    /// Currently allocated memory, in bytes.
    pub mem_bytes: u64,
    /// High-water memory mark, in bytes.
    pub mem_peak_bytes: u64,
}

impl ResourceSample {
    /// Element-wise sum of two samples (peaks are summed too, matching how
    /// the paper aggregates "the process tree that comprises each
    /// deployment").
    pub fn merge(self, other: ResourceSample) -> ResourceSample {
        ResourceSample {
            cpu_micros: self.cpu_micros + other.cpu_micros,
            mem_bytes: self.mem_bytes + other.mem_bytes,
            mem_peak_bytes: self.mem_peak_bytes + other.mem_peak_bytes,
        }
    }
}

/// Shared CPU/memory accounting for one container.
///
/// Cheap to clone (an `Arc` underneath); services charge work to the meter
/// through [`crate::ServiceCtx`], and the evaluation harnesses read it to
/// regenerate the paper's CPU/memory plots.
#[derive(Debug, Clone, Default)]
pub struct ResourceMeter {
    inner: Arc<MeterInner>,
}

#[derive(Debug, Default)]
struct MeterInner {
    cpu_micros: AtomicU64,
    mem_bytes: AtomicU64,
    mem_peak: AtomicU64,
}

impl ResourceMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges simulated CPU time.
    pub fn add_cpu_micros(&self, micros: u64) {
        self.inner.cpu_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records a memory allocation.
    pub fn alloc(&self, bytes: u64) {
        let now = self.inner.mem_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.mem_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records a memory release.
    ///
    /// Saturates at zero rather than underflowing, so a double-free in a
    /// simulated service cannot corrupt the accounting.
    pub fn free(&self, bytes: u64) {
        let mut current = self.inner.mem_bytes.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.inner.mem_bytes.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Reads the current counters.
    pub fn sample(&self) -> ResourceSample {
        ResourceSample {
            cpu_micros: self.inner.cpu_micros.load(Ordering::Relaxed),
            mem_bytes: self.inner.mem_bytes.load(Ordering::Relaxed),
            mem_peak_bytes: self.inner.mem_peak.load(Ordering::Relaxed),
        }
    }

    /// Publishes the current sample as gauges in `registry`:
    /// `{prefix}_cpu_micros`, `{prefix}_mem_bytes`, `{prefix}_mem_peak_bytes`.
    ///
    /// Call it from whatever cadence scrapes the deployment (a sampler
    /// thread, or right before an admin `/metrics` render). Values above
    /// `i64::MAX` saturate, matching the gauge's range.
    pub fn export_gauges(&self, registry: &rddr_telemetry::Registry, prefix: &str) {
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let s = self.sample();
        registry
            .gauge(&format!("{prefix}_cpu_micros"))
            .set(clamp(s.cpu_micros));
        registry
            .gauge(&format!("{prefix}_mem_bytes"))
            .set(clamp(s.mem_bytes));
        registry
            .gauge(&format!("{prefix}_mem_peak_bytes"))
            .set(clamp(s.mem_peak_bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_accumulates() {
        let m = ResourceMeter::new();
        m.add_cpu_micros(100);
        m.add_cpu_micros(50);
        assert_eq!(m.sample().cpu_micros, 150);
    }

    #[test]
    fn memory_tracks_current_and_peak() {
        let m = ResourceMeter::new();
        m.alloc(1000);
        m.alloc(500);
        m.free(1200);
        let s = m.sample();
        assert_eq!(s.mem_bytes, 300);
        assert_eq!(s.mem_peak_bytes, 1500);
    }

    #[test]
    fn free_saturates_at_zero() {
        let m = ResourceMeter::new();
        m.alloc(10);
        m.free(100);
        assert_eq!(m.sample().mem_bytes, 0);
    }

    #[test]
    fn clones_share_state() {
        let m = ResourceMeter::new();
        let m2 = m.clone();
        m2.add_cpu_micros(7);
        assert_eq!(m.sample().cpu_micros, 7);
    }

    #[test]
    fn export_gauges_publishes_sample() {
        let m = ResourceMeter::new();
        m.add_cpu_micros(42);
        m.alloc(1000);
        m.free(400);
        let registry = rddr_telemetry::Registry::new();
        m.export_gauges(&registry, "c0");
        let page = registry.render_prometheus();
        assert!(page.contains("c0_cpu_micros 42"), "metrics:\n{page}");
        assert!(page.contains("c0_mem_bytes 600"), "metrics:\n{page}");
        assert!(page.contains("c0_mem_peak_bytes 1000"), "metrics:\n{page}");
        // Re-export overwrites rather than accumulating.
        m.free(600);
        m.export_gauges(&registry, "c0");
        assert!(registry.render_prometheus().contains("c0_mem_bytes 0"));
    }

    #[test]
    fn merge_sums_fields() {
        let a = ResourceSample {
            cpu_micros: 1,
            mem_bytes: 2,
            mem_peak_bytes: 3,
        };
        let b = ResourceSample {
            cpu_micros: 10,
            mem_bytes: 20,
            mem_peak_bytes: 30,
        };
        let c = a.merge(b);
        assert_eq!(
            c,
            ResourceSample {
                cpu_micros: 11,
                mem_bytes: 22,
                mem_peak_bytes: 33
            }
        );
    }

    #[test]
    fn concurrent_allocs_never_lose_peak() {
        let m = ResourceMeter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.alloc(3);
                        m.free(3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.sample();
        assert_eq!(s.mem_bytes, 0);
        assert!(s.mem_peak_bytes >= 3);
    }
}
