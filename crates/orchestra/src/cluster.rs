use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rddr_net::{NetError, Network, ServiceAddr, SimNet};

use crate::{
    ContainerHandle, CpuGovernor, Image, ResourceMeter, ResourceSample, Service, ServiceCtx,
};

/// Errors produced by the orchestration layer.
#[derive(Debug)]
pub enum ClusterError {
    /// The requested address is already bound by another container.
    AddressInUse(String),
    /// An underlying network failure.
    Net(NetError),
    /// A respawn was requested for a replica the supervisor never registered.
    UnknownReplica(String),
    /// A respawned replica did not pass its readiness probe in time.
    NotReady(String),
    /// A replica's service factory failed while rebuilding the service
    /// (e.g. storage recovery found unrepairable corruption).
    SpawnFailed(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::AddressInUse(a) => write!(f, "address already in use: {a}"),
            ClusterError::Net(e) => write!(f, "network failure: {e}"),
            ClusterError::UnknownReplica(n) => write!(f, "unknown replica: {n}"),
            ClusterError::NotReady(n) => {
                write!(f, "replica {n} failed its readiness probe")
            }
            ClusterError::SpawnFailed(e) => write!(f, "service factory failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        match e {
            NetError::AddressInUse(a) => ClusterError::AddressInUse(a),
            other => ClusterError::Net(other),
        }
    }
}

/// A cluster: a [`SimNet`] fabric plus one [`CpuGovernor`] per node.
///
/// The paper's "server machine" is an AWS `m5a.8xlarge` with 32 vCPUs;
/// `Cluster::new(32)` models it as a single node. Containers started on
/// the cluster share their node's governor (they compete for that node's
/// cores) but each gets its own [`ResourceMeter`]. The paper's §VI notes
/// that saturation "can be mitigated by … deploying each instance of the
/// N-versioned set on a different machine" — model that with
/// [`Cluster::multi_node`] and [`Cluster::run_container_on`].
pub struct Cluster {
    net: SimNet,
    nodes: Vec<CpuGovernor>,
    containers: Mutex<Vec<ContainerInfo>>,
}

struct ContainerInfo {
    name: String,
    meter: ResourceMeter,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("vcpus_per_node", &self.nodes[0].capacity())
            .field("containers", &self.containers.lock().len())
            .finish()
    }
}

impl Cluster {
    /// Creates a cluster with `vcpus` virtual CPUs, running simulated work
    /// in real time.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus` is zero.
    pub fn new(vcpus: usize) -> Self {
        Self::with_governor(SimNet::new(), CpuGovernor::new(vcpus))
    }

    /// Creates a cluster from explicit parts (e.g. a time-scaled governor
    /// for fast benchmark harnesses, or a latency-injecting fabric).
    pub fn with_governor(net: SimNet, governor: CpuGovernor) -> Self {
        Self {
            net,
            nodes: vec![governor],
            containers: Mutex::new(Vec::new()),
        }
    }

    /// Creates a cluster of `nodes` machines, each with its own governor of
    /// `vcpus` slots at the given time scale (§VI: "RDDR can easily be
    /// reconfigured to run distributed across multiple hosts").
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `vcpus` is zero, or the scale is non-positive.
    pub fn multi_node(nodes: usize, vcpus: usize, time_scale: f64) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Self {
            net: SimNet::new(),
            nodes: (0..nodes)
                .map(|_| CpuGovernor::with_time_scale(vcpus, time_scale))
                .collect(),
            containers: Mutex::new(Vec::new()),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The governor of a specific node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_governor(&self, node: usize) -> CpuGovernor {
        self.nodes[node].clone()
    }

    /// The cluster network fabric (clone to hand to clients).
    pub fn net(&self) -> SimNet {
        self.net.clone()
    }

    /// The first node's CPU governor (the whole cluster's on single-node
    /// clusters).
    pub fn governor(&self) -> CpuGovernor {
        self.nodes[0].clone()
    }

    /// Starts a container serving `service` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::AddressInUse`] if the address is taken.
    pub fn run_container(
        &self,
        name: impl Into<String>,
        image: Image,
        addr: &ServiceAddr,
        service: Arc<dyn Service>,
    ) -> crate::Result<ContainerHandle> {
        self.run_container_on(0, name, image, addr, service)
    }

    /// Starts a container on a specific node (multi-host placement, §VI).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::AddressInUse`] if the address is taken.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn run_container_on(
        &self,
        node: usize,
        name: impl Into<String>,
        image: Image,
        addr: &ServiceAddr,
        service: Arc<dyn Service>,
    ) -> crate::Result<ContainerHandle> {
        let name = name.into();
        let listener = self.net.listen(addr)?;
        let meter = ResourceMeter::new();
        let ctx = ServiceCtx {
            meter: meter.clone(),
            governor: self.nodes[node].clone(),
            net: Arc::new(self.net.clone()),
        };
        self.containers.lock().push(ContainerInfo {
            name: name.clone(),
            meter,
        });
        let net = self.net.clone();
        let unbind_addr = addr.clone();
        let handle = ContainerHandle::spawn(
            name,
            image,
            addr.clone(),
            listener,
            service,
            ctx,
            Box::new(move || net.unbind(&unbind_addr)),
        );
        Ok(handle)
    }

    /// Starts `replicas` containers of the same image/service, on ports
    /// `base.port() + i`, named `name-i` — a minimal ReplicaSet.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::AddressInUse`] if any replica address is taken.
    pub fn run_replicas(
        &self,
        name: &str,
        image: Image,
        base: &ServiceAddr,
        replicas: usize,
        service: Arc<dyn Service>,
    ) -> crate::Result<Vec<ContainerHandle>> {
        (0..replicas)
            .map(|i| {
                self.run_container(
                    format!("{name}-{i}"),
                    image.clone(),
                    &ServiceAddr::new(base.host(), base.port() + i as u16),
                    Arc::clone(&service),
                )
            })
            .collect()
    }

    /// Aggregate resource usage of containers whose names start with
    /// `prefix` (empty prefix = whole cluster) — the paper's "process tree
    /// that comprises each deployment".
    pub fn usage(&self, prefix: &str) -> ResourceSample {
        self.containers
            .lock()
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.meter.sample())
            .fold(ResourceSample::default(), ResourceSample::merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnService;
    use rddr_net::Stream;
    use std::time::Duration;

    fn echo_service() -> Arc<dyn Service> {
        Arc::new(FnService::new("echo", |mut conn, ctx| {
            let mut buf = [0u8; 64];
            while let Ok(n) = conn.read(&mut buf) {
                if n == 0 {
                    break;
                }
                ctx.compute(Duration::from_micros(100));
                ctx.alloc(n as u64);
                if conn.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }))
    }

    #[test]
    fn container_serves_and_meters() {
        let cluster = Cluster::with_governor(SimNet::new(), CpuGovernor::with_time_scale(4, 0.01));
        let addr = ServiceAddr::new("echo", 7);
        let _c = cluster
            .run_container("echo-0", Image::new("echo", "v1"), &addr, echo_service())
            .unwrap();
        let mut conn = cluster.net().dial(&addr).unwrap();
        conn.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        drop(conn);
        // Metering is asynchronous with the reply; poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        loop {
            let usage = cluster.usage("echo");
            if usage.cpu_micros >= 100 && usage.mem_bytes >= 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "metering never arrived"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn replicas_bind_consecutive_ports() {
        let cluster = Cluster::new(2);
        let handles = cluster
            .run_replicas(
                "pg",
                Image::new("postgres", "10.7"),
                &ServiceAddr::new("pg", 5432),
                3,
                echo_service(),
            )
            .unwrap();
        assert_eq!(handles.len(), 3);
        assert_eq!(handles[0].addr().port(), 5432);
        assert_eq!(handles[2].addr().port(), 5434);
        assert_eq!(handles[1].name(), "pg-1");
        for p in [5432, 5433, 5434] {
            assert!(cluster.net().dial(&ServiceAddr::new("pg", p)).is_ok());
        }
    }

    #[test]
    fn duplicate_address_is_rejected() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc", 80);
        let _a = cluster
            .run_container("a", Image::new("x", "1"), &addr, echo_service())
            .unwrap();
        assert!(matches!(
            cluster.run_container("b", Image::new("x", "1"), &addr, echo_service()),
            Err(ClusterError::AddressInUse(_))
        ));
    }

    #[test]
    fn stopping_container_unbinds_address() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc", 80);
        let mut c = cluster
            .run_container("a", Image::new("x", "1"), &addr, echo_service())
            .unwrap();
        c.stop();
        assert!(cluster.net().dial(&addr).is_err());
        // Address can be rebound after stop.
        let _again = cluster
            .run_container("a2", Image::new("x", "2"), &addr, echo_service())
            .unwrap();
    }

    #[test]
    fn kill_severs_in_flight_connections() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc", 80);
        let mut c = cluster
            .run_container("a", Image::new("x", "1"), &addr, echo_service())
            .unwrap();
        let mut conn = cluster.net().dial(&addr).unwrap();
        conn.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        c.kill();
        // The established connection is severed, not drained: the peer
        // sees EOF (or an error) instead of another echo.
        let _ = conn.write_all(b"yo");
        let mut buf = [0u8; 2];
        assert!(
            conn.read_exact(&mut buf).is_err(),
            "kill must sever connections already being served"
        );
        assert!(cluster.net().dial(&addr).is_err());
    }

    #[test]
    fn usage_filters_by_prefix() {
        let cluster = Cluster::with_governor(SimNet::new(), CpuGovernor::with_time_scale(4, 0.001));
        let _a = cluster
            .run_container(
                "pg-0",
                Image::new("x", "1"),
                &ServiceAddr::new("a", 1),
                echo_service(),
            )
            .unwrap();
        let _b = cluster
            .run_container(
                "web-0",
                Image::new("x", "1"),
                &ServiceAddr::new("b", 1),
                echo_service(),
            )
            .unwrap();
        let mut conn = cluster.net().dial(&ServiceAddr::new("a", 1)).unwrap();
        conn.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        conn.read_exact(&mut buf).unwrap();
        drop(conn);
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while cluster.usage("pg").cpu_micros == 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(cluster.usage("web").cpu_micros, 0);
    }
}
