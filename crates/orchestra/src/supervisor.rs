//! Replica supervision: respawn-and-rejoin for degraded deployments.
//!
//! Kubernetes restarts a crashed pod from its image and readmits it into
//! the Service's endpoints once its readiness probe passes. This module
//! reproduces that slice for RDDR's degraded mode: a quarantined or crashed
//! replica is [respawned](Supervisor::respawn) from its registered
//! [`Image`] and only reported ready once a warm-up probe (a successful
//! dial) goes through — at which point the proxies' per-exchange rejoin
//! probes will readmit it into the diff set.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rddr_net::{Network, ServiceAddr};

use crate::{Cluster, ClusterError, ContainerHandle, Image, Service};

/// How a replica's service object is produced at respawn time.
#[derive(Clone)]
enum Launch {
    /// Reuse one shared service object across respawns. The object's
    /// in-memory state survives the "crash" — fine for stateless services,
    /// wrong for stateful ones (the restart-lossiness bug this module's
    /// factory mode exists to fix).
    Shared(Arc<dyn Service>),
    /// Call a factory on every respawn. The factory rebuilds the service
    /// from durable state (e.g. WAL recovery off a virtual disk) *before*
    /// the container starts listening, so a passing readiness probe
    /// implies recovery completed.
    Factory(Arc<dyn Fn() -> Result<Arc<dyn Service>, String> + Send + Sync>),
}

/// Everything needed to stamp a replica back out after it dies.
struct ReplicaSpec {
    image: Image,
    addr: ServiceAddr,
    node: usize,
    launch: Launch,
    restarts: u64,
}

/// Tracks replica specs so dead replicas can be respawned from their image
/// and readmitted after a readiness probe (the restart/rejoin loop of
/// degraded-mode operation).
///
/// The supervisor is deliberately passive: it does not watch containers
/// itself. The proxy layer detects the fault (eject/quarantine), and the
/// operator — or a chaos test standing in for one — asks the supervisor to
/// respawn, mirroring how a Kubernetes ReplicaSet controller owns restarts
/// while the mesh owns traffic.
#[derive(Default)]
pub struct Supervisor {
    specs: Mutex<BTreeMap<String, ReplicaSpec>>,
    restarts: AtomicU64,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("replicas", &self.specs.lock().len())
            .field("restarts", &self.restarts.load(Ordering::Relaxed))
            .finish()
    }
}

impl Supervisor {
    /// An empty supervisor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the spec for replica `name` on node 0. The
    /// shared `service` object is reused across respawns; for stateful
    /// services prefer [`Supervisor::register_factory`] so restarts rebuild
    /// state from durable storage instead of resurrecting pre-crash memory.
    pub fn register(
        &self,
        name: impl Into<String>,
        image: Image,
        addr: ServiceAddr,
        service: Arc<dyn Service>,
    ) {
        self.register_on(0, name, image, addr, service);
    }

    /// Registers (or replaces) the spec for replica `name` on a specific
    /// node (multi-host placement).
    pub fn register_on(
        &self,
        node: usize,
        name: impl Into<String>,
        image: Image,
        addr: ServiceAddr,
        service: Arc<dyn Service>,
    ) {
        self.insert_spec(node, name.into(), image, addr, Launch::Shared(service));
    }

    /// Registers replica `name` on node 0 with a service *factory*: every
    /// respawn calls it to rebuild the service from durable state (WAL
    /// recovery, config reload, …) before the container starts listening.
    /// A factory error aborts the respawn with
    /// [`ClusterError::SpawnFailed`].
    ///
    /// The factory must not call back into this supervisor (it runs while
    /// no spec lock is held, but re-registering from inside it would race
    /// the respawn that invoked it).
    pub fn register_factory(
        &self,
        name: impl Into<String>,
        image: Image,
        addr: ServiceAddr,
        factory: impl Fn() -> Result<Arc<dyn Service>, String> + Send + Sync + 'static,
    ) {
        self.register_factory_on(0, name, image, addr, factory);
    }

    /// [`Supervisor::register_factory`] with explicit node placement.
    pub fn register_factory_on(
        &self,
        node: usize,
        name: impl Into<String>,
        image: Image,
        addr: ServiceAddr,
        factory: impl Fn() -> Result<Arc<dyn Service>, String> + Send + Sync + 'static,
    ) {
        self.insert_spec(
            node,
            name.into(),
            image,
            addr,
            Launch::Factory(Arc::new(factory)),
        );
    }

    fn insert_spec(
        &self,
        node: usize,
        name: String,
        image: Image,
        addr: ServiceAddr,
        launch: Launch,
    ) {
        self.specs.lock().insert(
            name,
            ReplicaSpec {
                image,
                addr,
                node,
                launch,
                restarts: 0,
            },
        );
    }

    /// Drops the spec for `name`; a forgotten replica can no longer be
    /// respawned.
    pub fn forget(&self, name: &str) {
        self.specs.lock().remove(name);
    }

    /// Names of all registered replicas.
    pub fn replicas(&self) -> Vec<String> {
        self.specs.lock().keys().cloned().collect()
    }

    /// Total respawns performed across all replicas.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Respawns of one replica, if registered.
    pub fn replica_restarts(&self, name: &str) -> Option<u64> {
        self.specs.lock().get(name).map(|s| s.restarts)
    }

    /// Respawns replica `name` on `cluster` from its registered image and
    /// waits up to `ready_timeout` for the warm-up probe (a successful dial
    /// of its address) to pass.
    ///
    /// The caller must have stopped the previous container (its address must
    /// be free); a dead container's address is unbound by its `Drop`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] if `name` was never registered,
    /// [`ClusterError::AddressInUse`] if the old container still holds the
    /// address, [`ClusterError::SpawnFailed`] if a registered service
    /// factory failed to rebuild the service, and [`ClusterError::NotReady`]
    /// if the respawned container did not accept a connection within
    /// `ready_timeout`.
    pub fn respawn(
        &self,
        cluster: &Cluster,
        name: &str,
        ready_timeout: Duration,
    ) -> crate::Result<ContainerHandle> {
        let (node, image, addr, launch) = {
            let specs = self.specs.lock();
            let spec = specs
                .get(name)
                .ok_or_else(|| ClusterError::UnknownReplica(name.to_string()))?;
            (
                spec.node,
                spec.image.clone(),
                spec.addr.clone(),
                spec.launch.clone(),
            )
        };
        // Factory mode rebuilds the service (running recovery) before the
        // container exists, so readiness cannot race recovery.
        let service = match launch {
            Launch::Shared(service) => service,
            Launch::Factory(factory) => factory().map_err(ClusterError::SpawnFailed)?,
        };
        let handle = cluster.run_container_on(node, name, image, &addr, service)?;
        if !wait_ready(&cluster.net(), &addr, ready_timeout) {
            return Err(ClusterError::NotReady(name.to_string()));
        }
        self.restarts.fetch_add(1, Ordering::Relaxed);
        if let Some(spec) = self.specs.lock().get_mut(name) {
            spec.restarts += 1;
        }
        Ok(handle)
    }
}

/// Polls `addr` until a dial succeeds (the readiness probe) or `timeout`
/// elapses. Returns whether the address became dialable.
pub fn wait_ready(net: &dyn Network, addr: &ServiceAddr, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        match net.dial(addr) {
            Ok(mut conn) => {
                conn.shutdown();
                return true;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnService;
    use rddr_net::Stream;

    fn echo_service() -> Arc<dyn Service> {
        Arc::new(FnService::new("echo", |mut conn, _ctx| {
            let mut buf = [0u8; 64];
            while let Ok(n) = conn.read(&mut buf) {
                if n == 0 {
                    break;
                }
                let Some(data) = buf.get(..n) else {
                    break;
                };
                if conn.write_all(data).is_err() {
                    break;
                }
            }
        }))
    }

    #[test]
    fn respawn_after_stop_restores_service() {
        let cluster = Cluster::new(2);
        let addr = ServiceAddr::new("svc", 80);
        let image = Image::new("svc", "v1");
        let supervisor = Supervisor::new();
        supervisor.register("svc-0", image.clone(), addr.clone(), echo_service());

        let mut first = cluster
            .run_container("svc-0", image, &addr, echo_service())
            .unwrap();
        first.stop();
        assert!(cluster.net().dial(&addr).is_err(), "stopped: must not dial");

        let respawned = supervisor
            .respawn(&cluster, "svc-0", Duration::from_secs(1))
            .unwrap();
        assert_eq!(respawned.addr(), &addr);
        assert_eq!(supervisor.restarts(), 1);
        assert_eq!(supervisor.replica_restarts("svc-0"), Some(1));

        let mut conn = cluster.net().dial(&addr).unwrap();
        conn.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn factory_respawn_rebuilds_before_readiness() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc", 80);
        let image = Image::new("svc", "v1");
        let supervisor = Supervisor::new();
        // The "durable state" the factory recovers from: each rebuild
        // stamps a fresh generation, and the service answers with it.
        let generation = Arc::new(AtomicU64::new(0));
        let gen_for_factory = Arc::clone(&generation);
        supervisor.register_factory("svc-0", image.clone(), addr.clone(), move || {
            let gen = gen_for_factory.fetch_add(1, Ordering::SeqCst) + 1;
            Ok(Arc::new(FnService::new("svc", move |mut conn, _ctx| {
                let _ = conn.write_all(&gen.to_le_bytes());
            })) as Arc<dyn Service>)
        });

        let mut first = cluster
            .run_container("svc-0", image, &addr, echo_service())
            .unwrap();
        first.stop();
        let _respawned = supervisor
            .respawn(&cluster, "svc-0", Duration::from_secs(1))
            .unwrap();
        // The factory ran exactly once, before readiness reported.
        assert_eq!(generation.load(Ordering::SeqCst), 1);
        let mut conn = cluster.net().dial(&addr).unwrap();
        let mut buf = [0u8; 8];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 1);
    }

    #[test]
    fn factory_failure_aborts_the_respawn() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc", 80);
        let supervisor = Supervisor::new();
        supervisor.register_factory("svc-0", Image::new("svc", "v1"), addr.clone(), || {
            Err("wal corrupt at offset 12".to_string())
        });
        let err = supervisor
            .respawn(&cluster, "svc-0", Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, ClusterError::SpawnFailed(_)));
        assert!(cluster.net().dial(&addr).is_err(), "nothing must be bound");
        assert_eq!(supervisor.restarts(), 0);
    }

    #[test]
    fn respawn_of_unknown_replica_errors() {
        let cluster = Cluster::new(1);
        let supervisor = Supervisor::new();
        assert!(matches!(
            supervisor.respawn(&cluster, "ghost", Duration::from_millis(10)),
            Err(ClusterError::UnknownReplica(_))
        ));
        assert_eq!(supervisor.restarts(), 0);
    }

    #[test]
    fn respawn_while_old_container_alive_is_rejected() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc", 80);
        let image = Image::new("svc", "v1");
        let supervisor = Supervisor::new();
        supervisor.register("svc-0", image.clone(), addr.clone(), echo_service());
        let _alive = cluster
            .run_container("svc-0", image, &addr, echo_service())
            .unwrap();
        assert!(matches!(
            supervisor.respawn(&cluster, "svc-0", Duration::from_millis(10)),
            Err(ClusterError::AddressInUse(_))
        ));
    }

    #[test]
    fn forget_removes_the_spec() {
        let supervisor = Supervisor::new();
        supervisor.register(
            "svc-0",
            Image::new("svc", "v1"),
            ServiceAddr::new("svc", 80),
            echo_service(),
        );
        assert_eq!(supervisor.replicas(), vec!["svc-0".to_string()]);
        supervisor.forget("svc-0");
        assert!(supervisor.replicas().is_empty());
    }

    #[test]
    fn wait_ready_times_out_on_dead_address() {
        let cluster = Cluster::new(1);
        assert!(!wait_ready(
            &cluster.net(),
            &ServiceAddr::new("nothing", 1),
            Duration::from_millis(20),
        ));
    }
}
