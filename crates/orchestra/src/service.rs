use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use rddr_net::{BoxStream, Network};

use crate::{CpuGovernor, ResourceMeter};

/// A container image reference: name plus tag.
///
/// Version diversity (§V-D of the paper) is expressed exactly as it is on
/// Docker/Kubernetes — "the deployed version can be changed by simply
/// changing the specified version tag".
///
/// # Examples
///
/// ```
/// use rddr_orchestra::Image;
///
/// let img = Image::new("nginx", "1.13.2");
/// assert_eq!(img.to_string(), "nginx:1.13.2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Image {
    name: String,
    tag: String,
}

impl Image {
    /// Creates an image reference.
    pub fn new(name: impl Into<String>, tag: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tag: tag.into(),
        }
    }

    /// The image name (e.g. `"nginx"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The image tag (e.g. `"1.13.2"`).
    pub fn tag(&self) -> &str {
        &self.tag
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.tag)
    }
}

/// Everything a running service can touch: its resource meter, the node's
/// CPU governor, and the cluster network (for calls to other services).
#[derive(Clone)]
pub struct ServiceCtx {
    /// This container's resource meter.
    pub meter: ResourceMeter,
    /// The node's vCPU governor.
    pub governor: CpuGovernor,
    /// The cluster network fabric.
    pub net: Arc<dyn Network>,
}

impl fmt::Debug for ServiceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceCtx")
            .field("governor", &self.governor)
            .finish()
    }
}

impl ServiceCtx {
    /// Performs `cost` of simulated CPU work: waits for a vCPU slot, holds
    /// it for the governor-scaled duration, and charges this container.
    pub fn compute(&self, cost: Duration) {
        self.governor.consume(&self.meter, cost);
    }

    /// Records a memory allocation against this container.
    pub fn alloc(&self, bytes: u64) {
        self.meter.alloc(bytes);
    }

    /// Records a memory release.
    pub fn free(&self, bytes: u64) {
        self.meter.free(bytes);
    }
}

/// A microservice: handles one accepted connection at a time (the container
/// runtime spawns a thread per connection).
pub trait Service: Send + Sync + 'static {
    /// Handles one client connection until it closes.
    fn handle(&self, conn: BoxStream, ctx: &ServiceCtx);

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "service"
    }
}

/// Adapts a closure into a [`Service`].
///
/// # Examples
///
/// ```
/// use rddr_orchestra::FnService;
/// use rddr_net::Stream;
///
/// let echo = FnService::new("echo", |mut conn, _ctx| {
///     let mut buf = [0u8; 256];
///     while let Ok(n) = conn.read(&mut buf) {
///         if n == 0 || conn.write_all(&buf[..n]).is_err() {
///             break;
///         }
///     }
/// });
/// ```
pub struct FnService<F> {
    name: String,
    f: F,
}

impl<F> FnService<F>
where
    F: Fn(BoxStream, &ServiceCtx) + Send + Sync + 'static,
{
    /// Wraps a handler closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F> fmt::Debug for FnService<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnService")
            .field("name", &self.name)
            .finish()
    }
}

impl<F> Service for FnService<F>
where
    F: Fn(BoxStream, &ServiceCtx) + Send + Sync + 'static,
{
    fn handle(&self, conn: BoxStream, ctx: &ServiceCtx) {
        (self.f)(conn, ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_display_is_docker_style() {
        assert_eq!(Image::new("postgres", "10.7").to_string(), "postgres:10.7");
    }

    #[test]
    fn image_accessors() {
        let i = Image::new("haproxy", "1.5.3");
        assert_eq!(i.name(), "haproxy");
        assert_eq!(i.tag(), "1.5.3");
    }

    #[test]
    fn ctx_compute_charges_this_container() {
        let ctx = ServiceCtx {
            meter: ResourceMeter::new(),
            governor: CpuGovernor::with_time_scale(1, 0.001),
            net: Arc::new(rddr_net::SimNet::new()),
        };
        ctx.compute(Duration::from_millis(2));
        ctx.alloc(64);
        let s = ctx.meter.sample();
        assert_eq!(s.cpu_micros, 2_000);
        assert_eq!(s.mem_bytes, 64);
    }
}
