use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::ResourceMeter;

/// Admission control over a node's virtual CPUs.
///
/// Simulated work acquires a vCPU slot for its duration; when all slots are
/// busy, further work queues. This reproduces the resource-exhaustion shape
/// of the paper's §V-G2: the 3-version deployment saturates the 32-vCPU
/// server machine ~3× sooner than the single-instance baselines, so RDDR's
/// throughput "tapers off above 16 simultaneous clients".
///
/// Work is modelled by *sleeping* while holding the slot, so simulated CPU
/// seconds do not burn host CPU; contention and queueing delays are still
/// realistic because the slot count is finite.
#[derive(Clone)]
pub struct CpuGovernor {
    inner: Arc<GovernorInner>,
}

struct GovernorInner {
    capacity: usize,
    in_use: Mutex<usize>,
    freed: Condvar,
    busy_micros: AtomicU64,
    time_scale_permille: u64,
}

impl std::fmt::Debug for CpuGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuGovernor")
            .field("capacity", &self.inner.capacity)
            .field("in_use", &*self.inner.in_use.lock())
            .finish()
    }
}

impl CpuGovernor {
    /// Creates a governor with `vcpus` slots running work at real-time scale.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus` is zero.
    pub fn new(vcpus: usize) -> Self {
        Self::with_time_scale(vcpus, 1.0)
    }

    /// Creates a governor whose simulated work runs at `scale` × real time
    /// (e.g. `0.1` makes 1 ms of simulated CPU cost 0.1 ms of wall time,
    /// keeping benchmark harnesses fast while preserving contention shape).
    ///
    /// # Panics
    ///
    /// Panics if `vcpus` is zero or `scale` is not finite and positive.
    pub fn with_time_scale(vcpus: usize, scale: f64) -> Self {
        assert!(vcpus > 0, "a node needs at least one vCPU");
        assert!(
            scale.is_finite() && scale > 0.0,
            "time scale must be positive"
        );
        Self {
            inner: Arc::new(GovernorInner {
                capacity: vcpus,
                in_use: Mutex::new(0),
                freed: Condvar::new(),
                busy_micros: AtomicU64::new(0),
                time_scale_permille: (scale * 1000.0).round().max(1.0) as u64,
            }),
        }
    }

    /// Number of vCPU slots.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Slots currently held (instantaneous utilization numerator).
    pub fn in_use(&self) -> usize {
        *self.inner.in_use.lock()
    }

    /// Instantaneous utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.in_use() as f64 / self.inner.capacity as f64
    }

    /// Total simulated-busy CPU time across all slots, in microseconds.
    /// Divide by elapsed wall time × capacity for average utilization.
    pub fn busy_micros(&self) -> u64 {
        self.inner.busy_micros.load(Ordering::Relaxed)
    }

    /// Executes `cpu_cost` of simulated work on behalf of `meter`: waits for
    /// a free vCPU slot, holds it for the (scaled) duration, and charges the
    /// meter the full unscaled cost.
    pub fn consume(&self, meter: &ResourceMeter, cpu_cost: Duration) {
        let micros = cpu_cost.as_micros() as u64;
        if micros == 0 {
            return;
        }
        {
            let mut in_use = self.inner.in_use.lock();
            while *in_use >= self.inner.capacity {
                self.inner.freed.wait(&mut in_use);
            }
            *in_use += 1;
        }
        let scaled = Duration::from_micros(micros * self.inner.time_scale_permille / 1000);
        if !scaled.is_zero() {
            // Simulated CPU occupancy is the governor's contract: the slot
            // is held for the scaled duration so co-located services contend
            // realistically. rddr-analyze: allow(blocking-hot-path)
            std::thread::sleep(scaled);
        }
        {
            let mut in_use = self.inner.in_use.lock();
            *in_use -= 1;
        }
        self.inner.freed.notify_one();
        self.inner.busy_micros.fetch_add(micros, Ordering::Relaxed);
        meter.add_cpu_micros(micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn consume_charges_meter_unscaled() {
        let g = CpuGovernor::with_time_scale(2, 0.01);
        let m = ResourceMeter::new();
        g.consume(&m, Duration::from_millis(5));
        assert_eq!(m.sample().cpu_micros, 5_000);
        assert_eq!(g.busy_micros(), 5_000);
    }

    #[test]
    fn zero_cost_is_free() {
        let g = CpuGovernor::new(1);
        let m = ResourceMeter::new();
        g.consume(&m, Duration::ZERO);
        assert_eq!(m.sample().cpu_micros, 0);
    }

    #[test]
    fn saturation_serializes_work() {
        // 1 vCPU, two 20 ms jobs => >= 40 ms wall; 2 vCPUs => ~20 ms.
        let serial = CpuGovernor::new(1);
        let parallel = CpuGovernor::new(2);
        let elapsed = |g: &CpuGovernor| {
            let m = ResourceMeter::new();
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let g = g.clone();
                    let m = m.clone();
                    s.spawn(move || g.consume(&m, Duration::from_millis(20)));
                }
            });
            t0.elapsed()
        };
        let t_serial = elapsed(&serial);
        let t_parallel = elapsed(&parallel);
        assert!(
            t_serial >= Duration::from_millis(38),
            "serial: {t_serial:?}"
        );
        assert!(
            t_parallel < t_serial,
            "parallel {t_parallel:?} vs serial {t_serial:?}"
        );
    }

    #[test]
    fn utilization_reports_held_slots() {
        let g = CpuGovernor::new(4);
        assert_eq!(g.utilization(), 0.0);
        let g2 = g.clone();
        let m = ResourceMeter::new();
        let t = std::thread::spawn(move || g2.consume(&m, Duration::from_millis(50)));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(g.in_use(), 1);
        assert!((g.utilization() - 0.25).abs() < 1e-9);
        t.join().unwrap();
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpus_panics() {
        let _ = CpuGovernor::new(0);
    }
}
