use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use rddr_net::{BoxListener, BoxStream, ServiceAddr};

use crate::{Image, ResourceMeter, Service, ServiceCtx};

/// A running container: an accept loop serving one [`Service`] on one
/// address, with its own [`ResourceMeter`].
///
/// Dropping the handle (or calling [`ContainerHandle::stop`]) unbinds the
/// address and winds the accept loop down.
pub struct ContainerHandle {
    name: String,
    image: Image,
    addr: ServiceAddr,
    meter: ResourceMeter,
    stop: Arc<AtomicBool>,
    unbind: Box<dyn Fn() + Send + Sync>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    /// Clones of every accepted stream, so [`ContainerHandle::kill`] can
    /// sever in-flight connections the way a crashed process would.
    live: Arc<Mutex<Vec<BoxStream>>>,
}

impl std::fmt::Debug for ContainerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContainerHandle")
            .field("name", &self.name)
            .field("image", &self.image)
            .field("addr", &self.addr)
            .finish()
    }
}

impl ContainerHandle {
    pub(crate) fn spawn(
        name: String,
        image: Image,
        addr: ServiceAddr,
        mut listener: BoxListener,
        service: Arc<dyn Service>,
        ctx: ServiceCtx,
        unbind: Box<dyn Fn() + Send + Sync>,
    ) -> Self {
        let meter = ctx.meter.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let live: Arc<Mutex<Vec<BoxStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stop2 = Arc::clone(&stop);
        let conn_count = Arc::clone(&connections);
        let live2 = Arc::clone(&live);
        let thread_name = name.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("container-{thread_name}"))
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let Ok(conn) = listener.accept() else {
                        break; // network torn down
                    };
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    conn_count.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = conn.try_clone() {
                        live2.lock().push(clone);
                    }
                    let service = Arc::clone(&service);
                    let ctx = ctx.clone();
                    std::thread::Builder::new()
                        .name(format!("{thread_name}-conn"))
                        .spawn(move || service.handle(conn, &ctx))
                        .expect("spawn connection handler");
                }
            })
            .expect("spawn container accept loop");
        Self {
            name,
            image,
            addr,
            meter,
            stop,
            unbind,
            accept_thread: Some(accept_thread),
            connections,
            live,
        }
    }

    /// The container name (e.g. `"postgres-1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The image this container was started from.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The address the container serves on.
    pub fn addr(&self) -> &ServiceAddr {
        &self.addr
    }

    /// This container's resource meter.
    pub fn meter(&self) -> &ResourceMeter {
        &self.meter
    }

    /// Total connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and unbinds the address. Connections already
    /// handed to worker threads run to completion (a graceful drain, like
    /// `docker stop`).
    pub fn stop(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            (self.unbind)();
        }
        if let Some(t) = self.accept_thread.take() {
            // The accept loop exits once its listener sees the unbind.
            let _ = t.join();
        }
    }

    /// Kills the container like a crashed process (`docker kill`): stops
    /// the accept loop, unbinds the address, *and* severs every connection
    /// currently being served — peers see an abrupt close, and crash-
    /// recovery chaos tests pair this with a disk crash.
    pub fn kill(&mut self) {
        self.stop();
        for mut conn in self.live.lock().drain(..) {
            conn.shutdown();
        }
    }
}

impl Drop for ContainerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;
    use std::time::Duration;

    use rddr_net::{Network, Stream};

    use super::*;
    use crate::{Cluster, FnService, Service};

    fn echo_service() -> Arc<dyn Service> {
        Arc::new(FnService::new("echo", |mut conn, _ctx| {
            let mut buf = [0u8; 64];
            while let Ok(n) = conn.read(&mut buf) {
                if n == 0 {
                    break;
                }
                if conn.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }))
    }

    fn echo_once(conn: &mut BoxStream, payload: &[u8]) -> Vec<u8> {
        conn.write_all(payload).unwrap();
        let mut buf = [0u8; 64];
        let n = conn.read(&mut buf).unwrap();
        buf[..n].to_vec()
    }

    #[test]
    fn kill_severs_live_connections_mid_read() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc-kill", 80);
        let mut handle = cluster
            .run_container("svc-0", Image::new("svc", "v1"), &addr, echo_service())
            .unwrap();
        let mut conn = cluster.net().dial(&addr).unwrap();
        assert_eq!(echo_once(&mut conn, b"ping"), b"ping");

        // Park a reader mid-read, then kill: like a crashed process, the
        // blocked read must end abruptly instead of waiting on data that
        // will never come (`stop` would leave it parked forever).
        let (tx, rx) = mpsc::channel();
        let mut reader = conn.try_clone().unwrap();
        std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            tx.send(reader.read(&mut buf)).ok();
        });
        std::thread::sleep(Duration::from_millis(20));
        handle.kill();
        let outcome = rx
            .recv_timeout(Duration::from_secs(2))
            .expect("kill must sever the in-flight read");
        assert!(
            matches!(outcome, Ok(0) | Err(_)),
            "severed close expected, got data: {outcome:?}"
        );
    }

    #[test]
    fn stop_drains_live_connections_and_unbinds() {
        let cluster = Cluster::new(1);
        let addr = ServiceAddr::new("svc-stop", 80);
        let mut handle = cluster
            .run_container("svc-0", Image::new("svc", "v1"), &addr, echo_service())
            .unwrap();
        let mut conn = cluster.net().dial(&addr).unwrap();
        assert_eq!(echo_once(&mut conn, b"before"), b"before");

        handle.stop();
        // New sessions are refused (the address is unbound)…
        assert!(cluster.net().dial(&addr).is_err(), "stop must unbind");
        // …but the in-flight session drains to completion, like
        // `docker stop` letting workers finish.
        assert_eq!(echo_once(&mut conn, b"after"), b"after");
        assert_eq!(handle.connections(), 1);
    }
}
