//! An in-process container-orchestration substrate.
//!
//! The paper deploys RDDR on Kubernetes: every microservice runs in a
//! container, replicas are stamped out from a base image (with version
//! diversity expressed as image *tags*, §V-D), services discover one another
//! by name, and the evaluation measures per-deployment CPU and memory
//! (Figs 4–6). This crate reproduces exactly the slice of that machinery
//! RDDR's evaluation touches:
//!
//! * [`Cluster`] — one or more nodes with fixed virtual CPUs and a
//!   [`rddr_net::SimNet`] fabric for service discovery.
//! * [`Image`]/container-style deployment via [`Cluster::run_container`],
//!   returning a [`ContainerHandle`] that owns the accept loop.
//! * [`ResourceMeter`] — per-container CPU and memory accounting, the data
//!   source for the paper's Figure 4 and Figure 6 measurements.
//! * [`CpuGovernor`] — admission control over the node's virtual CPUs.
//!   Simulated work (`ServiceCtx::compute`) holds a vCPU slot for its
//!   duration, so a 3-version deployment exhausts a node's parallelism
//!   roughly 3× sooner than a single instance — the saturation knee the
//!   paper observes past 16 pgbench clients (§V-G2).
//!
//! See `DESIGN.md` for the substitution ledger entry mapping this crate to
//! Kubernetes.

mod cluster;
mod container;
mod governor;
mod meter;
mod service;
mod supervisor;

pub use cluster::{Cluster, ClusterError};
pub use container::ContainerHandle;
pub use governor::CpuGovernor;
pub use meter::{ResourceMeter, ResourceSample};
pub use service::{FnService, Image, Service, ServiceCtx};
pub use supervisor::{wait_ready, Supervisor};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
