//! Property tests: the token scanner and the full per-file analysis are
//! total functions — no byte sequence panics them, and lexing is
//! insensitive to trailing garbage after valid code.

use proptest::prelude::*;

use rddr_analyze::lexer::{lex, TokenKind};

proptest! {
    /// The lexer consumes arbitrary bytes without panicking, and every
    /// token it emits carries a plausible line number.
    #[test]
    fn lexer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count() as u32;
        for t in lex(&bytes) {
            prop_assert!(t.line >= 1);
            prop_assert!(t.line <= newlines + 1, "line {} of {} newlines", t.line, newlines);
        }
    }

    /// The whole per-file pipeline (lex, cfg(test) strip, all passes) is
    /// total over arbitrary bytes for every crate-targeting combination.
    #[test]
    fn analysis_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        for crate_name in ["core", "proxy", "orchestra", "shim:rand"] {
            let _ = rddr_analyze::analyze_source("fuzz.rs", crate_name, &bytes);
        }
    }

    /// Mostly-ASCII punctuation soup (likelier to form comment/string/brace
    /// openers than uniform bytes) also never panics the pipeline.
    #[test]
    fn punctuation_soup_never_panics(s in "[-/*'\"#\\[\\]{}()!.a-z0-9 \n]{0,512}") {
        let toks = lex(s.as_bytes());
        prop_assert!(toks.len() <= s.len().max(1));
        let _ = rddr_analyze::analyze_source("soup.rs", "net", s.as_bytes());
    }
}

#[test]
fn lexer_is_deterministic() {
    let src = b"fn f() { x.unwrap(); } // rddr-analyze: allow(panic-path)";
    assert_eq!(lex(src), lex(src));
}

#[test]
fn every_token_kind_is_reachable() {
    let toks = lex(b"fn f<'a>() -> u8 { /* b */ let s = \"x\"; 7 } // c");
    for kind in [
        TokenKind::Ident,
        TokenKind::Punct,
        TokenKind::Literal,
        TokenKind::LineComment,
        TokenKind::BlockComment,
        TokenKind::Lifetime,
    ] {
        assert!(toks.iter().any(|t| t.kind == kind), "{kind:?} missing");
    }
}
