//! Property tests: the token scanner and the full per-file analysis are
//! total functions — no byte sequence panics them, and lexing is
//! insensitive to trailing garbage after valid code.

use proptest::prelude::*;

use rddr_analyze::lexer::{lex, TokenKind};

proptest! {
    /// The lexer consumes arbitrary bytes without panicking, and every
    /// token it emits carries a plausible line number.
    #[test]
    fn lexer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count() as u32;
        for t in lex(&bytes) {
            prop_assert!(t.line >= 1);
            prop_assert!(t.line <= newlines + 1, "line {} of {} newlines", t.line, newlines);
        }
    }

    /// The whole per-file pipeline (lex, cfg(test) strip, all passes) is
    /// total over arbitrary bytes for every crate-targeting combination.
    #[test]
    fn analysis_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        for crate_name in ["core", "proxy", "orchestra", "shim:rand"] {
            let _ = rddr_analyze::analyze_source("fuzz.rs", crate_name, &bytes);
        }
    }

    /// Mostly-ASCII punctuation soup (likelier to form comment/string/brace
    /// openers than uniform bytes) also never panics the pipeline.
    #[test]
    fn punctuation_soup_never_panics(s in "[-/*'\"#\\[\\]{}()!.a-z0-9 \n]{0,512}") {
        let toks = lex(s.as_bytes());
        prop_assert!(toks.len() <= s.len().max(1));
        let _ = rddr_analyze::analyze_source("soup.rs", "net", s.as_bytes());
    }

    /// A raw string is one Literal token whatever its contents, for any
    /// hash depth the generator produces — lint keywords inside never leak
    /// as identifiers, and the bytes after it still lex.
    #[test]
    fn raw_string_contents_never_leak(
        hashes in 0usize..4,
        body in "[a-zA-Z0-9_ .(){}\"#]{0,64}",
    ) {
        let fence = "#".repeat(hashes);
        // The body may close the fence early; totality and no-panic still
        // hold, so only assert identifier hygiene when it can't.
        let closes_early = body.contains(&format!("\"{fence}"));
        let src = format!("let s = r{fence}\"{body}\"{fence}; tail();");
        let toks = lex(src.as_bytes());
        if !closes_early {
            prop_assert!(
                !toks.iter().any(|t| t.is_ident("unwrap") || t.is_ident("HashMap")),
                "{toks:?}"
            );
            prop_assert!(toks.iter().any(|t| t.is_ident("tail")), "{toks:?}");
        }
    }

    /// Byte strings and byte chars: contents stay opaque, the suffix lexes.
    #[test]
    fn byte_string_contents_never_leak(body in "[a-zA-Z0-9_ .(){}]{0,64}") {
        let src = format!("let s = b\"{body}\"; let c = b'x'; tail();");
        let toks = lex(src.as_bytes());
        prop_assert!(!toks.iter().any(|t| t.is_ident("unwrap")), "{toks:?}");
        prop_assert!(toks.iter().any(|t| t.is_ident("tail")), "{toks:?}");
    }

    /// Arbitrarily nested block comments collapse to one BlockComment token
    /// and the code after them still lexes.
    #[test]
    fn nested_block_comments_balance(depth in 1usize..8, filler in "[a-z ]{0,16}") {
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/* ");
            src.push_str(&filler);
        }
        for _ in 0..depth {
            src.push_str(" */");
        }
        src.push_str(" tail();");
        let toks = lex(src.as_bytes());
        prop_assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::BlockComment).count(),
            1
        );
        prop_assert!(toks.iter().any(|t| t.is_ident("tail")), "{toks:?}");
    }

    /// Raw identifiers lex as single tokens: no `#` punct escapes and no
    /// keyword is spoofed, whatever keyword is behind the `r#`.
    #[test]
    fn raw_identifiers_never_spoof_keywords(kw_idx in 0usize..6) {
        let kw = ["fn", "mod", "use", "let", "while", "match"][kw_idx];
        let src = format!("r#{kw}(1);");
        let toks = lex(src.as_bytes());
        prop_assert!(!toks.iter().any(|t| t.is_punct('#')), "{toks:?}");
        prop_assert!(!toks.iter().any(|t| t.is_ident(kw)), "{toks:?}");
        prop_assert!(toks.iter().any(|t| t.is_ident(&format!("r#{kw}"))), "{toks:?}");
    }
}

#[test]
fn lexer_is_deterministic() {
    let src = b"fn f() { x.unwrap(); } // rddr-analyze: allow(panic-path)";
    assert_eq!(lex(src), lex(src));
}

#[test]
fn every_token_kind_is_reachable() {
    let toks = lex(b"fn f<'a>() -> u8 { /* b */ let s = \"x\"; 7 } // c");
    for kind in [
        TokenKind::Ident,
        TokenKind::Punct,
        TokenKind::Literal,
        TokenKind::LineComment,
        TokenKind::BlockComment,
        TokenKind::Lifetime,
    ] {
        assert!(toks.iter().any(|t| t.kind == kind), "{kind:?} missing");
    }
}
