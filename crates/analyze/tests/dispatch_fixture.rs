//! Dispatch resolution, end to end against fixture workspaces. Each test
//! pins a finding the pre-dispatch analyzer structurally missed: a method
//! call with two trait impls was ambiguous under uniqueness resolution and
//! silently dropped, and closure bodies were folded into their spawner.

use std::path::{Path, PathBuf};

use rddr_analyze::{analyze_workspace, Finding, Lint};

/// Builds a miniature multi-crate workspace in a temp dir.
fn seed_fixture(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rddr-analyze-dispatch-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    for (rel, source) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, source).expect("write source");
    }
    std::fs::write(dir.join("analyze-baseline.toml"), "").expect("write baseline");
    dir
}

fn findings_of(dir: &Path, lint: Lint) -> Vec<Finding> {
    analyze_workspace(dir)
        .expect("scan fixture")
        .findings
        .into_iter()
        .filter(|f| f.lint == lint)
        .collect()
}

#[test]
fn taint_follows_dyn_protocol_dispatch_to_the_leaky_impl() {
    // The sink calls through `&dyn Protocol`; with two impls, uniqueness
    // resolution could never pick one. Dispatch fans out to both, and only
    // the impl holding a `HashMap` is flagged — with the dispatch path.
    let dir = seed_fixture(
        "dyn-protocol",
        &[
            (
                "crates/core/src/diff.rs",
                "use rddr_wire::Protocol;\n\
                 pub fn diff_segments(p: &dyn Protocol) {\n\
                \x20    let mut out = Vec::new();\n\
                \x20    p.frame(&mut out);\n\
                 }\n",
            ),
            (
                "crates/wire/src/lib.rs",
                "pub trait Protocol {\n\
                \x20    fn frame(&self, out: &mut Vec<u8>);\n\
                 }\n",
            ),
            (
                "crates/wire/src/pg.rs",
                "pub struct Pg;\n\
                 impl Protocol for Pg {\n\
                \x20    fn frame(&self, out: &mut Vec<u8>) {\n\
                \x20        let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                \x20        let _ = (m, out);\n\
                \x20    }\n\
                 }\n",
            ),
            (
                "crates/wire/src/http.rs",
                "pub struct Http;\n\
                 impl Protocol for Http {\n\
                \x20    fn frame(&self, out: &mut Vec<u8>) { out.clear(); }\n\
                 }\n",
            ),
        ],
    );
    let findings = findings_of(&dir, Lint::Determinism);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.file, "crates/wire/src/pg.rs");
    assert!(f.message.contains("HashMap"), "{f}");
    assert!(
        f.message
            .contains("core::diff::diff_segments -> wire::pg::frame"),
        "dispatch path named: {f}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn blocking_call_in_a_spawned_closure_is_flagged_in_its_spawner() {
    // worker_loop reaches the spawner only through dispatch (two Pump
    // impls), and the sleep lives in a closure handed to `thread::spawn` —
    // a reader-pump shape the span-folding analyzer attributed to nothing.
    let dir = seed_fixture(
        "spawned-closure",
        &[
            (
                "crates/proxy/src/reactor.rs",
                "use rddr_pumps::Pump;\n\
                 pub fn worker_loop(p: &dyn Pump) { p.engage(0); }\n",
            ),
            (
                "crates/pumps/src/lib.rs",
                "pub trait Pump {\n\
                \x20    fn engage(&self, shard: u8);\n\
                 }\n",
            ),
            (
                "crates/pumps/src/tail.rs",
                "pub struct Tail;\n\
                 impl Pump for Tail {\n\
                \x20    fn engage(&self, shard: u8) {\n\
                \x20        let _ = shard;\n\
                \x20        std::thread::spawn(move || {\n\
                \x20            std::thread::sleep(std::time::Duration::from_millis(5));\n\
                \x20        });\n\
                \x20    }\n\
                 }\n",
            ),
            (
                "crates/pumps/src/head.rs",
                "pub struct Head;\n\
                 impl Pump for Head {\n\
                \x20    fn engage(&self, shard: u8) { let _ = shard; }\n\
                 }\n",
            ),
        ],
    );
    let findings = findings_of(&dir, Lint::BlockingHotPath);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.file, "crates/pumps/src/tail.rs");
    assert!(
        f.message.contains(
            "proxy::reactor::worker_loop -> pumps::tail::engage -> \
             pumps::tail::engage::closure@5"
        ),
        "chain crosses the spawn edge into the closure node: {f}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The cross-crate deadlock shape: `relay::finish` holds `relay:roster` and
/// calls into `audit`, which acquires `audit:ring()`; `audit::sweep` holds
/// `audit:ring()` and calls back into `relay`, which acquires
/// `relay:roster`. Neither crate sees both locks textually.
const RELAY: &str = "use rddr_audit::record;\n\
     pub fn finish(roster: &std::sync::Mutex<u8>) {\n\
    \x20    let g = roster.lock();\n\
    \x20    record(*g.unwrap());\n\
     }\n\
     pub fn poke(roster: &std::sync::Mutex<u8>) {\n\
    \x20    let mut g = roster.lock().unwrap();\n\
    \x20    *g += 1;\n\
     }\n";

#[test]
fn cross_crate_lock_cycle_is_detected() {
    let dir = seed_fixture(
        "lock-cycle",
        &[
            ("crates/relay/src/lib.rs", RELAY),
            (
                "crates/audit/src/lib.rs",
                "use rddr_relay::poke;\n\
                 pub fn record(v: u8) {\n\
                \x20    let g = ring().lock();\n\
                \x20    let _ = (g, v);\n\
                 }\n\
                 pub fn sweep(roster: &std::sync::Mutex<u8>) {\n\
                \x20    let g = ring().lock();\n\
                \x20    poke(roster);\n\
                \x20    let _ = g;\n\
                 }\n",
            ),
        ],
    );
    let findings = findings_of(&dir, Lint::LockOrder);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert!(f.message.contains("lock-order cycle"), "{f}");
    assert!(f.message.contains("relay:roster"), "{f}");
    assert!(f.message.contains("audit:ring()"), "{f}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn allow_comment_suppresses_exactly_the_cycle_edge() {
    // The allow sits on the call that mediates audit:ring() -> relay:roster,
    // killing the cycle — but an unrelated self-deadlock in relay must
    // survive it.
    let relay_with_double = format!(
        "{RELAY}pub fn double(roster: &std::sync::Mutex<u8>) {{\n\
        \x20    let a = roster.lock();\n\
        \x20    let b = roster.lock();\n\
        \x20    let _ = (a, b);\n\
         }}\n"
    );
    let dir = seed_fixture(
        "lock-cycle-allow",
        &[
            ("crates/relay/src/lib.rs", relay_with_double.as_str()),
            (
                "crates/audit/src/lib.rs",
                "use rddr_relay::poke;\n\
                 pub fn record(v: u8) {\n\
                \x20    let g = ring().lock();\n\
                \x20    let _ = (g, v);\n\
                 }\n\
                 pub fn sweep(roster: &std::sync::Mutex<u8>) {\n\
                \x20    let g = ring().lock();\n\
                \x20    // roster is only poked post-drain. rddr-analyze: allow(lock-order)\n\
                \x20    poke(roster);\n\
                \x20    let _ = g;\n\
                 }\n",
            ),
        ],
    );
    let findings = findings_of(&dir, Lint::LockOrder);
    assert_eq!(findings.len(), 1, "only the self-deadlock: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.file, "crates/relay/src/lib.rs");
    assert!(f.message.contains("re-acquired while already held"), "{f}");
    std::fs::remove_dir_all(&dir).ok();
}
