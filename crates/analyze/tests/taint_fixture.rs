//! The interprocedural taint pass, end to end against a fixture workspace
//! with a known source→sink chain: a diff-reaching sink in `core` calls
//! through a middle crate into a helper whose `HashMap` leaks iteration
//! order. The pass must flag the helper (with the chain), and an
//! `allow(determinism)` suppression must silence exactly the finding it
//! sits on — not its neighbors.

use std::path::{Path, PathBuf};

use rddr_analyze::{analyze_workspace, Finding, Lint};

/// Builds a miniature multi-crate workspace in a temp dir.
fn seed_fixture(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rddr-analyze-taint-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    for (rel, source) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, source).expect("write source");
    }
    std::fs::write(dir.join("analyze-baseline.toml"), "").expect("write baseline");
    dir
}

fn determinism_findings(dir: &Path) -> Vec<Finding> {
    analyze_workspace(dir)
        .expect("scan fixture")
        .findings
        .into_iter()
        .filter(|f| f.lint == Lint::Determinism)
        .collect()
}

#[test]
fn known_chain_is_flagged_with_its_path() {
    let dir = seed_fixture(
        "chain",
        &[
            (
                "crates/core/src/diff.rs",
                "use rddr_metricsim::render_totals;\n\
                 pub fn diff_segments() { render_totals(); }\n",
            ),
            (
                "crates/metricsim/src/lib.rs",
                "pub fn render_totals() { totals_table(); }\n\
                 fn totals_table() {\n\
                \x20    let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                \x20    let _ = m;\n\
                 }\n",
            ),
        ],
    );
    let findings = determinism_findings(&dir);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.file, "crates/metricsim/src/lib.rs");
    assert!(f.message.contains("HashMap"), "{f}");
    assert!(
        f.message.contains(
            "core::diff::diff_segments -> metricsim::render_totals -> metricsim::totals_table"
        ),
        "chain named: {f}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn allow_suppresses_exactly_one_finding() {
    // Two source sites on the same chain; the allow-comment covers only the
    // first. The second must survive.
    let dir = seed_fixture(
        "allow",
        &[
            (
                "crates/core/src/diff.rs",
                "use rddr_metricsim::render_totals;\n\
                 pub fn diff_segments() { render_totals(); }\n",
            ),
            (
                "crates/metricsim/src/lib.rs",
                "pub fn render_totals() {\n\
                \x20    // ordered before render. rddr-analyze: allow(determinism)\n\
                \x20    let a: std::collections::HashMap<u8, u8> = Default::default();\n\
                \x20    let b: std::collections::HashMap<u8, u8> = Default::default();\n\
                \x20    let _ = (a, b);\n\
                 }\n",
            ),
        ],
    );
    let findings = determinism_findings(&dir);
    assert_eq!(
        findings.len(),
        1,
        "exactly the unsuppressed site: {findings:?}"
    );
    assert_eq!(findings[0].line, 4, "{findings:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unreached_crate_is_not_flagged() {
    // Same helper, but nothing diff-reaching calls it: silent.
    let dir = seed_fixture(
        "island",
        &[
            ("crates/core/src/diff.rs", "pub fn diff_segments() {}\n"),
            (
                "crates/metricsim/src/lib.rs",
                "pub fn render_totals() {\n\
                \x20    let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                \x20    let _ = m;\n\
                 }\n",
            ),
        ],
    );
    let findings = determinism_findings(&dir);
    assert!(findings.is_empty(), "{findings:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn blocking_pass_rides_the_same_graph() {
    // The hot-path pass shares the call graph: a sleep two hops below
    // the reactor worker loop is flagged, a sleep in an unreached helper
    // is not.
    let dir = seed_fixture(
        "blocking",
        &[
            (
                "crates/proxy/src/reactor.rs",
                "use rddr_pacing::throttle;\n\
                 pub fn worker_loop() { throttle(); }\n",
            ),
            (
                "crates/pacing/src/lib.rs",
                "pub fn throttle() { pause(); }\n\
                 fn pause() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n\
                 pub fn startup_only() { std::thread::sleep(std::time::Duration::from_secs(1)); }\n",
            ),
        ],
    );
    let analysis = analyze_workspace(&dir).expect("scan fixture");
    let blocking: Vec<&Finding> = analysis
        .findings
        .iter()
        .filter(|f| f.lint == Lint::BlockingHotPath)
        .collect();
    assert_eq!(blocking.len(), 1, "{blocking:?}");
    assert!(
        blocking[0]
            .message
            .contains("proxy::reactor::worker_loop -> pacing::throttle -> pacing::pause"),
        "{blocking:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
