//! The enforcement gate, end to end: the real workspace is clean against
//! the committed baseline, and a seeded violation file turns the run red —
//! both through the library API and through the CLI's exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

use rddr_analyze::baseline::Baseline;
use rddr_analyze::{analyze_workspace, find_workspace_root, Lint};

fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("workspace root above crates/analyze")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let analysis = analyze_workspace(&root).expect("scan workspace");
    assert!(analysis.files_scanned > 100, "workspace has >100 sources");
    let baseline = Baseline::load(&root.join("analyze-baseline.toml")).expect("baseline parses");
    let ratchet = baseline.ratchet(&analysis.findings);
    assert!(
        ratchet.passed(),
        "new violations vs committed baseline:\n{}",
        rddr_analyze::report::text_summary(&analysis, &baseline, &ratchet)
    );
}

#[test]
fn proxy_and_core_fixes_hold_the_line() {
    // The PR that introduced the analyzer also fixed its findings in the
    // proxy hot paths (unwrap/expect) and core's order-sensitive maps;
    // these files must stay free of those specific classes.
    let root = workspace_root();
    let analysis = analyze_workspace(&root).expect("scan workspace");
    for f in &analysis.findings {
        if f.lint == Lint::PanicPath && f.file.starts_with("crates/proxy/") {
            assert!(
                !f.message.contains("unwrap") && !f.message.contains("expect"),
                "proxy unwrap/expect regression: {f}"
            );
        }
        if f.lint == Lint::Determinism
            && (f.file.ends_with("signature.rs") || f.file.ends_with("ephemeral.rs"))
        {
            panic!("core determinism regression: {f}");
        }
    }
}

/// Builds a miniature workspace in a temp dir: one crate with the given
/// source file, plus an empty baseline.
fn seed_workspace(tag: &str, crate_name: &str, source: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rddr-analyze-gate-{tag}"));
    let src_dir = dir.join("crates").join(crate_name).join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(src_dir.join("lib.rs"), source).expect("write source");
    std::fs::write(dir.join("analyze-baseline.toml"), "").expect("write baseline");
    dir
}

#[test]
fn seeded_violation_fails_through_the_library() {
    let dir = seed_workspace(
        "lib",
        "proxy",
        "pub fn hot(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let analysis = analyze_workspace(&dir).expect("scan seeded workspace");
    let baseline = Baseline::load(&dir.join("analyze-baseline.toml")).expect("load");
    let ratchet = baseline.ratchet(&analysis.findings);
    assert!(!ratchet.passed(), "seeded unwrap must regress");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_exit_codes_clean_vs_seeded() {
    let bin = env!("CARGO_BIN_EXE_rddr-analyze");

    // Clean seeded workspace: exit 0.
    let clean = seed_workspace("cli-clean", "proxy", "pub fn ok(x: u8) -> u8 { x }\n");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&clean)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean: {out:?}");

    // Violating workspace: exit 1 and the finding is named on stdout.
    let dirty = seed_workspace(
        "cli-dirty",
        "core",
        "use std::collections::HashMap;\npub type T = HashMap<u8, u8>;\n",
    );
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dirty)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "dirty: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("determinism"), "{stdout}");
    assert!(stdout.contains("HashMap"), "{stdout}");

    // Bad flag: exit 2.
    let out = Command::new(bin)
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&clean).ok();
    std::fs::remove_dir_all(&dirty).ok();
}

#[test]
fn explain_prints_rule_and_suppression_for_every_pass() {
    let bin = env!("CARGO_BIN_EXE_rddr-analyze");
    for lint in Lint::ALL {
        let out = Command::new(bin)
            .args(["--explain", lint.key()])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "{lint}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("allow({})", lint.key())),
            "{lint}: suppression syntax shown:\n{stdout}"
        );
    }
    // `all` concatenates, including the taint extension's entry.
    let out = Command::new(bin)
        .args(["--explain", "all"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("call graph"), "{stdout}");
    // Unknown pass: usage error.
    let out = Command::new(bin)
        .args(["--explain", "made-up"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn forbid_stale_rejects_loose_ceilings() {
    let bin = env!("CARGO_BIN_EXE_rddr-analyze");
    let dir = seed_workspace("stale", "net", "pub fn ok(x: u8) -> u8 { x }\n");
    // A ceiling the clean crate no longer needs…
    std::fs::write(
        dir.join("analyze-baseline.toml"),
        "[panic-path]\n\"crates/net/src/lib.rs\" = 3\n",
    )
    .expect("write stale baseline");
    // …passes a plain run…
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // …but fails --forbid-stale, naming the remedy.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .arg("--forbid-stale")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("STALE"), "{stdout}");
    assert!(stdout.contains("--write-baseline"), "{stdout}");
    // After regenerating, --forbid-stale is clean.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .arg("--write-baseline")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .arg("--forbid-stale")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_report_carries_per_stage_timings() {
    let bin = env!("CARGO_BIN_EXE_rddr-analyze");
    let dir = seed_workspace("timings", "net", "pub fn ok(x: u8) -> u8 { x }\n");
    let json_path = dir.join("report.json");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .args(["--json"])
        .arg(&json_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.contains("\"timings_ms\""), "{json}");
    for stage in [
        "\"parse\":",
        "\"callgraph\":",
        "\"taint\":",
        "\"blocking-hot-path\":",
    ] {
        assert!(json.contains(stage), "stage {stage} timed: {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn write_baseline_then_rerun_is_clean() {
    let bin = env!("CARGO_BIN_EXE_rddr-analyze");
    let dir = seed_workspace("ratchet", "net", "pub fn hot(v: &[u8]) -> u8 { v[0] }\n");
    // Against the empty baseline the indexing is a new violation…
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    // …grandfather it…
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .arg("--write-baseline")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // …and the rerun passes while a JSON report records the ceiling.
    let json_path = dir.join("report.json");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&dir)
        .args(["--json"])
        .arg(&json_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.contains("\"passed\": true"), "{json}");
    assert!(
        json.contains("\"lint\": \"panic-path\", \"violations\": 1, \"baseline\": 1, \"new\": 0"),
        "{json}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
