//! `rddr-analyze`: in-tree static analysis enforcing RDDR's operational
//! invariants across the workspace.
//!
//! RDDR's premise is that divergence between N instances signals an attack,
//! so *self-inflicted* nondeterminism manufactures false divergences, and a
//! panic in a proxy hot path turns "sever the connection gracefully" into
//! "crash the fan-out for all N instances". This crate lexes the
//! workspace's Rust sources (a lightweight token scanner in the spirit of
//! the shims — no syn, no registry access), builds a module-qualified
//! [`callgraph`] over them, and runs six lint passes:
//!
//! * [`determinism`] — `HashMap`/`HashSet`, wall-clock, thread-identity,
//!   and address-derived values in crates whose bytes reach the diff
//!   engine, plus the interprocedural [`taint`] extension: the same
//!   sources in *any* crate a diff-reaching sink can call into.
//! * [`panic_path`] — `unwrap()`/`expect()`/panicking macros/slice
//!   indexing in proxy, net, and telemetry hot paths.
//! * [`lock_order`] — a workspace lock-acquisition graph lifted onto the
//!   call graph (held guards nest everything a callee may acquire, across
//!   crates); cycles are potential deadlocks.
//! * [`shim_hygiene`] — `std::` concurrency/randomness where an in-tree
//!   shim exists.
//! * [`hot_path`] — `thread::sleep`/unbounded drains reachable from the
//!   proxies' per-exchange paths.
//! * [`error_swallow`] — `let _ =` / terminal `.ok()` on fallible
//!   transmits in proxy and net.
//!
//! Findings diff against a committed [`baseline::Baseline`] ratchet: new
//! violations fail, grandfathered ones are tolerated and can only shrink.
//! Suppress a deliberate site with `// rddr-analyze: allow(<lint>)` on the
//! same or preceding line.

pub mod baseline;
pub mod callgraph;
pub mod determinism;
pub mod error_swallow;
pub mod hot_path;
pub mod lexer;
pub mod lock_order;
pub mod panic_path;
pub mod report;
pub mod shim_hygiene;
pub mod source;
pub mod taint;

use std::path::{Path, PathBuf};
use std::time::Instant;

use source::SourceFile;

/// The six lint passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// Nondeterminism in diff-reachable crates (token pass + taint pass).
    Determinism,
    /// Panics in hot-path crates.
    PanicPath,
    /// Lock-acquisition cycles.
    LockOrder,
    /// `std::` use where a shim exists.
    ShimHygiene,
    /// Blocking calls reachable from the per-exchange proxy paths.
    BlockingHotPath,
    /// Discarded results of fallible transmits.
    ErrorSwallow,
}

impl Lint {
    /// Every pass, in reporting order.
    pub const ALL: [Lint; 6] = [
        Lint::Determinism,
        Lint::PanicPath,
        Lint::LockOrder,
        Lint::ShimHygiene,
        Lint::BlockingHotPath,
        Lint::ErrorSwallow,
    ];

    /// The stable key used in baselines, allow-directives, and JSON.
    pub fn key(self) -> &'static str {
        match self {
            Lint::Determinism => "determinism",
            Lint::PanicPath => "panic-path",
            Lint::LockOrder => "lock-order",
            Lint::ShimHygiene => "shim-hygiene",
            Lint::BlockingHotPath => "blocking-hot-path",
            Lint::ErrorSwallow => "error-swallow",
        }
    }

    /// Inverse of [`Lint::key`].
    pub fn from_key(key: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.key() == key)
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// `--explain` text per pass (the graph-backed determinism extension has
/// its own entry under `taint`). Each entry: what the pass enforces, and
/// how to suppress a deliberate site.
pub const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "determinism",
        "Crates whose bytes reach the diff engine must not manufacture divergence.\n\
         Flags HashMap/HashSet (iteration order), SystemTime (wall clock), ThreadId /\n\
         thread::current() (thread identity), pointer-to-integer casts (ASLR), and\n\
         RandomState in: core, protocols, pgsim, httpsim, libsim.\n\
         Fix: BTreeMap/BTreeSet, the engine's logical clocks, stable ids.\n\
         Suppress a deliberate site: // rddr-analyze: allow(determinism)",
    ),
    (
        "taint",
        "Interprocedural extension of `determinism` (reported under that key).\n\
         Builds a module-qualified call graph of the workspace — with trait-impl\n\
         dispatch (a call through dyn Protocol/dyn Storage or a T: Trait bound\n\
         fans out to every impl of a matching arity) and spawned-closure nodes\n\
         (thread::spawn / scoped spawn / register_factory closures) — walks it\n\
         from the diff-reaching sinks (core::signature, core::diff, core::denoise,\n\
         and the proxy reactor's worker_loop), and flags nondeterminism sources in any\n\
         reached function of any other crate, with the call chain that makes it\n\
         diff-reaching.\n\
         Suppress at the source site: // rddr-analyze: allow(determinism)",
    ),
    (
        "panic-path",
        "A panic in proxy plumbing kills the fan-out for all N instances. Flags\n\
         .unwrap()/.expect(), panic!/unreachable!/todo!/unimplemented!, and slice\n\
         indexing in: proxy, net, telemetry.\n\
         Fix: propagate errors and sever the exchange; use .get().\n\
         Suppress a deliberate site: // rddr-analyze: allow(panic-path)",
    ),
    (
        "lock-order",
        "Builds a workspace lock-acquisition graph from .lock()/.read()/.write()\n\
         sites, lifted onto the call graph: a guard held across a call nests\n\
         everything the callee may transitively acquire, so acquire-then-call-\n\
         then-acquire chains crossing crates (proxy -> core -> telemetry) are\n\
         checked too. Spawned closures are a thread boundary. A cycle (including\n\
         re-acquiring a held lock, directly or through a callee) is a potential\n\
         deadlock. Fix: acquire locks in one global order; narrow guard scopes.\n\
         Suppress a deliberate site: // rddr-analyze: allow(lock-order)",
    ),
    (
        "shim-hygiene",
        "The workspace vendors concurrency/randomness as in-tree shims so one\n\
         implementation point can be swapped. Flags std::sync::mpsc (crossbeam shim),\n\
         std::sync::{Mutex, RwLock, Condvar} (parking_lot shim), and RandomState.\n\
         Suppress a deliberate site: // rddr-analyze: allow(shim-hygiene)",
    ),
    (
        "blocking-hot-path",
        "The per-exchange proxy paths race N instances under a deadline; an\n\
         unbounded block stalls every exchange at once. Walks the call graph from\n\
         proxy::reactor::worker_loop (which runs every session) — through dispatch\n\
         (dyn Stream reads reach every impl) and into spawned closures (reader\n\
         pumps) — and flags thread::sleep, read_to_end, read_to_string, and park\n\
         in everything reachable.\n\
         Fix: bounded waits (recv_timeout, wait_timeout, read deadlines).\n\
         Suppress a deliberate site: // rddr-analyze: allow(blocking-hot-path)",
    ),
    (
        "error-swallow",
        "In proxy and net, a discarded send error is a silent wedge: instance\n\
         deaths and half-written responses go unobserved. Flags `let _ =` and\n\
         statement-terminal `.ok()` on .send()/.try_send()/.write_all().\n\
         Fix: handle the failure — sever, break the pump, or record it.\n\
         Suppress a deliberate site (e.g. a close racing teardown), with the\n\
         reason in the comment: // rddr-analyze: allow(error-swallow)",
    ),
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Which pass produced it.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(lint: Lint, file: impl Into<String>, line: u32, message: String) -> Finding {
        Finding {
            lint,
            file: file.into(),
            line,
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// The result of analyzing a workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every finding from every pass, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Wall-clock per stage, milliseconds, in execution order: `parse`,
    /// one entry per pass, and `callgraph` for graph construction.
    pub timings_ms: Vec<(String, f64)>,
    /// Size counters of the call graph the graph passes ran over.
    pub graph_stats: callgraph::GraphStats,
}

impl Analysis {
    /// Findings of one pass.
    pub fn of(&self, lint: Lint) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.lint == lint)
    }
}

/// Analyzes one in-memory source file, applying every pass that targets its
/// crate. Graph passes (taint, blocking-hot-path) and lock-order cycles run
/// against this file alone; the workspace driver [`analyze_workspace`]
/// merges across files instead.
pub fn analyze_source(path: &str, crate_name: &str, src: &[u8]) -> Vec<Finding> {
    let file = SourceFile::parse(path, crate_name, src);
    let files = vec![file];
    let mut analysis = analyze_files(files);
    analysis.findings.sort();
    analysis.findings
}

/// Runs every pass over already-parsed files, timing each stage.
///
/// The token passes are independent of one another *and* of call-graph
/// construction, so stage one runs them concurrently with graph building
/// over the shared parsed sources; stage two runs the three graph walks
/// (taint, blocking-hot-path, lock-order — now interprocedural) once the
/// graph exists. Findings and `timings_ms` keep the fixed sequential
/// reporting order regardless of which thread finishes first, so output
/// stays byte-stable.
pub fn analyze_files(files: Vec<SourceFile>) -> Analysis {
    fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let t0 = Instant::now();
        let out = f();
        (out, t0.elapsed().as_secs_f64() * 1e3)
    }

    let mut analysis = Analysis {
        files_scanned: files.len(),
        ..Analysis::default()
    };
    let files_ref = &files;

    // Stage one: token passes ∥ call-graph construction.
    let (determinism_r, panic_r, shim_r, swallow_r, graph_r) = std::thread::scope(|s| {
        let determinism_h = s.spawn(|| {
            timed(|| {
                files_ref
                    .iter()
                    .filter(|f| determinism::TARGET_CRATES.contains(&f.crate_name.as_str()))
                    .flat_map(determinism::check)
                    .collect::<Vec<Finding>>()
            })
        });
        let panic_h = s.spawn(|| {
            timed(|| {
                files_ref
                    .iter()
                    .filter(|f| panic_path::TARGET_CRATES.contains(&f.crate_name.as_str()))
                    .flat_map(panic_path::check)
                    .collect::<Vec<Finding>>()
            })
        });
        let shim_h = s.spawn(|| {
            timed(|| {
                files_ref
                    .iter()
                    .filter(|f| !f.crate_name.starts_with("shim:"))
                    .flat_map(shim_hygiene::check)
                    .collect::<Vec<Finding>>()
            })
        });
        let swallow_h = s.spawn(|| {
            timed(|| {
                files_ref
                    .iter()
                    .filter(|f| error_swallow::TARGET_CRATES.contains(&f.crate_name.as_str()))
                    .flat_map(error_swallow::check)
                    .collect::<Vec<Finding>>()
            })
        });
        let graph_h = s.spawn(|| timed(|| callgraph::CallGraph::build(files_ref)));
        (
            determinism_h.join(),
            panic_h.join(),
            shim_h.join(),
            swallow_h.join(),
            graph_h.join(),
        )
    });
    // A panicked pass is a bug in the analyzer itself; surface it.
    let (determinism_findings, determinism_ms) = determinism_r.unwrap();
    let (panic_findings, panic_ms) = panic_r.unwrap();
    let (shim_findings, shim_ms) = shim_r.unwrap();
    let (swallow_findings, swallow_ms) = swallow_r.unwrap();
    let (graph, callgraph_ms) = graph_r.unwrap();

    // Stage two: the three graph walks read the same immutable graph
    // (lock-order moved here when it went interprocedural — it lifts the
    // per-crate acquisition graph onto the resolved call sites).
    let graph_ref = &graph;
    let (taint_r, blocking_r, lock_r) = std::thread::scope(|s| {
        let taint_h = s.spawn(|| timed(|| taint::check(graph_ref, files_ref)));
        let blocking_h = s.spawn(|| timed(|| hot_path::check(graph_ref, files_ref)));
        let lock_h = s.spawn(|| timed(|| lock_order::check(graph_ref, files_ref)));
        (taint_h.join(), blocking_h.join(), lock_h.join())
    });
    let (taint_findings, taint_ms) = taint_r.unwrap();
    let (blocking_findings, blocking_ms) = blocking_r.unwrap();
    let (lock_findings, lock_ms) = lock_r.unwrap();

    analysis.findings.extend(determinism_findings);
    analysis.findings.extend(panic_findings);
    analysis.findings.extend(lock_findings);
    analysis.findings.extend(shim_findings);
    analysis.findings.extend(swallow_findings);
    analysis.findings.extend(taint_findings);
    analysis.findings.extend(blocking_findings);
    analysis.findings.sort();
    analysis.findings.dedup();
    analysis.graph_stats = graph.stats.clone();
    analysis.timings_ms = vec![
        ("determinism".to_string(), determinism_ms),
        ("panic-path".to_string(), panic_ms),
        ("lock-order".to_string(), lock_ms),
        ("shim-hygiene".to_string(), shim_ms),
        ("error-swallow".to_string(), swallow_ms),
        ("callgraph".to_string(), callgraph_ms),
        ("taint".to_string(), taint_ms),
        ("blocking-hot-path".to_string(), blocking_ms),
    ];
    analysis
}

/// Walks a workspace rooted at `root` and runs every pass.
///
/// Scanned: `crates/*/src/**/*.rs`, `shims/*/src/**/*.rs`, and the root
/// package's `src/**/*.rs`. Test directories (`tests/`, `benches/`,
/// `examples/`) host code that is *allowed* to panic and to be
/// nondeterministic, and are not scanned; `#[cfg(test)]` modules inside
/// scanned files are stripped before linting.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let t0 = Instant::now();
    let sources = workspace_sources(root)?;
    // Each file parses once, independently: a small worker pool pulls from a
    // shared index and the results are re-sorted by index, so the file order
    // (and therefore every pass's output) stays deterministic.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
        .min(sources.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut parsed: Vec<(usize, std::io::Result<SourceFile>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some((rel, crate_name)) = sources.get(i) else {
                            break;
                        };
                        let parsed = std::fs::read(root.join(rel)).map(|src| {
                            let rel_str = rel
                                .to_string_lossy()
                                .replace(std::path::MAIN_SEPARATOR, "/");
                            SourceFile::parse(rel_str, crate_name.as_str(), &src)
                        });
                        out.push((i, parsed));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parse worker panicked"))
            .collect()
    });
    parsed.sort_by_key(|&(i, _)| i);
    let mut files = Vec::with_capacity(parsed.len());
    for (_, file) in parsed {
        files.push(file?);
    }
    let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut analysis = analyze_files(files);
    analysis
        .timings_ms
        .insert(0, ("parse".to_string(), parse_ms));
    Ok(analysis)
}

/// Lists `(relative path, crate name)` for every source file to scan,
/// sorted for deterministic output.
fn workspace_sources(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    for (dir, prefix) in [("crates", ""), ("shims", "shim:")] {
        let dir_path = root.join(dir);
        if !dir_path.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&dir_path)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let crate_name = format!("{prefix}{}", entry.file_name().to_string_lossy());
            let src_dir = entry.path().join("src");
            if src_dir.is_dir() {
                collect_rs(&src_dir, root, &crate_name, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, "rddr-repro", &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<(PathBuf, String)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push((rel, crate_name.to_string()));
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_keys_roundtrip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_key(lint.key()), Some(lint));
        }
        assert_eq!(Lint::from_key("nope"), None);
    }

    #[test]
    fn every_pass_and_taint_have_explanations() {
        for lint in Lint::ALL {
            assert!(
                EXPLANATIONS.iter().any(|(k, _)| *k == lint.key()),
                "missing --explain for {lint}"
            );
        }
        assert!(EXPLANATIONS.iter().any(|(k, _)| *k == "taint"));
    }

    #[test]
    fn analyze_source_applies_crate_targeting() {
        let src = b"use std::collections::HashMap;\nfn f() { x.unwrap(); }";
        // `core` is a determinism target but not a panic-path target.
        let core = analyze_source("demo.rs", "core", src);
        assert!(core.iter().all(|f| f.lint == Lint::Determinism), "{core:?}");
        // `proxy` is the reverse.
        let proxy = analyze_source("demo.rs", "proxy", src);
        assert!(proxy.iter().all(|f| f.lint == Lint::PanicPath), "{proxy:?}");
    }

    #[test]
    fn shims_are_exempt_from_shim_hygiene() {
        let src = b"use std::sync::mpsc;";
        assert!(analyze_source("demo.rs", "shim:crossbeam", src).is_empty());
        assert!(!analyze_source("demo.rs", "orchestra", src).is_empty());
    }

    #[test]
    fn analyze_files_times_every_stage() {
        let analysis = analyze_files(vec![SourceFile::parse(
            "crates/demo/src/lib.rs",
            "demo",
            b"fn f() {}",
        )]);
        let names: Vec<&str> = analysis
            .timings_ms
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        for expected in [
            "determinism",
            "panic-path",
            "lock-order",
            "shim-hygiene",
            "error-swallow",
            "callgraph",
            "taint",
            "blocking-hot-path",
        ] {
            assert!(
                names.contains(&expected),
                "missing stage {expected}: {names:?}"
            );
        }
    }

    #[test]
    fn graph_passes_run_through_analyze_source() {
        // A single-file "workspace": sleep inside the reactor worker loop is
        // caught by the graph pass even via the per-file entry point.
        let src = b"fn worker_loop() { std::thread::sleep(d); }";
        let f = analyze_source("crates/proxy/src/reactor.rs", "proxy", src);
        assert!(f.iter().any(|x| x.lint == Lint::BlockingHotPath), "{f:?}");
    }
}
