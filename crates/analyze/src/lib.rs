//! `rddr-analyze`: in-tree static analysis enforcing RDDR's operational
//! invariants across the workspace.
//!
//! RDDR's premise is that divergence between N instances signals an attack,
//! so *self-inflicted* nondeterminism manufactures false divergences, and a
//! panic in a proxy hot path turns "sever the connection gracefully" into
//! "crash the fan-out for all N instances". This crate lexes the
//! workspace's Rust sources (a lightweight token scanner in the spirit of
//! the shims — no syn, no registry access) and runs four lint passes:
//!
//! * [`determinism`] — `HashMap`/`HashSet`, wall-clock, thread-identity,
//!   and address-derived values in crates whose bytes reach the diff
//!   engine.
//! * [`panic_path`] — `unwrap()`/`expect()`/panicking macros/slice
//!   indexing in proxy, net, and telemetry hot paths.
//! * [`lock_order`] — per-crate lock-acquisition graphs; cycles are
//!   potential deadlocks.
//! * [`shim_hygiene`] — `std::` concurrency/randomness where an in-tree
//!   shim exists.
//!
//! Findings diff against a committed [`baseline::Baseline`] ratchet: new
//! violations fail, grandfathered ones are tolerated and can only shrink.
//! Suppress a deliberate site with `// rddr-analyze: allow(<lint>)` on the
//! same or preceding line.

pub mod baseline;
pub mod determinism;
pub mod lexer;
pub mod lock_order;
pub mod panic_path;
pub mod report;
pub mod shim_hygiene;
pub mod source;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use source::SourceFile;

/// The four lint passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// Nondeterminism in diff-reachable crates.
    Determinism,
    /// Panics in hot-path crates.
    PanicPath,
    /// Lock-acquisition cycles.
    LockOrder,
    /// `std::` use where a shim exists.
    ShimHygiene,
}

impl Lint {
    /// Every pass, in reporting order.
    pub const ALL: [Lint; 4] = [
        Lint::Determinism,
        Lint::PanicPath,
        Lint::LockOrder,
        Lint::ShimHygiene,
    ];

    /// The stable key used in baselines, allow-directives, and JSON.
    pub fn key(self) -> &'static str {
        match self {
            Lint::Determinism => "determinism",
            Lint::PanicPath => "panic-path",
            Lint::LockOrder => "lock-order",
            Lint::ShimHygiene => "shim-hygiene",
        }
    }

    /// Inverse of [`Lint::key`].
    pub fn from_key(key: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.key() == key)
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Which pass produced it.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(lint: Lint, file: impl Into<String>, line: u32, message: String) -> Finding {
        Finding {
            lint,
            file: file.into(),
            line,
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// The result of analyzing a workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every finding from every pass, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Findings of one pass.
    pub fn of(&self, lint: Lint) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.lint == lint)
    }
}

/// Analyzes one in-memory source file, applying every pass that targets its
/// crate (lock-order edges are cycle-checked within this file alone). The
/// workspace driver [`analyze_workspace`] merges lock graphs per crate
/// instead.
pub fn analyze_source(path: &str, crate_name: &str, src: &[u8]) -> Vec<Finding> {
    let file = SourceFile::parse(path, crate_name, src);
    let mut findings = run_file_passes(&file);
    findings.extend(lock_order::cycles(crate_name, &lock_order::edges(&file)));
    findings.sort();
    findings
}

/// The per-file passes (everything except cross-file lock-graph merging).
fn run_file_passes(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if determinism::TARGET_CRATES.contains(&file.crate_name.as_str()) {
        findings.extend(determinism::check(file));
    }
    if panic_path::TARGET_CRATES.contains(&file.crate_name.as_str()) {
        findings.extend(panic_path::check(file));
    }
    if !file.crate_name.starts_with("shim:") {
        findings.extend(shim_hygiene::check(file));
    }
    findings
}

/// Walks a workspace rooted at `root` and runs every pass.
///
/// Scanned: `crates/*/src/**/*.rs`, `shims/*/src/**/*.rs`, and the root
/// package's `src/**/*.rs`. Test directories (`tests/`, `benches/`,
/// `examples/`) host code that is *allowed* to panic and to be
/// nondeterministic, and are not scanned; `#[cfg(test)]` modules inside
/// scanned files are stripped before linting.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut analysis = Analysis::default();
    let mut lock_edges: BTreeMap<String, Vec<lock_order::LockEdge>> = BTreeMap::new();
    for (rel, crate_name) in workspace_sources(root)? {
        let src = std::fs::read(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let file = SourceFile::parse(rel_str, crate_name.clone(), &src);
        analysis.files_scanned += 1;
        analysis.findings.extend(run_file_passes(&file));
        lock_edges
            .entry(crate_name)
            .or_default()
            .extend(lock_order::edges(&file));
    }
    for (crate_name, edges) in &lock_edges {
        analysis
            .findings
            .extend(lock_order::cycles(crate_name, edges));
    }
    analysis.findings.sort();
    Ok(analysis)
}

/// Lists `(relative path, crate name)` for every source file to scan,
/// sorted for deterministic output.
fn workspace_sources(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    for (dir, prefix) in [("crates", ""), ("shims", "shim:")] {
        let dir_path = root.join(dir);
        if !dir_path.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&dir_path)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let crate_name = format!("{prefix}{}", entry.file_name().to_string_lossy());
            let src_dir = entry.path().join("src");
            if src_dir.is_dir() {
                collect_rs(&src_dir, root, &crate_name, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, "rddr-repro", &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<(PathBuf, String)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push((rel, crate_name.to_string()));
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_keys_roundtrip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_key(lint.key()), Some(lint));
        }
        assert_eq!(Lint::from_key("nope"), None);
    }

    #[test]
    fn analyze_source_applies_crate_targeting() {
        let src = b"use std::collections::HashMap;\nfn f() { x.unwrap(); }";
        // `core` is a determinism target but not a panic-path target.
        let core = analyze_source("demo.rs", "core", src);
        assert!(core.iter().all(|f| f.lint == Lint::Determinism), "{core:?}");
        // `proxy` is the reverse.
        let proxy = analyze_source("demo.rs", "proxy", src);
        assert!(proxy.iter().all(|f| f.lint == Lint::PanicPath), "{proxy:?}");
    }

    #[test]
    fn shims_are_exempt_from_shim_hygiene() {
        let src = b"use std::sync::mpsc;";
        assert!(analyze_source("demo.rs", "shim:crossbeam", src).is_empty());
        assert!(!analyze_source("demo.rs", "orchestra", src).is_empty());
    }
}
