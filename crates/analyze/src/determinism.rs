//! Determinism pass: crates whose bytes reach the diff engine must not
//! manufacture divergence. Flags iteration-order-unstable containers
//! (`HashMap`/`HashSet`), wall-clock reads (`SystemTime`), thread-identity
//! values (`ThreadId`, `thread::current()`), and pointer-address-derived
//! integers — each of which differs between the N instances (or between
//! runs) for reasons that have nothing to do with an attack.

use crate::source::SourceFile;
use crate::{Finding, Lint};

/// Crates whose output bytes feed the diff engine, so any self-inflicted
/// nondeterminism manufactures false divergences.
pub const TARGET_CRATES: &[&str] = &[
    "core",
    "protocols",
    "pgsim",
    "pgstore",
    "httpsim",
    "libsim",
    "fuzz",
];

/// Runs the pass over one prepared file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    let mut push = |line: u32, message: String| {
        if !file.allowed(Lint::Determinism, line) {
            findings.push(Finding::new(Lint::Determinism, &file.path, line, message));
        }
    };
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "HashMap" | "HashSet" => push(
                t.line,
                format!(
                    "`{}` has nondeterministic iteration order; use BTreeMap/BTreeSet \
                     or sort before iterating",
                    t.text
                ),
            ),
            "SystemTime" => push(
                t.line,
                "`SystemTime` is a wall-clock read; instances disagree on it".to_string(),
            ),
            "ThreadId" => push(
                t.line,
                "`ThreadId` is a per-process value; instances disagree on it".to_string(),
            ),
            "current"
                if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') && {
                    // `thread::current()` (possibly `std::thread::current()`).
                    i >= 3 && toks[i - 3].is_ident("thread")
                } =>
            {
                push(
                    t.line,
                    "`thread::current()` exposes thread identity; instances disagree on it"
                        .to_string(),
                )
            }
            // `… as *const T as usize` / `as *mut T as u64`: an address-derived
            // integer, different under ASLR in every instance.
            "as" if toks.get(i + 1).is_some_and(|n| n.is_punct('*'))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("const") || n.is_ident("mut")) =>
            {
                let horizon = (i + 3)..(i + 10).min(toks.len().saturating_sub(1));
                for j in horizon {
                    if toks[j].is_ident("as")
                        && toks
                            .get(j + 1)
                            .is_some_and(|n| matches!(n.text.as_str(), "usize" | "u64" | "u32"))
                    {
                        push(
                            t.line,
                            "pointer cast to integer derives a value from an address; \
                             addresses differ per instance (ASLR)"
                                .to_string(),
                        );
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("demo.rs", "core", src.as_bytes()))
    }

    #[test]
    fn hashmap_is_flagged() {
        let f = run(
            "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) { for _ in m.iter() {} }",
        );
        assert_eq!(f.len(), 2, "import and type use both flagged: {f:?}");
    }

    #[test]
    fn btreemap_is_clean() {
        assert!(run("use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u8, u8>) {}").is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let f = run(
            "// rddr-analyze: allow(determinism)\nfn f(m: &HashSet<u8>) {}\nfn g(m: &HashSet<u8>) {}",
        );
        assert_eq!(f.len(), 1, "only the unsuppressed line remains: {f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn wall_clock_and_thread_identity_are_flagged() {
        let f = run("fn f() { let t = std::time::SystemTime::now(); let id = std::thread::current().id(); }");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn address_derived_value_is_flagged() {
        let f = run("fn f(x: &u8) -> usize { x as *const u8 as usize }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("ASLR"));
    }

    #[test]
    fn plain_casts_are_clean() {
        assert!(run("fn f(x: u8) -> usize { x as usize }").is_empty());
    }

    #[test]
    fn strings_mentioning_hashmap_are_clean() {
        assert!(run(r#"fn f() { let s = "HashMap"; }"#).is_empty());
    }
}
