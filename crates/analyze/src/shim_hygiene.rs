//! Shim-hygiene pass: the workspace vendors its concurrency primitives as
//! in-tree shims (`crossbeam` channels, `parking_lot` locks, `rand`), so
//! the real deployment can swap one implementation point. Reaching around
//! them to `std` re-opens the very surface the shims centralize. Flags
//! `use std::sync::mpsc` (crossbeam shim exists), `use std::sync::{Mutex,
//! RwLock, Condvar}` (parking_lot shim exists), and `RandomState` (hidden
//! per-process randomness — also a determinism hazard).

use crate::source::SourceFile;
use crate::{Finding, Lint};

/// Runs the pass over one prepared file. `shims/` itself is exempt (the
/// shims are *implemented* on std); the driver never calls this for them.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    let mut push = |line: u32, message: String| {
        if !file.allowed(Lint::ShimHygiene, line) {
            findings.push(Finding::new(Lint::ShimHygiene, &file.path, line, message));
        }
    };
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("RandomState") {
            push(
                t.line,
                "`RandomState` seeds hashing from process randomness; deterministic \
                 code must not depend on it"
                    .to_string(),
            );
        }
        if t.is_ident("use") {
            // Collect the idents of this use-statement (through the `;`).
            let start = i;
            let mut names: Vec<(&str, u32)> = Vec::new();
            while i < toks.len() && !toks[i].is_punct(';') {
                if toks[i].kind == crate::lexer::TokenKind::Ident {
                    names.push((toks[i].text.as_str(), toks[i].line));
                }
                i += 1;
            }
            let has = |n: &str| names.iter().any(|&(s, _)| s == n);
            let line_of = |n: &str| {
                names
                    .iter()
                    .find(|&&(s, _)| s == n)
                    .map_or(toks[start].line, |&(_, l)| l)
            };
            if has("std") && has("mpsc") {
                push(
                    line_of("mpsc"),
                    "`std::sync::mpsc` bypasses the crossbeam shim; use \
                     `crossbeam::channel` instead"
                        .to_string(),
                );
            }
            if has("std") && has("sync") {
                for name in ["Mutex", "RwLock", "Condvar"] {
                    if has(name) {
                        push(
                            line_of(name),
                            format!(
                                "`std::sync::{name}` bypasses the parking_lot shim; use \
                                 `parking_lot::{name}` instead"
                            ),
                        );
                    }
                }
            }
        }
        i += 1;
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("demo.rs", "demo", src.as_bytes()))
    }

    #[test]
    fn std_mpsc_import_is_flagged() {
        let f = run("use std::sync::mpsc::channel;");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("crossbeam"));
    }

    #[test]
    fn crossbeam_import_is_clean() {
        assert!(run("use crossbeam::channel::unbounded;").is_empty());
    }

    #[test]
    fn std_mutex_in_brace_group_is_flagged() {
        let f = run("use std::sync::{Arc, Mutex};");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("parking_lot"));
    }

    #[test]
    fn arc_and_atomics_are_clean() {
        assert!(
            run("use std::sync::Arc;\nuse std::sync::atomic::{AtomicBool, Ordering};").is_empty()
        );
    }

    #[test]
    fn parking_lot_import_is_clean() {
        assert!(run("use parking_lot::{Mutex, RwLock};").is_empty());
    }

    #[test]
    fn random_state_is_flagged() {
        let f = run("fn f() { let s = std::collections::hash_map::RandomState::new(); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "// Condvar has no shim equivalent here. rddr-analyze: allow(shim-hygiene)\nuse std::sync::{Condvar, Mutex};";
        let f = run(src);
        assert!(f.is_empty(), "{f:?}");
    }
}
