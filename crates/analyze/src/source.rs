//! The analyzed view of one source file: its token stream with test-only
//! code removed, suppression directives, and precomputed brace matching.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};
use crate::Lint;

/// One `.rs` file prepared for the lint passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Crate the file belongs to (directory under `crates/` or `shims/`,
    /// or `rddr-repro` for the root `src/`).
    pub crate_name: String,
    /// Tokens with `#[cfg(test)]` items removed.
    pub tokens: Vec<Token>,
    /// Lines on which each lint is suppressed via
    /// `// rddr-analyze: allow(<lint>)` (the directive covers its own line
    /// and the following line).
    allow: BTreeMap<u32, BTreeSet<Lint>>,
    /// `close[i]` = index of the token closing the brace opened at token `i`.
    close: BTreeMap<usize, usize>,
}

impl SourceFile {
    /// Lexes and prepares `src` as file `path` in `crate_name`.
    pub fn parse(path: impl Into<String>, crate_name: impl Into<String>, src: &[u8]) -> SourceFile {
        let raw = lex(src);
        let allow = collect_allows(&raw);
        let tokens = strip_test_items(raw);
        let close = match_braces(&tokens);
        SourceFile {
            path: path.into(),
            crate_name: crate_name.into(),
            tokens,
            allow,
            close,
        }
    }

    /// Whether `lint` findings on `line` are suppressed by an allow comment
    /// on the same or the preceding line.
    pub fn allowed(&self, lint: Lint, line: u32) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allow.get(l).is_some_and(|s| s.contains(&lint)))
    }

    /// Index of the token closing the brace opened at token index `open`,
    /// or the end of the stream for unbalanced input.
    pub fn close_of(&self, open: usize) -> usize {
        self.close.get(&open).copied().unwrap_or(self.tokens.len())
    }
}

/// Parses `rddr-analyze: allow(a, b)` directives out of line comments.
fn collect_allows(tokens: &[Token]) -> BTreeMap<u32, BTreeSet<Lint>> {
    let mut map: BTreeMap<u32, BTreeSet<Lint>> = BTreeMap::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let Some(rest) = t.text.split("rddr-analyze:").nth(1) else {
            continue;
        };
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        for name in rest[open + "allow(".len()..open + close].split(',') {
            if let Some(lint) = Lint::from_key(name.trim()) {
                map.entry(t.line).or_default().insert(lint);
            }
        }
    }
    map
}

/// Removes every item annotated `#[cfg(test)]` (typically the `mod tests`
/// block): panics and nondeterminism in test-only code are not hot-path
/// violations. The attribute, the item's tokens through its closing brace
/// (or terminating `;`), and everything between are dropped.
fn strip_test_items(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            i += 7; // past `# [ cfg ( test ) ]`
            i = skip_item(&tokens, i);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.len() >= i + 7
        && tokens[i].is_punct('#')
        && tokens[i + 1].is_punct('[')
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct('(')
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(')')
        && tokens[i + 6].is_punct(']')
}

/// Advances past one item: through the matching `}` of its first brace
/// block, or past a `;` reached before any brace opens.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item (e.g. `#[allow(...)]`).
    while i < tokens.len() && tokens[i].is_punct('#') {
        i += 1;
        if i < tokens.len() && tokens[i].is_punct('[') {
            let mut depth = 1;
            i += 1;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct('[') {
                    depth += 1;
                } else if tokens[i].is_punct(']') {
                    depth -= 1;
                }
                i += 1;
            }
        }
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Maps each `{` token index to its matching `}` index.
fn match_braces(tokens: &[Token]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                map.insert(open, i);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_stripped() {
        let src = b"fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\nfn after() {}";
        let f = SourceFile::parse("a.rs", "demo", src);
        let unwraps = f.tokens.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 1, "test-module unwrap removed");
        assert!(f.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn cfg_test_with_extra_attributes_is_stripped() {
        let src = b"#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn keep() {}";
        let f = SourceFile::parse("a.rs", "demo", src);
        assert!(!f.tokens.iter().any(|t| t.is_ident("t")));
        assert!(f.tokens.iter().any(|t| t.is_ident("keep")));
    }

    #[test]
    fn cfg_test_use_statement_is_stripped() {
        let src = b"#[cfg(test)]\nuse std::sync::mpsc;\nfn keep() {}";
        let f = SourceFile::parse("a.rs", "demo", src);
        assert!(!f.tokens.iter().any(|t| t.is_ident("mpsc")));
        assert!(f.tokens.iter().any(|t| t.is_ident("keep")));
    }

    #[test]
    fn allow_directive_covers_its_line_and_the_next() {
        let src = b"// rddr-analyze: allow(panic-path, determinism)\nfn f() {}\nfn g() {}";
        let f = SourceFile::parse("a.rs", "demo", src);
        assert!(f.allowed(Lint::PanicPath, 1));
        assert!(f.allowed(Lint::PanicPath, 2));
        assert!(f.allowed(Lint::Determinism, 2));
        assert!(!f.allowed(Lint::PanicPath, 3));
        assert!(!f.allowed(Lint::LockOrder, 2));
    }

    #[test]
    fn brace_matching() {
        let f = SourceFile::parse("a.rs", "demo", b"fn f() { if x { y } }");
        let first_open = f.tokens.iter().position(|t| t.is_punct('{')).unwrap();
        let close = f.close_of(first_open);
        assert!(f.tokens[close].is_punct('}'));
        assert_eq!(close, f.tokens.len() - 1);
    }
}
