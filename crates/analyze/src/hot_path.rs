//! Blocking-in-hot-path pass: the proxy's per-exchange loops fan one client
//! request out to N instances and race their responses under a deadline. A
//! `thread::sleep` (or an unbounded drain like `read_to_end`) anywhere on
//! that path stalls *every* instance's exchange at once — latency the
//! engine then misattributes to stragglers. This pass walks the
//! [`CallGraph`] from the per-exchange entry points and flags blocking
//! calls in everything they can reach.
//!
//! Bounded waits (`recv_timeout`, `wait_timeout`, reads against a stream
//! with a read deadline) are the sanctioned tools and are not flagged.

use crate::callgraph::CallGraph;
use crate::source::SourceFile;
use crate::{Finding, Lint};

/// Call-graph id prefixes of the per-exchange hot paths. Since the reactor
/// rewrite every session (incoming and outgoing) runs inside the shared
/// worker loop, so a single entry covers them all: the `SessionTask` trait
/// dispatch fans out from `worker_loop` to every session's `init`/`step`.
pub const ENTRY_POINTS: &[&str] = &["proxy::reactor::worker_loop"];

/// Blocking calls with no deadline. `sleep` covers `std::thread::sleep` and
/// the shims' re-exports; `read_to_end`/`read_to_string` drain until EOF
/// (unbounded on a live socket); `park` blocks until an unpark that may
/// never come.
const BLOCKING_CALLS: &[&str] = &["sleep", "read_to_end", "read_to_string", "park"];

/// Runs the pass: `files` must be the slice `graph` was built over.
pub fn check(graph: &CallGraph, files: &[SourceFile]) -> Vec<Finding> {
    let entries = graph.matching(ENTRY_POINTS);
    let pred = graph.reachable(&entries);
    let mut findings = Vec::new();
    for &node in pred.keys() {
        let n = &graph.nodes[node];
        if n.crate_name.starts_with("shim:") {
            continue;
        }
        for span in &n.spans {
            let Some(file) = files.get(span.file) else {
                continue;
            };
            let toks = &file.tokens;
            for i in span.start..span.end.min(toks.len()) {
                // Spawned closures are holes: their blocking calls belong to
                // the closure's own node (reached via the spawn edge).
                if !span.covers(i) {
                    continue;
                }
                let t = &toks[i];
                if !BLOCKING_CALLS.contains(&t.text.as_str())
                    || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    continue;
                }
                if file.allowed(Lint::BlockingHotPath, t.line) {
                    continue;
                }
                findings.push(Finding::new(
                    Lint::BlockingHotPath,
                    &file.path,
                    t.line,
                    format!(
                        "`{}` blocks without a deadline in `{}`, reachable from the \
                         per-exchange path {}; use a bounded wait",
                        t.text,
                        n.id,
                        graph.chain(&pred, node)
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, crate_name, src.as_bytes())
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        let graph = CallGraph::build(&files);
        check(&graph, &files)
    }

    #[test]
    fn sleep_in_worker_loop_is_flagged() {
        let findings = run(vec![parse(
            "crates/proxy/src/reactor.rs",
            "proxy",
            "fn worker_loop() { std::thread::sleep(d); }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, Lint::BlockingHotPath);
        assert!(findings[0].message.contains("sleep"), "{findings:?}");
    }

    #[test]
    fn sleep_reached_through_a_helper_is_flagged_with_the_chain() {
        let findings = run(vec![parse(
            "crates/proxy/src/reactor.rs",
            "proxy",
            "fn worker_loop() { backoff(); }\nfn backoff() { std::thread::sleep(d); }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0]
                .message
                .contains("proxy::reactor::worker_loop -> proxy::reactor::backoff"),
            "{findings:?}"
        );
    }

    #[test]
    fn sleep_in_a_session_step_is_flagged_via_trait_dispatch() {
        // The reactor invokes sessions through `SessionTask::step`; the
        // trait-impl map must carry the entry point into every impl body.
        let findings = run(vec![
            parse(
                "crates/proxy/src/reactor.rs",
                "proxy",
                "trait SessionTask { fn step(&mut self); }\n\
                 fn worker_loop(task: &mut dyn SessionTask) { task.step(); }",
            ),
            parse(
                "crates/proxy/src/incoming.rs",
                "proxy",
                "impl SessionTask for InSession { fn step(&mut self) { std::thread::sleep(d); } }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("proxy::reactor::worker_loop"),
            "{findings:?}"
        );
    }

    #[test]
    fn sleep_off_the_exchange_path_is_clean() {
        // `main`'s idle loop and test scaffolding never serve an exchange.
        let findings = run(vec![parse(
            "crates/proxy/src/bin/rddr.rs",
            "proxy",
            "fn main() { std::thread::sleep(d); }\nfn worker_loop() {}",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn bounded_waits_are_clean() {
        let findings = run(vec![parse(
            "crates/proxy/src/reactor.rs",
            "proxy",
            "fn worker_loop() { rx.recv_timeout(d); cv.wait_timeout(g, d); }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_comment_suppresses() {
        let findings = run(vec![parse(
            "crates/proxy/src/reactor.rs",
            "proxy",
            "fn worker_loop() {\n    // paced probe. rddr-analyze: allow(blocking-hot-path)\n    std::thread::sleep(d);\n}",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
