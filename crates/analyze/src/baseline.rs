//! The baseline ratchet: grandfathered violation counts, committed as
//! `analyze-baseline.toml`.
//!
//! The file maps `(lint, file)` to the number of findings tolerated there.
//! A run **fails** only where the current count *exceeds* the baseline —
//! new violations can't land. Where the current count is *below* the
//! baseline the run still passes but reports the improvement; regenerating
//! with `--write-baseline` ratchets the ceiling down, so grandfathered
//! counts can only shrink over time.
//!
//! The format is the TOML subset below (hand-parsed — the analyzer is
//! dependency-free):
//!
//! ```toml
//! [panic-path]
//! "crates/net/src/tcp.rs" = 5
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::{Finding, Lint};

/// Violation ceilings keyed by `(lint, file)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(Lint, String), usize>,
}

/// One `(lint, file)` whose current count differs from its baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// The lint pass.
    pub lint: Lint,
    /// Workspace-relative file.
    pub file: String,
    /// Findings in the current run.
    pub current: usize,
    /// Ceiling recorded in the baseline.
    pub baseline: usize,
}

/// The outcome of diffing a run against the baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// `(lint, file)` pairs over their ceiling, with the offending findings.
    pub regressions: Vec<(Delta, Vec<Finding>)>,
    /// `(lint, file)` pairs now under their ceiling (ratchet can tighten).
    pub improvements: Vec<Delta>,
}

impl RatchetReport {
    /// Whether the run introduces no new violations.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl Baseline {
    /// An empty baseline (every finding is a new violation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the baseline that exactly matches `findings`.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<(Lint, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.lint, f.file.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Total tolerated violations for `lint`.
    pub fn total(&self, lint: Lint) -> usize {
        self.counts
            .iter()
            .filter(|((l, _), _)| *l == lint)
            .map(|(_, n)| n)
            .sum()
    }

    /// Parses the TOML subset. Unknown sections are preserved errors;
    /// malformed lines report their number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts = BTreeMap::new();
        let mut section: Option<Lint> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(
                    Lint::from_key(name.trim())
                        .ok_or_else(|| format!("line {}: unknown lint [{name}]", idx + 1))?,
                );
                continue;
            }
            let Some(lint) = section else {
                return Err(format!("line {}: entry before any [lint] section", idx + 1));
            };
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `\"file\" = count`", idx + 1))?;
            let file = key.trim().trim_matches('"').to_string();
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad count {}", idx + 1, value.trim()))?;
            counts.insert((lint, file), count);
        }
        Ok(Baseline { counts })
    }

    /// Loads from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Serializes in the format [`Baseline::parse`] reads, sorted for
    /// byte-stable output.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# rddr-analyze baseline — grandfathered violation ceilings.\n\
             # Regenerate with `cargo run --release -p rddr-analyze -- --write-baseline`;\n\
             # counts may only shrink (new violations fail CI).\n",
        );
        for lint in Lint::ALL {
            let entries: Vec<_> = self
                .counts
                .iter()
                .filter(|((l, _), n)| *l == lint && **n > 0)
                .collect();
            if entries.is_empty() {
                continue;
            }
            let _ = write!(out, "\n[{}]\n", lint.key());
            for ((_, file), n) in entries {
                let _ = writeln!(out, "\"{file}\" = {n}");
            }
        }
        out
    }

    /// Diffs `findings` against the ceilings.
    pub fn ratchet(&self, findings: &[Finding]) -> RatchetReport {
        let mut by_key: BTreeMap<(Lint, String), Vec<Finding>> = BTreeMap::new();
        for f in findings {
            by_key
                .entry((f.lint, f.file.clone()))
                .or_default()
                .push(f.clone());
        }
        let mut report = RatchetReport::default();
        for ((lint, file), fs) in &by_key {
            let ceiling = self
                .counts
                .get(&(*lint, file.clone()))
                .copied()
                .unwrap_or(0);
            let delta = Delta {
                lint: *lint,
                file: file.clone(),
                current: fs.len(),
                baseline: ceiling,
            };
            if fs.len() > ceiling {
                report.regressions.push((delta, fs.clone()));
            } else if fs.len() < ceiling {
                report.improvements.push(delta);
            }
        }
        // Files that went fully clean still allow tightening.
        for ((lint, file), &ceiling) in &self.counts {
            if ceiling > 0 && !by_key.contains_key(&(*lint, file.clone())) {
                report.improvements.push(Delta {
                    lint: *lint,
                    file: file.clone(),
                    current: 0,
                    baseline: ceiling,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: Lint, file: &str, line: u32) -> Finding {
        Finding::new(lint, file, line, "msg".to_string())
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            finding(Lint::PanicPath, "a.rs", 1),
            finding(Lint::PanicPath, "a.rs", 2),
            finding(Lint::Determinism, "b.rs", 3),
        ];
        let base = Baseline::from_findings(&findings);
        let reparsed = Baseline::parse(&base.render()).expect("parses");
        assert_eq!(base, reparsed);
        assert_eq!(reparsed.total(Lint::PanicPath), 2);
    }

    #[test]
    fn new_violation_regresses() {
        let base = Baseline::from_findings(&[finding(Lint::PanicPath, "a.rs", 1)]);
        let now = vec![
            finding(Lint::PanicPath, "a.rs", 1),
            finding(Lint::PanicPath, "a.rs", 9),
        ];
        let report = base.ratchet(&now);
        assert!(!report.passed());
        assert_eq!(report.regressions[0].0.current, 2);
        assert_eq!(report.regressions[0].0.baseline, 1);
    }

    #[test]
    fn shrinking_improves_without_failing() {
        let base = Baseline::from_findings(&[
            finding(Lint::PanicPath, "a.rs", 1),
            finding(Lint::PanicPath, "a.rs", 2),
            finding(Lint::LockOrder, "gone.rs", 3),
        ]);
        let report = base.ratchet(&[finding(Lint::PanicPath, "a.rs", 1)]);
        assert!(report.passed());
        assert_eq!(report.improvements.len(), 2, "{report:?}");
    }

    #[test]
    fn unknown_lint_section_errors() {
        assert!(Baseline::parse("[made-up]\n\"a.rs\" = 1").is_err());
    }

    #[test]
    fn missing_file_loads_empty() {
        let b = Baseline::load(Path::new("/nonexistent/rddr-analyze-baseline")).unwrap();
        assert_eq!(b, Baseline::new());
    }
}
