//! The `rddr-analyze` CLI.
//!
//! ```text
//! rddr-analyze [--root DIR] [--baseline FILE] [--json FILE]
//!              [--write-baseline] [--forbid-stale] [--list] [--explain PASS]
//!              [--min-dispatch-edges N] [--max-total-ms MS]
//! ```
//!
//! Exit codes: 0 clean (no new violations), 1 new violations, a failed
//! gate (`--min-dispatch-edges`, `--max-total-ms`), or — with
//! `--forbid-stale` — a stale baseline, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use rddr_analyze::baseline::Baseline;
use rddr_analyze::{analyze_workspace, find_workspace_root, report, EXPLANATIONS};

const USAGE: &str = "usage: rddr-analyze [options]
  --root DIR        workspace root (default: walk up to [workspace] Cargo.toml)
  --baseline FILE   ratchet file (default: <root>/analyze-baseline.toml)
  --json FILE       also write the machine-readable report there
  --write-baseline  regenerate the baseline from the current findings
  --forbid-stale    fail if any baseline ceiling exceeds the current count
  --list            print every finding (grandfathered ones included)
  --explain PASS    print a pass's rule and suppression syntax (`all` for every pass)
  --min-dispatch-edges N  fail unless the call graph has at least N dispatch edges
  --max-total-ms MS       fail if all passes together exceed MS milliseconds";

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
    forbid_stale: bool,
    list: bool,
    explain: Option<String>,
    min_dispatch_edges: Option<usize>,
    max_total_ms: Option<f64>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        json: None,
        write_baseline: false,
        forbid_stale: false,
        list: false,
        explain: None,
        min_dispatch_edges: None,
        max_total_ms: None,
    };
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--root" => opts.root = Some(PathBuf::from(value("--root")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
            "--write-baseline" => opts.write_baseline = true,
            "--forbid-stale" => opts.forbid_stale = true,
            "--list" => opts.list = true,
            "--explain" => opts.explain = Some(value("--explain")?),
            "--min-dispatch-edges" => {
                let v = value("--min-dispatch-edges")?;
                opts.min_dispatch_edges = Some(
                    v.parse()
                        .map_err(|_| format!("--min-dispatch-edges: `{v}` is not a count"))?,
                );
            }
            "--max-total-ms" => {
                let v = value("--max-total-ms")?;
                opts.max_total_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--max-total-ms: `{v}` is not a duration"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

/// Renders `--explain` output; `which` is a pass key or `all`.
fn explain(which: &str) -> Result<String, String> {
    if which == "all" {
        let mut out = String::new();
        for (key, text) in EXPLANATIONS {
            out.push_str(&format!("{key}\n{}\n{text}\n\n", "-".repeat(key.len())));
        }
        return Ok(out.trim_end().to_string());
    }
    EXPLANATIONS
        .iter()
        .find(|(key, _)| *key == which)
        .map(|(key, text)| format!("{key}\n{}\n{text}", "-".repeat(key.len())))
        .ok_or_else(|| {
            let known: Vec<&str> = EXPLANATIONS.iter().map(|(k, _)| *k).collect();
            format!("unknown pass `{which}` (known: {})", known.join(", "))
        })
}

fn run() -> Result<bool, String> {
    let opts = parse_args(std::env::args().skip(1))?;
    if let Some(which) = &opts.explain {
        println!("{}", explain(which)?);
        return Ok(true);
    }
    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
            find_workspace_root(&cwd).ok_or_else(|| {
                "no [workspace] Cargo.toml above the current directory".to_string()
            })?
        }
    };
    let baseline_path = opts
        .baseline
        .map(|p| if p.is_absolute() { p } else { root.join(p) })
        .unwrap_or_else(|| root.join("analyze-baseline.toml"));

    let analysis =
        analyze_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if opts.write_baseline {
        let base = Baseline::from_findings(&analysis.findings);
        std::fs::write(&baseline_path, base.render())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "rddr-analyze: wrote baseline with {} finding(s) to {}",
            analysis.findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = Baseline::load(&baseline_path)?;
    let ratchet = baseline.ratchet(&analysis.findings);
    if opts.list {
        for f in &analysis.findings {
            println!("{f}");
        }
    }
    print!("{}", report::text_summary(&analysis, &baseline, &ratchet));
    if let Some(json) = opts.json {
        let doc = report::json_document(&analysis, &baseline, &ratchet);
        std::fs::write(&json, doc).map_err(|e| format!("writing {}: {e}", json.display()))?;
    }
    let mut gates_ok = true;
    if let Some(min) = opts.min_dispatch_edges {
        let have = analysis.graph_stats.dispatch_edges;
        if have < min {
            println!(
                "GATE: call graph has {have} dispatch edge(s), gate requires at least {min} — \
                 trait-impl resolution is not seeing the workspace"
            );
            gates_ok = false;
        }
    }
    if let Some(max) = opts.max_total_ms {
        let total: f64 = analysis.timings_ms.iter().map(|(_, ms)| ms).sum();
        if total > max {
            println!(
                "GATE: passes took {total:.1}ms combined, gate allows {max:.1}ms — \
                 the analyzer must stay cheap enough for every CI run"
            );
            gates_ok = false;
        }
    }
    if !gates_ok {
        return Ok(false);
    }
    if opts.forbid_stale && !ratchet.improvements.is_empty() {
        println!(
            "STALE: {} baseline ceiling(s) exceed the current count — \
             regenerate with --write-baseline and commit the result",
            ratchet.improvements.len()
        );
        return Ok(false);
    }
    Ok(ratchet.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("rddr-analyze: {msg}\n{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
