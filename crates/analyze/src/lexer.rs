//! A lightweight Rust token scanner.
//!
//! In the spirit of the workspace's shims this is *not* a full Rust lexer —
//! it is a total function over arbitrary bytes that classifies just enough
//! structure for the lint passes: identifiers, single-byte punctuation,
//! literals (string/raw-string/byte-string/char/number), comments (kept,
//! because `// rddr-analyze: allow(...)` directives live there), and
//! lifetimes. Unterminated constructs run to end of input instead of
//! erroring; no input can make it panic (see the proptest in `tests/`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A single punctuation byte (`.`, `(`, `[`, `!`, …).
    Punct,
    /// String/char/number literal (contents not retained).
    Literal,
    /// A `// …` comment, text retained for allow-directives.
    LineComment,
    /// A `/* … */` comment (possibly nested).
    BlockComment,
    /// A `'label` lifetime.
    Lifetime,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Identifier/punctuation/comment text; empty for literals.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scans `src` into tokens. Total: never panics, consumes all input.
pub fn lex(src: &[u8]) -> Vec<Token> {
    Lexer {
        src,
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    let text = self.line_comment();
                    tokens.push(Token {
                        kind: TokenKind::LineComment,
                        text,
                        line,
                    });
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    tokens.push(Token {
                        kind: TokenKind::BlockComment,
                        text: String::new(),
                        line,
                    });
                }
                b'"' => {
                    self.string_literal();
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    tokens.push(Token {
                        kind,
                        text: String::new(),
                        line,
                    });
                }
                b'r' | b'b' if self.raw_or_byte_literal(&mut tokens, line) => {}
                b'0'..=b'9' => {
                    self.number_literal();
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
                b if is_ident_start(b) => {
                    let text = self.ident();
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                    });
                }
                _ => {
                    self.bump();
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: (b as char).to_string(),
                        line,
                    });
                }
            }
        }
        tokens
    }

    fn line_comment(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes a (nested) block comment; unterminated runs to EOF.
    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // consume "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// Consumes a `"…"` literal with `\` escapes; unterminated runs to EOF.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Distinguishes `'a'` / `'\n'` char literals from `'label` lifetimes.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // the quote
        match (self.peek(0), self.peek(1)) {
            // `'x` where x starts an identifier and the next byte is not a
            // closing quote: a lifetime label.
            (Some(b), Some(n)) if is_ident_start(b) && n != b'\'' => {
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokenKind::Lifetime
            }
            // Trailing `'x` at EOF: also a lifetime.
            (Some(b), None) if is_ident_start(b) => {
                self.bump();
                TokenKind::Lifetime
            }
            _ => {
                // Char literal: consume escapes until the closing quote or
                // end of line (bail out so a stray quote can't eat the file).
                while let Some(b) = self.peek(0) {
                    if b == b'\n' {
                        break;
                    }
                    self.bump();
                    match b {
                        b'\\' => {
                            self.bump();
                        }
                        b'\'' => break,
                        _ => {}
                    }
                }
                TokenKind::Literal
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`; returns false when the
    /// leading `r`/`b` is just an identifier (so the caller lexes it as one).
    fn raw_or_byte_literal(&mut self, tokens: &mut Vec<Token>, line: u32) -> bool {
        let mut ahead = 1;
        if self.peek(0) == Some(b'b') {
            if self.peek(1) == Some(b'\'') {
                // Byte char literal b'x'.
                self.bump();
                let kind = self.char_or_lifetime();
                tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                });
                return true;
            }
            if self.peek(1) == Some(b'"') {
                self.bump();
                self.string_literal();
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                return true;
            }
            if self.peek(1) == Some(b'r') {
                ahead = 2;
            } else {
                return false;
            }
        }
        // At `r` (ahead-1 bytes consumed conceptually): count hashes.
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some(b'"') {
            // `r#ident` is a raw identifier: one Ident token. The text keeps
            // the `r#` prefix so `r#fn` can't spoof the `fn` keyword to the
            // fn-parser in `callgraph`.
            if ahead == 1 && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                self.bump(); // r
                self.bump(); // #
                let rest = self.ident();
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: format!("r#{rest}"),
                    line,
                });
                return true;
            }
            return false; // plain identifier starting with r/br
        }
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        // Scan for `"` followed by `hashes` hashes.
        'scan: while let Some(b) = self.bump() {
            if b == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        tokens.push(Token {
            kind: TokenKind::Literal,
            text: String::new(),
            line,
        });
        true
    }

    fn number_literal(&mut self) {
        // Numbers, including suffixes and underscores (0xFF_u8, 1.5e-3).
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                // Stop `1..n` range syntax from being eaten as a float.
                if b == b'.' && self.peek(1) == Some(b'.') {
                    break;
                }
                self.bump();
            } else if (b == b'+' || b == b'-')
                && matches!(
                    self.src.get(self.pos.wrapping_sub(1)),
                    Some(b'e') | Some(b'E')
                )
            {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn scans_idents_and_puncts() {
        let toks = lex(b"let x = map.iter();");
        assert!(toks.iter().any(|t| t.is_ident("iter")));
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn string_contents_are_not_idents() {
        assert_eq!(idents(r#"let s = "HashMap unwrap";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        assert_eq!(
            idents(r##"let s = r#"unwrap() "quoted""#;"##),
            vec!["let", "s"]
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(
            idents(r#"let s = b"unwrap"; let c = b'u';"#),
            vec!["let", "s", "let", "c"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex(b"fn f<'a>(x: &'a str) {}");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
    }

    #[test]
    fn char_literal_with_escape() {
        let toks = lex(br"let c = '\n'; let q = '\''; m.lock()");
        assert!(toks.iter().any(|t| t.is_ident("lock")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* outer /* inner */ still */ fn"), vec!["fn"]);
    }

    #[test]
    fn line_comment_text_is_kept_with_line_numbers() {
        let toks = lex(b"fn a() {}\n// rddr-analyze: allow(panic-path)\nfn b() {}");
        let c = toks
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .expect("comment token");
        assert!(c.text.contains("allow(panic-path)"));
        assert_eq!(c.line, 2);
    }

    #[test]
    fn raw_identifier_is_one_token_and_no_spurious_keyword() {
        let toks = lex(b"let r#fn = 1; r#while();");
        assert!(
            toks.iter().any(|t| t.is_ident("r#fn")),
            "raw ident kept whole: {toks:?}"
        );
        assert!(
            !toks.iter().any(|t| t.is_ident("fn") || t.is_ident("while")),
            "no spoofed keywords: {toks:?}"
        );
        assert!(!toks.iter().any(|t| t.is_punct('#')), "{toks:?}");
    }

    #[test]
    fn raw_ident_lookalikes_still_lex_totally() {
        // `r#1` and `r##x` are not raw identifiers; they fall back to
        // ident + punct tokens rather than being swallowed.
        let toks = lex(b"r#1 r##x");
        assert!(toks.iter().any(|t| t.is_ident("r")));
        assert!(toks.iter().any(|t| t.is_punct('#')));
    }

    #[test]
    fn unterminated_constructs_run_to_eof() {
        for src in [&b"\"never closed"[..], b"/* never closed", b"r#\"raw", b"'"] {
            let _ = lex(src); // must not panic or loop forever
        }
    }

    #[test]
    fn number_range_is_two_tokens_not_a_float() {
        let toks = lex(b"for i in 0..10 {}");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }
}
