//! Interprocedural determinism taint: nondeterminism *sources* anywhere in
//! the workspace are flagged when a diff-reaching *sink* can call into them.
//!
//! The per-file [`crate::determinism`] pass blankets the crates whose bytes
//! feed the diff engine directly. This pass closes the gap it leaves: a
//! helper in any *other* crate (net, telemetry, orchestra, …) that leaks
//! `HashMap` order or wall-clock time into a value is invisible to the
//! token lint — until a sink's call chain reaches it. Sinks are where bytes
//! become diff input: signature/diff construction in `rddr-core` and the
//! per-exchange response paths in `rddr-proxy`. The pass walks the
//! [`CallGraph`] from every sink, and any reached function containing a
//! source pattern is reported (under the `determinism` lint key, so the
//! existing baseline schema and `allow(determinism)` suppressions apply),
//! with the call chain that makes it diff-reaching.
//!
//! Crates already blanket-covered by the token pass are skipped here —
//! every source in them is flagged regardless of reachability, and
//! double-reporting would double the baseline counts. Shims are skipped
//! too: they *implement* randomness and clocks on std by design.

use crate::callgraph::CallGraph;
use crate::source::SourceFile;
use crate::{determinism, Finding, Lint};

/// Call-graph id prefixes whose functions are diff-reaching sinks:
/// signature/diff construction in core, and the reactor worker loop that
/// runs every proxy session (incoming and outgoing reached through
/// `SessionTask` dispatch) since the readiness-driven rewrite.
pub const SINKS: &[&str] = &[
    "core::signature",
    "core::diff",
    "core::denoise",
    "proxy::reactor::worker_loop",
];

/// One nondeterminism source occurrence inside a function body.
struct SourceSite {
    line: u32,
    what: &'static str,
}

/// Runs the pass: `files` must be the slice `graph` was built over.
pub fn check(graph: &CallGraph, files: &[SourceFile]) -> Vec<Finding> {
    let sinks = graph.matching(SINKS);
    let pred = graph.reachable(&sinks);
    let mut findings = Vec::new();
    for &node in pred.keys() {
        let n = &graph.nodes[node];
        if n.crate_name.starts_with("shim:")
            || determinism::TARGET_CRATES.contains(&n.crate_name.as_str())
        {
            continue;
        }
        for span in &n.spans {
            let Some(file) = files.get(span.file) else {
                continue;
            };
            for site in source_sites(file, span) {
                if file.allowed(Lint::Determinism, site.line) {
                    continue;
                }
                findings.push(Finding::new(
                    Lint::Determinism,
                    &file.path,
                    site.line,
                    format!(
                        "{} in `{}`, which is diff-reaching via {}",
                        site.what,
                        n.id,
                        graph.chain(&pred, node)
                    ),
                ));
            }
        }
    }
    findings
}

/// Token patterns that make a function's behavior differ across the N
/// instances: unstable iteration order, wall-clock, thread identity,
/// address-derived integers, and seeded-from-process hashing. Spawned
/// closures are holes in their parent's span — their sites belong to the
/// closure's own node.
fn source_sites(file: &SourceFile, span: &crate::callgraph::FnSpan) -> Vec<SourceSite> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in span.start..span.end.min(toks.len()) {
        if !span.covers(i) {
            continue;
        }
        let t = &toks[i];
        let what = match t.text.as_str() {
            "HashMap" => Some("`HashMap` iteration order is nondeterministic"),
            "HashSet" => Some("`HashSet` iteration order is nondeterministic"),
            "SystemTime" => Some("`SystemTime` reads the wall clock"),
            "ThreadId" => Some("`ThreadId` is a per-process value"),
            "RandomState" => Some("`RandomState` seeds from process randomness"),
            "current"
                if i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("thread") =>
            {
                Some("`thread::current()` exposes thread identity")
            }
            "as" if toks.get(i + 1).is_some_and(|n| n.is_punct('*'))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("const") || n.is_ident("mut")) =>
            {
                let horizon = (i + 3)..(i + 10).min(toks.len().saturating_sub(1));
                let mut hit = None;
                for j in horizon {
                    if toks[j].is_ident("as")
                        && toks
                            .get(j + 1)
                            .is_some_and(|n| matches!(n.text.as_str(), "usize" | "u64" | "u32"))
                    {
                        hit =
                            Some("pointer-to-integer cast derives a value from an address (ASLR)");
                        break;
                    }
                }
                hit
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(SourceSite { line: t.line, what });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, crate_name, src.as_bytes())
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        let graph = CallGraph::build(&files);
        check(&graph, &files)
    }

    #[test]
    fn helper_reached_from_diff_sink_is_flagged() {
        let findings = run(vec![
            parse(
                "crates/core/src/diff.rs",
                "core",
                "use rddr_helper::order_leak;\npub fn diff_segments() { order_leak(); }",
            ),
            parse(
                "crates/helper/src/lib.rs",
                "helper",
                "pub fn order_leak() { let m: std::collections::HashMap<u8, u8> = Default::default(); let _ = m; }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, Lint::Determinism);
        assert!(findings[0].file.contains("helper"), "{findings:?}");
        assert!(
            findings[0].message.contains("core::diff::diff_segments"),
            "{findings:?}"
        );
    }

    #[test]
    fn unreachable_helper_is_not_flagged() {
        let findings = run(vec![
            parse(
                "crates/core/src/diff.rs",
                "core",
                "pub fn diff_segments() {}",
            ),
            parse(
                "crates/helper/src/lib.rs",
                "helper",
                "pub fn order_leak() { let m: std::collections::HashMap<u8, u8> = Default::default(); let _ = m; }",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn transitive_chain_is_reported() {
        let findings = run(vec![
            parse(
                "crates/proxy/src/reactor.rs",
                "proxy",
                "use rddr_helper::mid;\nfn worker_loop() { mid(); }",
            ),
            parse(
                "crates/helper/src/lib.rs",
                "helper",
                "pub fn mid() { deep(); }\nfn deep() { let t = std::time::SystemTime::now(); let _ = t; }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wall clock"), "{findings:?}");
        assert!(
            findings[0]
                .message
                .contains("proxy::reactor::worker_loop -> helper::mid -> helper::deep"),
            "{findings:?}"
        );
    }

    #[test]
    fn sources_in_token_pass_crates_are_left_to_that_pass() {
        // pgsim is blanket-covered by the per-file determinism pass; the
        // taint pass must not double-report it.
        let findings = run(vec![
            parse(
                "crates/core/src/diff.rs",
                "core",
                "use rddr_pgsim::leaky;\npub fn diff_segments() { leaky(); }",
            ),
            parse(
                "crates/pgsim/src/lib.rs",
                "pgsim",
                "pub fn leaky() { let m: std::collections::HashMap<u8, u8> = Default::default(); let _ = m; }",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_comment_suppresses_the_source_site() {
        let findings = run(vec![
            parse(
                "crates/core/src/diff.rs",
                "core",
                "use rddr_helper::order_leak;\npub fn diff_segments() { order_leak(); }",
            ),
            parse(
                "crates/helper/src/lib.rs",
                "helper",
                "pub fn order_leak() {\n    // rendered sorted below. rddr-analyze: allow(determinism)\n    let m: std::collections::HashMap<u8, u8> = Default::default();\n    let _ = m;\n}",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn shims_are_exempt() {
        let findings = run(vec![
            parse(
                "crates/core/src/signature.rs",
                "core",
                "use rand::entropy;\npub fn signature() { entropy(); }",
            ),
            parse(
                "shims/rand/src/lib.rs",
                "shim:rand",
                "pub fn entropy() { let s = std::collections::hash_map::RandomState::new(); let _ = s; }",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
