//! Rendering: the human summary and the machine-readable JSON document.
//!
//! The JSON mirrors the `BENCH_*.json` report style (`{"report": …,
//! "params": {…}, "rows": […]}`), hand-serialized because the analyzer is
//! dependency-free (`rddr-protocols` is itself a lint target).

use std::fmt::Write as _;

use crate::baseline::{Baseline, RatchetReport};
use crate::{Analysis, Lint};

/// Escapes a string for a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The `rddr_analyze` JSON report document.
pub fn json_document(analysis: &Analysis, baseline: &Baseline, ratchet: &RatchetReport) -> String {
    let mut out = String::from("{\"report\": \"rddr_analyze\", \"params\": {");
    let _ = write!(
        out,
        "\"files_scanned\": {}, \"passed\": {}, \"timings_ms\": {{",
        analysis.files_scanned,
        ratchet.passed()
    );
    for (i, (stage, ms)) in analysis.timings_ms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {ms:.3}", json_escape(stage));
    }
    let g = &analysis.graph_stats;
    let _ = write!(
        out,
        "}}, \"callgraph\": {{\"nodes\": {}, \"edges\": {}, \"dispatch_edges\": {}, \
         \"traits\": {}, \"impl_methods\": {}, \"closure_nodes\": {}}}",
        g.nodes, g.edges, g.dispatch_edges, g.traits, g.impl_methods, g.closure_nodes
    );
    out.push_str("}, \"rows\": [");
    for (i, lint) in Lint::ALL.into_iter().enumerate() {
        let current = analysis.of(lint).count();
        let new: usize = ratchet
            .regressions
            .iter()
            .filter(|(d, _)| d.lint == lint)
            .map(|(d, _)| d.current - d.baseline)
            .sum();
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"lint\": \"{}\", \"violations\": {current}, \"baseline\": {}, \"new\": {new}}}",
            lint.key(),
            baseline.total(lint),
        );
    }
    out.push_str("], \"new_violations\": [");
    let mut first = true;
    for (_, findings) in &ratchet.regressions {
        for f in findings {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                f.lint.key(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            );
        }
    }
    out.push_str("]}\n");
    out
}

/// The human-readable run summary.
pub fn text_summary(analysis: &Analysis, baseline: &Baseline, ratchet: &RatchetReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "rddr-analyze: scanned {} files",
        analysis.files_scanned
    );
    let g = &analysis.graph_stats;
    let _ = writeln!(
        out,
        "  call graph: {} nodes ({} closures), {} edges ({} via dispatch), \
         {} traits / {} impl methods",
        g.nodes, g.closure_nodes, g.edges, g.dispatch_edges, g.traits, g.impl_methods
    );
    for lint in Lint::ALL {
        let _ = writeln!(
            out,
            "  {:<13} {:>4} findings (baseline ceiling {})",
            lint.key(),
            analysis.of(lint).count(),
            baseline.total(lint)
        );
    }
    if !ratchet.improvements.is_empty() {
        let _ = writeln!(
            out,
            "  {} file(s) below their baseline ceiling — run --write-baseline to ratchet down:",
            ratchet.improvements.len()
        );
        for d in &ratchet.improvements {
            let _ = writeln!(
                out,
                "    [{}] {}: {} -> {}",
                d.lint.key(),
                d.file,
                d.baseline,
                d.current
            );
        }
    }
    if ratchet.passed() {
        let _ = writeln!(out, "OK: no new violations");
    } else {
        let new_total: usize = ratchet
            .regressions
            .iter()
            .map(|(d, _)| d.current - d.baseline)
            .sum();
        let _ = writeln!(out, "FAIL: {new_total} new violation(s)");
        for (d, findings) in &ratchet.regressions {
            let _ = writeln!(
                out,
                "  [{}] {}: {} findings, baseline allows {} — all sites:",
                d.lint.key(),
                d.file,
                d.current,
                d.baseline
            );
            for f in findings {
                let _ = writeln!(out, "    {f}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn setup() -> (Analysis, Baseline, RatchetReport) {
        let findings = vec![
            Finding::new(Lint::PanicPath, "a.rs", 3, "x".into()),
            Finding::new(Lint::Determinism, "b.rs", 7, "y \"quoted\"".into()),
        ];
        let analysis = Analysis {
            findings: findings.clone(),
            files_scanned: 2,
            timings_ms: vec![("parse".into(), 0.5)],
            graph_stats: Default::default(),
        };
        let baseline = Baseline::from_findings(&findings[..1]);
        let ratchet = baseline.ratchet(&findings);
        (analysis, baseline, ratchet)
    }

    #[test]
    fn json_document_reports_new_violations() {
        let (analysis, baseline, ratchet) = setup();
        let doc = json_document(&analysis, &baseline, &ratchet);
        assert!(doc.contains("\"report\": \"rddr_analyze\""));
        assert!(doc.contains("\"passed\": false"));
        assert!(doc.contains("\\\"quoted\\\""), "escaped: {doc}");
        assert!(doc.contains("\"lint\": \"determinism\", \"violations\": 1"));
        assert!(doc.contains("\"timings_ms\": {\"parse\": 0.500}"), "{doc}");
        assert!(doc.contains("\"callgraph\": {\"nodes\": 0"), "{doc}");
    }

    #[test]
    fn text_summary_lists_regression_sites() {
        let (analysis, baseline, ratchet) = setup();
        let text = text_summary(&analysis, &baseline, &ratchet);
        assert!(text.contains("FAIL: 1 new violation(s)"), "{text}");
        assert!(text.contains("b.rs:7"), "{text}");
    }

    #[test]
    fn clean_run_reports_ok() {
        let findings = vec![Finding::new(Lint::PanicPath, "a.rs", 3, "x".into())];
        let analysis = Analysis {
            findings: findings.clone(),
            files_scanned: 1,
            timings_ms: Vec::new(),
            graph_stats: Default::default(),
        };
        let baseline = Baseline::from_findings(&findings);
        let ratchet = baseline.ratchet(&findings);
        let text = text_summary(&analysis, &baseline, &ratchet);
        assert!(text.contains("OK: no new violations"), "{text}");
        assert!(json_document(&analysis, &baseline, &ratchet).contains("\"passed\": true"));
    }
}
