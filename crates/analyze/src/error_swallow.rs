//! Error-swallow pass: in the proxy and net crates, a discarded send error
//! is a silent wedge. The reader pumps, event channels, and client writes
//! are how degraded-mode state propagates; `let _ = tx.send(…)` or
//! `conn.write_all(…).ok()` at the wrong site means an instance death or a
//! half-written response is simply never observed. Flags `let _ = …` and
//! statement-terminal `.ok();` applied to fallible transmits
//! (`send`/`try_send`/`write_all`). Deliberate swallows (a close
//! notification racing teardown, fault injection truncating on purpose)
//! carry an `allow(error-swallow)` comment saying why.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::{Finding, Lint};

/// Crates whose sends carry liveness/degradation signals.
pub const TARGET_CRATES: &[&str] = &["proxy", "net"];

/// Fallible transmit calls whose `Result` must be looked at.
const TRANSMITS: &[&str] = &["send", "try_send", "write_all"];

/// Runs the pass over one prepared file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut findings = Vec::new();
    let mut push = |line: u32, message: String| {
        if !file.allowed(Lint::ErrorSwallow, line) {
            findings.push(Finding::new(Lint::ErrorSwallow, &file.path, line, message));
        }
    };
    for (i, t) in toks.iter().enumerate() {
        // `let _ = …;` where the statement contains a transmit call.
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("_"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('='))
        {
            if let Some((name, line)) = transmit_in_statement(toks, i + 3) {
                push(
                    line,
                    format!(
                        "`let _ =` discards the `{name}` result; handle the failure \
                         (sever, break the pump, or record it) instead of swallowing"
                    ),
                );
            }
        }
        // statement-terminal `….ok();` on a transmit chain.
        if t.is_ident("ok")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(';'))
        {
            if let Some(name) = transmit_before(toks, i - 1) {
                push(
                    t.line,
                    format!(
                        "`.ok()` discards the `{name}` result; handle the failure \
                         (sever, break the pump, or record it) instead of swallowing"
                    ),
                );
            }
        }
    }
    findings
}

/// Scans forward from `from` to the statement's `;`, returning the first
/// transmit call (`.send(` / `.try_send(` / `.write_all(`) found. Brace
/// blocks (closures in arguments) are scanned too: a swallowed send is a
/// swallowed send wherever it hides in the statement.
fn transmit_in_statement(toks: &[crate::lexer::Token], from: usize) -> Option<(String, u32)> {
    let mut i = from;
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return None; // enclosing block closed: statement over
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return None;
        } else if t.kind == TokenKind::Ident
            && TRANSMITS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            return Some((t.text.clone(), t.line));
        }
        i += 1;
    }
    None
}

/// Walks back from the `.` before `ok` through the method chain's tokens to
/// the start of the statement, returning the transmit call name if one is
/// chained.
fn transmit_before(toks: &[crate::lexer::Token], dot: usize) -> Option<String> {
    let mut i = dot;
    while i > 0 {
        let t = &toks[i - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.kind == TokenKind::Ident
            && TRANSMITS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 2].is_punct('.')
        {
            return Some(t.text.clone());
        }
        i -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("demo.rs", "proxy", src.as_bytes()))
    }

    #[test]
    fn let_underscore_send_is_flagged() {
        let f = run("fn f() { let _ = events.send(Closed(i)); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("send"));
    }

    #[test]
    fn let_underscore_write_all_is_flagged() {
        let f = run("fn f() { let _ = client.write_all(PAGE.as_bytes()); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("write_all"));
    }

    #[test]
    fn ok_terminated_send_is_flagged() {
        let f = run("fn f() { tx.send(msg).ok(); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn handled_sends_are_clean() {
        let f = run(
            "fn f() { if tx.send(msg).is_err() { return; } tx.send(m2)?; match tx.send(m3) { Ok(()) => {} Err(_) => {} } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unrelated_let_underscore_is_clean() {
        let f = run("fn f() { let _ = addr; let _ = t.join(); s.set_nodelay(true).ok(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn swallow_does_not_leak_across_statements() {
        // The `let _ =` statement ends before the send on the next line.
        let f = run("fn f() { let _ = n; tx.send(msg)?; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ok_mid_chain_is_not_statement_terminal() {
        // `.ok().map(...)` consumes the Option further; not a swallow site.
        let f = run("fn f() { let x = tx.send(m).ok().map(|_| 1); let _ = x; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses() {
        let f = run(
            "fn f() {\n    // close races teardown; receiver gone is fine. rddr-analyze: allow(error-swallow)\n    let _ = events.send(Closed(i));\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_target_crate_is_driver_scoped() {
        // The pass itself is crate-agnostic; the driver applies
        // TARGET_CRATES. This just documents the list.
        assert!(TARGET_CRATES.contains(&"proxy") && TARGET_CRATES.contains(&"net"));
    }
}
