//! Panic-path pass: a panic in proxy plumbing does not kill one request,
//! it kills the fan-out for all N instances (and with it RDDR's ability to
//! sever gracefully — the paper's Respond step). Hot-path crates must
//! propagate errors instead. Flags `.unwrap()`, `.expect(…)`, the panicking
//! macros, and slice/array indexing.

use crate::source::SourceFile;
use crate::{Finding, Lint};

/// Crates whose threads sit on the request hot path. The storage engine
/// qualifies: a panic inside a `PagedStore` commit takes the instance down
/// mid-exchange, which the proxy can only see as an ejection.
pub const TARGET_CRATES: &[&str] = &["proxy", "net", "telemetry", "pgstore", "fuzz"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords the lexer tokenizes as identifiers but which can legally precede
/// `[` without forming an index expression: `&mut [u8]` / `*const [u8]` slice
/// types, `for x in [..]` array literals, `return [..]`, `dyn [..]`, and
/// `let [a, ..] = …` slice patterns (irrefutable destructuring, no bounds
/// check at runtime).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "const", "dyn", "in", "return", "else", "match", "if", "while", "as", "let",
];

/// Runs the pass over one prepared file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    let mut push = |line: u32, message: String| {
        if !file.allowed(Lint::PanicPath, line) {
            findings.push(Finding::new(Lint::PanicPath, &file.path, line, message));
        }
    };
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "unwrap" | "expect"
                if i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                push(
                    t.line,
                    format!(
                        "`.{}()` panics the proxy thread; propagate the error and sever \
                         the exchange instead",
                        t.text
                    ),
                );
            }
            name if PANIC_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                push(
                    t.line,
                    format!("`{name}!` in a hot path; return an error instead"),
                );
            }
            "[" if t.is_punct('[')
                && i >= 1
                && ((toks[i - 1].kind == crate::lexer::TokenKind::Ident
                    && !NON_INDEX_KEYWORDS.contains(&toks[i - 1].text.as_str()))
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']')) =>
            {
                push(
                    t.line,
                    "slice/array indexing panics on out-of-range; use `.get()`".to_string(),
                );
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("demo.rs", "proxy", src.as_bytes()))
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let f = run("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn unwrap_or_variants_are_clean() {
        assert!(run("fn f() { x.unwrap_or_default(); y.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let f = run("fn f() { panic!(\"boom\"); unreachable!(); }");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn slice_indexing_is_flagged_but_types_and_macros_are_not() {
        // `buf[..n]` is indexing; `[0u8; 4]` is an array literal; `vec![…]`
        // is a macro invocation; `#[derive(..)]` is an attribute.
        let f = run("#[derive(Debug)]\nstruct S;\nfn f(buf: &[u8], n: usize) { let a = [0u8; 4]; let v = vec![1]; let _ = &buf[..n]; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("indexing"));
    }

    #[test]
    fn slice_type_params_and_array_iteration_are_clean() {
        // `&mut [u8]` is a type, not an index; `for … in […]` iterates an
        // array literal; `*const [u8]` is a raw slice pointer type.
        let f = run("fn f(out: &mut [u8], p: *const [u8]) { for x in [1, 2, 3] { let _ = x; } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn slice_patterns_are_clean() {
        // `let [first, ..] = arr;` destructures irrefutably — no runtime
        // bounds check, so it must not count as indexing.
        let f = run("fn f(arr: &[u8; 4]) { let [first, ..] = arr; let _ = first; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_module_panics_are_ignored() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests { #[test] fn t() { x.unwrap(); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "fn f(b: &[u8]) {\n    // index bounded by caller. rddr-analyze: allow(panic-path)\n    let _ = b[0];\n}";
        assert!(run(src).is_empty());
    }
}
