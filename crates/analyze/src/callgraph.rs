//! A workspace-wide call graph built from the token streams.
//!
//! Nodes are module-path-qualified function names (`pgsim::exec::run_select`
//! — the module path derives from the file's location under `src/` plus any
//! nested `mod name { … }` blocks). Functions that share a module and a name
//! (e.g. `new` on two types in one file) merge into one node; that
//! over-approximation is deliberate — the taint and hot-path passes want
//! reachability, and a merged node only ever *adds* paths. Closures passed
//! to spawn-like callees (`thread::spawn`, scoped `spawn`,
//! `Supervisor::register_factory`) become synthetic nodes of their own
//! (`parent::closure@LINE`) with an edge from the spawning function, and
//! their token range is a *hole* in the parent's span so findings inside the
//! closure are attributed to the closure node.
//!
//! Edges come from three call shapes, resolved in decreasing precision:
//!
//! 1. **Qualified paths** (`exec::run_select(…)`, `crate::db::tag(…)`,
//!    `rddr_pgsim::parser::parse_statement(…)`): matched against node ids by
//!    path suffix, with `crate`/`self`/`super` and the `rddr_*` package
//!    prefix normalized first.
//! 2. **Plain names** (`run_select(…)`): same module first, then a unique
//!    match in the same crate, then a unique match workspace-wide.
//! 3. **Method calls** (`.split_frames(…)`): if the name is declared by a
//!    workspace `trait` block, the call *dispatches* — it fans out to every
//!    `impl Trait for Type` body registered in the trait-impl map, provided
//!    the call's argument count matches the declaration's non-`self`
//!    parameter count (so `guard.read()` never aliases `Stream::read(buf)`).
//!    Names no workspace trait declares fall back to workspace uniqueness,
//!    minus a ubiquitous-std-name denylist (`len`, `clone`, …) — receivers
//!    are untyped at the token level, so anything more aggressive
//!    manufactures edges.
//!
//! Unresolved calls (std, shims) simply produce no edge; the passes that
//! consume the graph treat missing edges as "not reachable", which keeps
//! them quiet rather than noisy. Known imprecision is documented in
//! DESIGN.md.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Method names too generic to resolve by uniqueness: std trait methods and
/// container vocabulary that would otherwise alias unrelated workspace
/// functions onto one node. Names declared by a workspace trait (`read`,
/// `insert`, …) are *not* listed — the trait-impl map resolves those by
/// declaration + arity instead.
const UBIQUITOUS_METHODS: &[&str] = &[
    "as_mut",
    "as_ref",
    "borrow",
    "clone",
    "cmp",
    "collect",
    "contains",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "err",
    "extend",
    "flush",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "parse",
    "pop",
    "push",
    "recv",
    "remove",
    "replace",
    "retain",
    "send",
    "sort",
    "split",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "unwrap",
    "unwrap_or",
    "write",
];

/// Keywords that can precede `(` without being a call. `drop` rides along:
/// `drop(x)` is the prelude's `mem::drop`, and which `impl Drop` it runs
/// depends on `x`'s type — name resolution would link it to whatever
/// workspace `fn drop` happens to be nearest (usually the wrong one).
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "fn",
    "impl", "where", "unsafe", "dyn", "drop",
];

/// Callees whose closure argument runs on another thread (or later, on a
/// respawn): the closure becomes a synthetic node instead of being folded
/// into the caller's body.
const SPAWN_CALLEES: &[&str] = &["spawn", "register_factory"];

/// One contiguous body of a function, as token indices into its file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Index into the slice of [`SourceFile`]s the graph was built from.
    pub file: usize,
    /// Token range of the body, `{` inclusive to `}` inclusive.
    pub start: usize,
    /// End of the body (exclusive token index).
    pub end: usize,
    /// Line of the `fn` keyword (or of the closure's opening `|`).
    pub line: u32,
    /// Token ranges excluded from this span: spawned closures directly
    /// inside it, which are nodes of their own.
    pub holes: Vec<(usize, usize)>,
}

impl FnSpan {
    /// Whether token index `i` belongs to this span (in range and not
    /// inside a spawned-closure hole).
    pub fn covers(&self, i: usize) -> bool {
        i >= self.start && i < self.end && !self.holes.iter().any(|&(s, e)| i >= s && i < e)
    }
}

/// One function node (possibly merged from same-module same-name functions).
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Module-qualified id, e.g. `pgsim::exec::run_select`; spawned closures
    /// append `::closure@LINE` to their spawner's id.
    pub id: String,
    /// Crate the function lives in (`pgsim`, `proxy`, `shim:rand`, …).
    pub crate_name: String,
    /// Every body with this id.
    pub spans: Vec<FnSpan>,
}

/// One resolved call site. The interprocedural lock-order pass consumes
/// these: it needs token positions to interleave lock acquisitions with the
/// calls made while the guard is held. Spawner→closure edges deliberately
/// have no call site — the closure runs on another thread, so locks held at
/// the spawn point are not held inside it.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Caller node index.
    pub caller: usize,
    /// Index into the slice of [`SourceFile`]s the graph was built from.
    pub file: usize,
    /// Token index of the callee name.
    pub tok: usize,
    /// Line of the call.
    pub line: u32,
    /// Resolved target node indices (non-empty).
    pub targets: Vec<usize>,
    /// Whether the targets came from trait-impl dispatch fan-out rather
    /// than name resolution.
    pub dispatched: bool,
}

/// Size counters for the built graph, surfaced in `BENCH_analyze.json`.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Function + closure nodes.
    pub nodes: usize,
    /// Total caller→callee edges.
    pub edges: usize,
    /// Edges added by trait-impl dispatch fan-out.
    pub dispatch_edges: usize,
    /// Workspace `trait` declarations seen.
    pub traits: usize,
    /// (trait, method) → impl-body registrations in the trait-impl map.
    pub impl_methods: usize,
    /// Synthetic spawned-closure nodes.
    pub closure_nodes: usize,
}

/// An unresolved call reference found in a body.
#[derive(Debug, Clone)]
struct CallRef {
    /// Path segments (one for plain/method calls).
    path: Vec<String>,
    /// Whether it was `.name(` (method dispatch).
    method: bool,
    /// Argument count at the call site (computed for method calls only).
    argc: usize,
    /// Token index of the callee name.
    tok: usize,
    /// Line of the call.
    line: u32,
}

/// Workspace trait declarations: trait name → method name → non-`self`
/// parameter count.
type TraitDecls = BTreeMap<String, BTreeMap<String, usize>>;
/// Trait-impl map: trait name → method name → implementing node indices.
type ImplMap = BTreeMap<String, BTreeMap<String, BTreeSet<usize>>>;

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Nodes, indexable by the ids in [`CallGraph::by_id`].
    pub nodes: Vec<FnNode>,
    by_id: BTreeMap<String, usize>,
    /// caller -> callees.
    edges: BTreeMap<usize, BTreeSet<usize>>,
    /// Every resolved call site, for positional passes (lock-order).
    pub call_sites: Vec<CallSite>,
    /// Size counters, filled by [`CallGraph::build`].
    pub stats: GraphStats,
}

/// One function/closure occurrence being assembled during `build`.
struct Occ {
    node: usize,
    start: usize,
    end: usize,
    line: u32,
    owner_module: String,
    holes: Vec<(usize, usize)>,
}

impl CallGraph {
    /// Builds the graph over every file (the same slice the spans index).
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut graph = CallGraph::default();
        // Pass A: workspace trait declarations (dispatch needs them all
        // before any impl body is registered).
        let mut traits: TraitDecls = BTreeMap::new();
        for file in files {
            for (name, methods) in collect_traits(file) {
                traits.entry(name).or_default().extend(methods);
            }
        }
        // Pass B: function occurrences, impl-map registration, and spawned
        // closures (which punch holes in their parent's span).
        let mut impl_map: ImplMap = BTreeMap::new();
        let mut occs_by_file: Vec<Vec<Occ>> = Vec::with_capacity(files.len());
        let mut closure_edges: Vec<(usize, usize)> = Vec::new();
        for file in files {
            let module = module_path(file);
            let mut occs: Vec<Occ> = Vec::new();
            for f in functions(file) {
                let id = if f.module.is_empty() {
                    format!("{}::{}", module, f.name)
                } else {
                    format!("{}::{}::{}", module, f.module, f.name)
                };
                let node = graph.intern(&id, &file.crate_name);
                if let Some(tr) = &f.owner_trait {
                    if traits.get(tr).is_some_and(|m| m.contains_key(&f.name)) {
                        impl_map
                            .entry(tr.clone())
                            .or_default()
                            .entry(f.name.clone())
                            .or_default()
                            .insert(node);
                    }
                }
                let owner_module = match f.module.is_empty() {
                    true => module.clone(),
                    false => format!("{}::{}", module, f.module),
                };
                occs.push(Occ {
                    node,
                    start: f.body_start,
                    end: f.body_end,
                    line: f.line,
                    owner_module,
                    holes: Vec::new(),
                });
            }
            let mut closures = spawn_closures(file);
            closures.sort_by_key(|c| c.start);
            for c in closures {
                // Innermost containing occurrence (a prior closure wins over
                // the enclosing fn: outer closures are processed first).
                let parent = occs
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.start <= c.start && c.end <= o.end)
                    .max_by_key(|&(_, o)| o.start)
                    .map(|(i, _)| i);
                let Some(p) = parent else { continue };
                let parent_node = occs[p].node;
                let owner_module = occs[p].owner_module.clone();
                let id = format!("{}::closure@{}", graph.nodes[parent_node].id, c.line);
                let node = graph.intern(&id, &file.crate_name);
                occs[p].holes.push((c.start, c.end));
                closure_edges.push((parent_node, node));
                occs.push(Occ {
                    node,
                    start: c.start,
                    end: c.end,
                    line: c.line,
                    owner_module,
                    holes: Vec::new(),
                });
            }
            occs_by_file.push(occs);
        }
        // Spans + call references.
        struct Pending {
            node: usize,
            owner_module: String,
            file: usize,
            calls: Vec<CallRef>,
        }
        let mut pending: Vec<Pending> = Vec::new();
        for (file_idx, occs) in occs_by_file.iter().enumerate() {
            let file = &files[file_idx];
            for o in occs {
                graph.nodes[o.node].spans.push(FnSpan {
                    file: file_idx,
                    start: o.start,
                    end: o.end,
                    line: o.line,
                    holes: o.holes.clone(),
                });
                pending.push(Pending {
                    node: o.node,
                    owner_module: o.owner_module.clone(),
                    file: file_idx,
                    calls: call_refs(file, o.start, o.end, &o.holes),
                });
            }
        }
        // Name index for resolution. Closure ids never resolve a call (the
        // `@` cannot appear in source), so they are left out.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            let tail = n.id.rsplit("::").next().unwrap_or(&n.id);
            if !tail.contains('@') {
                by_name.entry(tail).or_default().push(i);
            }
        }
        // One use-map per file, built once: `resolve` consults it for every
        // plain call, and rebuilding it per call made graph construction
        // quadratic in the file's token count.
        let use_maps: Vec<BTreeMap<String, String>> = files.iter().map(use_map).collect();
        let no_uses = BTreeMap::new();
        let mut edges: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (a, b) in &closure_edges {
            edges.entry(*a).or_default().insert(*b);
        }
        let mut call_sites: Vec<CallSite> = Vec::new();
        let mut dispatch_edges = 0usize;
        for p in &pending {
            let crate_name = &graph.nodes[p.node].crate_name;
            let uses = use_maps.get(p.file).unwrap_or(&no_uses);
            for call in &p.calls {
                let (targets, dispatched) = graph.resolve(
                    call,
                    &p.owner_module,
                    crate_name,
                    &by_name,
                    uses,
                    &traits,
                    &impl_map,
                );
                let mut kept = Vec::new();
                for target in targets {
                    if target != p.node {
                        if edges.entry(p.node).or_default().insert(target) && dispatched {
                            dispatch_edges += 1;
                        }
                        kept.push(target);
                    }
                }
                if !kept.is_empty() {
                    call_sites.push(CallSite {
                        caller: p.node,
                        file: p.file,
                        tok: call.tok,
                        line: call.line,
                        targets: kept,
                        dispatched,
                    });
                }
            }
        }
        graph.edges = edges;
        graph.call_sites = call_sites;
        graph.stats = GraphStats {
            nodes: graph.nodes.len(),
            edges: graph.edges.values().map(BTreeSet::len).sum(),
            dispatch_edges,
            traits: traits.len(),
            impl_methods: impl_map
                .values()
                .map(|m| m.values().map(BTreeSet::len).sum::<usize>())
                .sum(),
            closure_nodes: graph
                .nodes
                .iter()
                .filter(|n| n.id.contains("::closure@"))
                .count(),
        };
        graph
    }

    fn intern(&mut self, id: &str, crate_name: &str) -> usize {
        if let Some(&i) = self.by_id.get(id) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(FnNode {
            id: id.to_string(),
            crate_name: crate_name.to_string(),
            spans: Vec::new(),
        });
        self.by_id.insert(id.to_string(), i);
        i
    }

    /// Node index by exact id.
    pub fn node(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Direct callees of a node.
    pub fn callees(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.get(&node).into_iter().flatten().copied()
    }

    /// Every node whose id starts with one of `prefixes` (or equals it).
    pub fn matching(&self, prefixes: &[&str]) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                prefixes
                    .iter()
                    .any(|p| n.id == *p || n.id.starts_with(&format!("{p}::")))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over callee edges from `roots`; returns, per reached node, the
    /// BFS predecessor (roots map to themselves). The predecessor chain
    /// renders the call path back to a root.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for callee in self.callees(n) {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(callee) {
                    e.insert(n);
                    queue.push_back(callee);
                }
            }
        }
        pred
    }

    /// Renders the predecessor chain from `node` up to its BFS root, e.g.
    /// `core::diff::diff_segments -> pgsim::exec::run_select`.
    pub fn chain(&self, pred: &BTreeMap<usize, usize>, node: usize) -> String {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(&p) = pred.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
            if path.len() > 32 {
                break; // defensive: predecessor maps are acyclic by construction
            }
        }
        path.reverse();
        let names: Vec<&str> = path.iter().map(|&i| self.nodes[i].id.as_str()).collect();
        names.join(" -> ")
    }

    /// Resolves one call reference to zero or more node indices; the flag
    /// reports whether trait-impl dispatch produced the targets.
    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        call: &CallRef,
        owner_module: &str,
        crate_name: &str,
        by_name: &BTreeMap<&str, Vec<usize>>,
        uses: &BTreeMap<String, String>,
        traits: &TraitDecls,
        impl_map: &ImplMap,
    ) -> (Vec<usize>, bool) {
        let tail = call.path.last().map(String::as_str).unwrap_or_default();
        if call.method {
            // A name declared by any workspace trait is handled exclusively
            // by dispatch: fan out to every registered impl of an
            // arity-matching declaration, or to nothing (never fall back to
            // uniqueness — `guard.read()` must not alias a lone
            // `Stream::read(buf)` impl).
            let declaring: Vec<&String> = traits
                .iter()
                .filter(|(_, methods)| methods.contains_key(tail))
                .map(|(name, _)| name)
                .collect();
            if !declaring.is_empty() {
                let mut targets: BTreeSet<usize> = BTreeSet::new();
                for trait_name in declaring {
                    if traits[trait_name].get(tail) == Some(&call.argc) {
                        if let Some(impls) = impl_map.get(trait_name).and_then(|m| m.get(tail)) {
                            targets.extend(impls.iter().copied());
                        }
                    }
                }
                let dispatched = !targets.is_empty();
                return (targets.into_iter().collect(), dispatched);
            }
            // `.name(…)`: untyped receiver — only a workspace-unique,
            // non-ubiquitous name is trustworthy.
            if UBIQUITOUS_METHODS.contains(&tail) {
                return (Vec::new(), false);
            }
            return match by_name.get(tail).map(Vec::as_slice) {
                Some([single]) => (vec![*single], false),
                _ => (Vec::new(), false),
            };
        }
        if call.path.len() == 1 {
            // Plain call: a `use` may alias it to a full path (candidates
            // are then looked up by the *aliased* name — `beta as b2`
            // resolves `b2()` to `…::beta`).
            if let Some(full) = uses.get(tail) {
                let segs: Vec<String> = full.split("::").map(str::to_string).collect();
                if let Some(segs) = normalize_head(segs, owner_module, crate_name) {
                    let full_tail = segs.last().map(String::as_str).unwrap_or_default();
                    if let Some(cands) = by_name.get(full_tail) {
                        let matches = self.suffix_matches(&segs.join("::"), cands);
                        if !matches.is_empty() {
                            return (matches, false);
                        }
                    }
                }
            }
            let Some(candidates) = by_name.get(tail) else {
                return (Vec::new(), false);
            };
            // Same module, then unique-in-crate, then unique-global.
            let in_module = format!("{owner_module}::{tail}");
            if let Some(i) = self.node(&in_module) {
                return (vec![i], false);
            }
            let in_crate: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].crate_name == crate_name)
                .collect();
            if let [single] = in_crate.as_slice() {
                return (vec![*single], false);
            }
            return match candidates.as_slice() {
                [single] => (vec![*single], false),
                _ => (Vec::new(), false),
            };
        }
        // Qualified path: normalize the head, then suffix-match node ids.
        let Some(segs) = normalize_head(call.path.clone(), owner_module, crate_name) else {
            return (Vec::new(), false);
        };
        match by_name.get(tail) {
            Some(candidates) => (self.suffix_matches(&segs.join("::"), candidates), false),
            None => (Vec::new(), false),
        }
    }

    /// Candidates whose id equals `path` or ends with `::path`.
    fn suffix_matches(&self, path: &str, candidates: &[usize]) -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&i| {
                let id = &self.nodes[i].id;
                id == path || id.ends_with(&format!("::{path}"))
            })
            .collect()
    }
}

/// Normalizes a path's head segment for matching against node ids:
/// `crate`/`self`/`super` resolve against the caller's position, the
/// `rddr_*` package prefix becomes the crate-directory name, and std
/// facade paths (`std`/`core`/`alloc` — our core crate is referenced as
/// `rddr_core`, so a literal `core::…` is std's) return `None`.
fn normalize_head(
    mut segs: Vec<String>,
    owner_module: &str,
    crate_name: &str,
) -> Option<Vec<String>> {
    match segs.first().map(String::as_str) {
        Some("crate") => segs[0] = crate_name.to_string(),
        Some("self") => {
            segs.remove(0);
            segs.insert(0, owner_module.to_string());
        }
        Some("super") => {
            segs.remove(0);
            let parent = owner_module.rsplit_once("::").map_or("", |(p, _)| p);
            if !parent.is_empty() {
                segs.insert(0, parent.to_string());
            }
        }
        Some("std" | "core" | "alloc") => return None,
        Some(s) if s.starts_with("rddr_") => {
            segs[0] = s.trim_start_matches("rddr_").to_string();
        }
        _ => {}
    }
    Some(segs)
}

/// The module path of a file from its location: `crates/pgsim/src/exec.rs`
/// → `pgsim::exec`; `lib.rs`/`main.rs`/`mod.rs` terminate the path.
fn module_path(file: &SourceFile) -> String {
    let mut segs: Vec<&str> = vec![&file.crate_name];
    if let Some(rest) = file.path.split("/src/").nth(1) {
        for part in rest.split('/') {
            let part = part.strip_suffix(".rs").unwrap_or(part);
            if !matches!(part, "lib" | "main" | "mod") && !part.is_empty() {
                segs.push(part);
            }
        }
    }
    segs.join("::")
}

/// One function occurrence in a file.
struct FnOccurrence {
    name: String,
    /// Extra module path from nested `mod x { … }` blocks ("" at top level).
    module: String,
    /// The trait this body implements (from an enclosing `impl Trait for …`
    /// block, or a default body inside the `trait` block itself).
    owner_trait: Option<String>,
    body_start: usize,
    body_end: usize,
    line: u32,
}

/// Extracts every `fn name … { body }` from a file, tracking nested
/// `mod name { … }` blocks for qualification and `impl`/`trait` blocks for
/// trait-impl registration. Bodies of nested functions are spans of their
/// own; the enclosing span simply also covers them (again:
/// over-approximation is fine for reachability).
fn functions(file: &SourceFile) -> Vec<FnOccurrence> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    // (mod name, close token index) stack.
    let mut mods: Vec<(String, usize)> = Vec::new();
    // (implemented trait, close token index) stack for impl/trait blocks.
    let mut owners: Vec<(Option<String>, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while mods.last().is_some_and(|&(_, close)| i > close) {
            mods.pop();
        }
        while owners.last().is_some_and(|&(_, close)| i > close) {
            owners.pop();
        }
        let t = &toks[i];
        if t.is_ident("mod")
            && toks.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct('{'))
        {
            mods.push((toks[i + 1].text.clone(), file.close_of(i + 2)));
            i += 3;
            continue;
        }
        if t.is_ident("impl") {
            // Also matched by `impl Trait` in signature position (`-> impl
            // Iterator`): the header scan then lands on the fn's own body
            // brace and pushes an inert `(None, …)` owner — harmless.
            if let Some((trait_name, open)) = impl_header(toks, i) {
                owners.push((trait_name, file.close_of(open)));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("trait") && toks.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident) {
            let mut j = i + 2;
            let mut open = None;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    open = Some(j);
                    break;
                }
                if toks[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = open {
                // Default bodies in the trait block register as impls too:
                // a type that doesn't override one runs exactly this body.
                owners.push((Some(toks[i + 1].text.clone()), file.close_of(open)));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && toks.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = t.line;
            // Find the parameter list, then the body `{` (a `;` first means
            // a trait method declaration — no body, no node).
            if let Some(open_paren) =
                (i + 2..toks.len().min(i + 64)).find(|&j| toks[j].is_punct('('))
            {
                let close_paren = match_forward(toks, open_paren, '(', ')');
                let mut j = close_paren + 1;
                let mut body = None;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        body = Some(j);
                        break;
                    }
                    if toks[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let close = file.close_of(open);
                    out.push(FnOccurrence {
                        name,
                        module: mods
                            .iter()
                            .map(|(m, _)| m.as_str())
                            .collect::<Vec<_>>()
                            .join("::"),
                        owner_trait: owners.last().and_then(|(tr, _)| tr.clone()),
                        body_start: open,
                        body_end: (close + 1).min(toks.len()),
                        line,
                    });
                    i += 2; // step inside: nested fns get their own spans
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Parses an `impl … {` header starting at the `impl` token: the
/// implemented trait is the last type name before a top-level `for` (absent
/// for inherent impls; `for<'a>` higher-ranked bounds don't count). Returns
/// the trait and the body's open brace, or `None` when no body follows.
fn impl_header(toks: &[crate::lexer::Token], at: usize) -> Option<(Option<String>, usize)> {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut trait_name: Option<String> = None;
    let mut j = at + 1;
    while j < toks.len() {
        let t = &toks[j];
        if angle == 0 && t.is_punct('{') {
            return Some((trait_name, j));
        }
        if angle == 0 && t.is_punct(';') {
            return None;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && angle > 0 && !toks[j - 1].is_punct('-') {
            // `->` in an `Fn() -> T` bound is not an angle close.
            angle -= 1;
        } else if angle == 0 && t.kind == TokenKind::Ident {
            if t.text == "for" {
                if trait_name.is_none() && !toks.get(j + 1).is_some_and(|n| n.is_punct('<')) {
                    trait_name = last_ident.take();
                }
            } else if t.text != "where" && t.text != "dyn" {
                last_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Collects every workspace `trait` declaration in a file: trait name →
/// method name → non-`self` parameter count (declarations and default
/// bodies alike; nested items inside default bodies are skipped).
fn collect_traits(file: &SourceFile) -> Vec<(String, BTreeMap<String, usize>)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("trait") && toks.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident))
        {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = file.close_of(open);
        let mut methods: BTreeMap<String, usize> = BTreeMap::new();
        let mut depth = 1usize;
        let mut k = open + 1;
        while k < close.min(toks.len()) {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if depth == 1
                && t.is_ident("fn")
                && toks.get(k + 1).map(|n| n.kind) == Some(TokenKind::Ident)
            {
                if let Some(po) = (k + 2..toks.len().min(k + 64)).find(|&x| toks[x].is_punct('(')) {
                    let pc = match_forward(toks, po, '(', ')');
                    methods.insert(toks[k + 1].text.clone(), non_self_params(toks, po, pc));
                    k = pc;
                }
            }
            k += 1;
        }
        out.push((name, methods));
        i = close + 1;
    }
    out
}

/// Counts the non-`self` parameters of a declaration's `(...)` list.
/// Commas inside nested brackets or generic angles don't split (`->` is
/// recognized so `Fn() -> T` doesn't unbalance the angle depth), and a
/// rustfmt trailing comma doesn't add a phantom parameter.
fn non_self_params(toks: &[crate::lexer::Token], open: usize, close: usize) -> usize {
    if close <= open + 1 {
        return 0;
    }
    let mut nest = 0i32;
    let mut angle = 0i32;
    let mut count = 1usize;
    let mut seg = 0usize;
    let mut first_has_self = false;
    for j in open + 1..close.min(toks.len()) {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            nest -= 1;
        } else if t.is_punct('<') && nest == 0 {
            angle += 1;
        } else if t.is_punct('>') && nest == 0 && angle > 0 && !toks[j - 1].is_punct('-') {
            angle -= 1;
        } else if t.is_punct(',') && nest == 0 && angle == 0 {
            count += 1;
            seg += 1;
        } else if t.is_ident("self") && seg == 0 {
            first_has_self = true;
        }
    }
    if toks[close - 1].is_punct(',') {
        count -= 1;
    }
    if first_has_self {
        count = count.saturating_sub(1);
    }
    count
}

/// Counts the arguments of a call's `(...)` list (commas at nesting depth
/// zero; a rustfmt trailing comma doesn't count). Angle depth is *not*
/// tracked — these are expressions, where `<` is usually comparison.
fn call_argc(toks: &[crate::lexer::Token], open: usize, close: usize) -> usize {
    if close <= open + 1 {
        return 0;
    }
    let mut nest = 0i32;
    let mut count = 1usize;
    for t in &toks[open + 1..close.min(toks.len())] {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            nest -= 1;
        } else if t.is_punct(',') && nest == 0 {
            count += 1;
        }
    }
    if toks[close - 1].is_punct(',') {
        count -= 1;
    }
    count
}

/// One spawned-closure occurrence (token range from the opening `|` through
/// the end of the body).
struct ClosureOcc {
    start: usize,
    end: usize,
    line: u32,
}

/// Finds closures passed to spawn-like callees: `…spawn(move || { … })`,
/// `scope.spawn(|| …)`, `sup.register_factory(name, move || { … })`. The
/// closure is the first `|…|` at the call's top argument level; a braced
/// body runs to its matching `}`, an expression body to the next top-level
/// `,` or the call's `)`.
fn spawn_closures(file: &SourceFile) -> Vec<ClosureOcc> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident
            || !SPAWN_CALLEES.contains(&t.text.as_str())
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || i.checked_sub(1).is_some_and(|j| toks[j].is_ident("fn"))
        {
            continue;
        }
        let open = i + 1;
        let close = match_forward(toks, open, '(', ')');
        // First `|` at argument level.
        let mut nest = 0i32;
        let mut pipe = None;
        for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                nest -= 1;
            } else if t.is_punct('|') && nest == 0 {
                pipe = Some(j);
                break;
            }
        }
        let Some(p) = pipe else { continue };
        // Parameter list: `||` is empty, otherwise scan to the closing `|`.
        let params_close = if toks.get(p + 1).is_some_and(|n| n.is_punct('|')) {
            p + 1
        } else {
            let mut pc = None;
            let mut nest = 0i32;
            for (j, t) in toks.iter().enumerate().take(close).skip(p + 1) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    nest += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    nest -= 1;
                } else if t.is_punct('|') && nest == 0 {
                    pc = Some(j);
                    break;
                }
            }
            match pc {
                Some(j) => j,
                None => continue,
            }
        };
        let b = params_close + 1;
        let end = if toks.get(b).is_some_and(|n| n.is_punct('{')) {
            file.close_of(b) + 1
        } else {
            // Expression body: runs to a top-level `,` or the call's `)`.
            let mut j = b;
            let mut nest = 0i32;
            while j < close {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    nest += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    nest -= 1;
                } else if t.is_punct(',') && nest == 0 {
                    break;
                }
                j += 1;
            }
            j
        };
        out.push(ClosureOcc {
            start: p,
            end: end.min(toks.len()),
            line: toks[p].line,
        });
    }
    out
}

/// Index of the token matching `open_c` at `open` (which must hold one).
fn match_forward(toks: &[crate::lexer::Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(open_c) {
            depth += 1;
        } else if toks[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Collects call references inside a body span, skipping hole ranges
/// (spawned closures, which collect their own).
fn call_refs(
    file: &SourceFile,
    start: usize,
    end: usize,
    holes: &[(usize, usize)],
) -> Vec<CallRef> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        if holes.iter().any(|&(s, e)| i >= s && i < e) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue; // a definition, not a call
        }
        if prev.is_some_and(|p| p.is_punct('.')) {
            let close = match_forward(toks, i + 1, '(', ')');
            out.push(CallRef {
                path: vec![t.text.clone()],
                method: true,
                argc: call_argc(toks, i + 1, close),
                tok: i,
                line: t.line,
            });
            continue;
        }
        // Walk back through `seg::seg::` qualifiers.
        let mut path = vec![t.text.clone()];
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokenKind::Ident
        {
            path.insert(0, toks[j - 3].text.clone());
            j -= 3;
        }
        out.push(CallRef {
            path,
            method: false,
            argc: 0,
            tok: i,
            line: t.line,
        });
    }
    out
}

/// Parses the file's `use` statements into `alias -> full path` (the alias
/// is the last segment, or the `as` name). Brace groups expand:
/// `use crate::exec::{run_select, scan};` maps both names.
fn use_map(file: &SourceFile) -> BTreeMap<String, String> {
    let toks = &file.tokens;
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Tokens through `;`.
        let stmt_end = (i + 1..toks.len())
            .find(|&j| toks[j].is_punct(';'))
            .unwrap_or(toks.len());
        parse_use(&toks[i + 1..stmt_end], &mut map);
        i = stmt_end + 1;
    }
    // Normalize rddr_* package names to crate-directory names.
    map.into_iter()
        .map(|(k, v)| {
            let v = match v.split_once("::") {
                Some((head, rest)) if head.starts_with("rddr_") => {
                    format!("{}::{rest}", head.trim_start_matches("rddr_"))
                }
                _ => v,
            };
            (k, v)
        })
        .collect()
}

/// Recursive-descent over one use-tree's tokens.
fn parse_use(toks: &[crate::lexer::Token], map: &mut BTreeMap<String, String>) {
    // Split a leading `a::b::` prefix, then either a name, `{…}`, or `*`.
    let mut prefix: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && t.text != "as" {
            // Lookahead: `name ::` extends the prefix; terminal otherwise.
            if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                prefix.push(t.text.clone());
                i += 3;
                continue;
            }
            let full = if prefix.is_empty() {
                t.text.clone()
            } else {
                format!("{}::{}", prefix.join("::"), t.text)
            };
            // `as alias`?
            let alias = if toks.get(i + 1).is_some_and(|n| n.is_ident("as")) {
                toks.get(i + 2).map(|n| n.text.clone())
            } else {
                None
            };
            map.insert(alias.unwrap_or_else(|| t.text.clone()), full);
            return;
        }
        if t.is_punct('{') {
            // Expand each comma-separated subtree with the current prefix.
            let mut depth = 0usize;
            let mut item_start = i + 1;
            for j in i..toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        expand_group(&prefix, &toks[item_start..j], map);
                        return;
                    }
                } else if toks[j].is_punct(',') && depth == 1 {
                    expand_group(&prefix, &toks[item_start..j], map);
                    item_start = j + 1;
                }
            }
            return;
        }
        return; // `*` globs and anything else: no mapping
    }
}

fn expand_group(
    prefix: &[String],
    item: &[crate::lexer::Token],
    map: &mut BTreeMap<String, String>,
) {
    if item.is_empty() {
        return;
    }
    // Prepend the prefix tokens conceptually by recursing with it rebuilt.
    let mut sub: BTreeMap<String, String> = BTreeMap::new();
    parse_use(item, &mut sub);
    for (alias, path) in sub {
        let full = if prefix.is_empty() {
            path
        } else if path == "self" {
            prefix.join("::")
        } else {
            format!("{}::{}", prefix.join("::"), path)
        };
        map.insert(alias, full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, crate_name, src.as_bytes())
    }

    #[test]
    fn module_paths_derive_from_location() {
        let f = file("crates/pgsim/src/exec.rs", "pgsim", "fn run() {}");
        assert_eq!(module_path(&f), "pgsim::exec");
        let lib = file("crates/net/src/lib.rs", "net", "fn x() {}");
        assert_eq!(module_path(&lib), "net");
        let nested = file("crates/vulns/src/scenarios/mod.rs", "vulns", "fn y() {}");
        assert_eq!(module_path(&nested), "vulns::scenarios");
    }

    #[test]
    fn functions_and_nested_mods_are_qualified() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn top() {}\nmod inner { fn deep() {} }\nfn after() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        assert!(g.node("demo::top").is_some());
        assert!(g.node("demo::inner::deep").is_some());
        assert!(g.node("demo::after").is_some());
    }

    #[test]
    fn plain_call_links_within_module() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn callee() {}\nfn caller() { callee(); }",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        let caller = g.node("demo::caller").unwrap();
        let callee = g.node("demo::callee").unwrap();
        assert!(g.callees(caller).any(|c| c == callee));
    }

    #[test]
    fn qualified_and_crate_paths_link_across_files() {
        let a = file(
            "crates/demo/src/exec.rs",
            "demo",
            "pub fn run_select() { crate::db::tag(); }",
        );
        let b = file("crates/demo/src/db.rs", "demo", "pub fn tag() {}");
        let g = CallGraph::build(&[a, b]);
        let caller = g.node("demo::exec::run_select").unwrap();
        let callee = g.node("demo::db::tag").unwrap();
        assert!(g.callees(caller).any(|c| c == callee));
    }

    #[test]
    fn use_import_links_cross_crate() {
        let a = file(
            "crates/core/src/diff.rs",
            "core",
            "use rddr_helper::leak;\npub fn diff_segments() { leak(); }",
        );
        let b = file("crates/helper/src/lib.rs", "helper", "pub fn leak() {}");
        let g = CallGraph::build(&[a, b]);
        let caller = g.node("core::diff::diff_segments").unwrap();
        let callee = g.node("helper::leak").unwrap();
        assert!(g.callees(caller).any(|c| c == callee));
    }

    #[test]
    fn brace_group_imports_resolve() {
        let a = file(
            "crates/demo/src/a.rs",
            "demo",
            "use crate::util::{alpha, beta as b2};\nfn go() { alpha(); b2(); }",
        );
        let b = file(
            "crates/demo/src/util.rs",
            "demo",
            "pub fn alpha() {}\npub fn beta() {}",
        );
        let g = CallGraph::build(&[a, b]);
        let go = g.node("demo::a::go").unwrap();
        let targets: Vec<usize> = g.callees(go).collect();
        assert!(targets.contains(&g.node("demo::util::alpha").unwrap()));
        assert!(targets.contains(&g.node("demo::util::beta").unwrap()));
    }

    #[test]
    fn unique_method_call_links_but_ubiquitous_does_not() {
        let a = file(
            "crates/demo/src/a.rs",
            "demo",
            "fn go(x: &T) { x.very_unique_helper(); x.len(); }",
        );
        let b = file(
            "crates/demo/src/b.rs",
            "demo",
            "impl T { pub fn very_unique_helper(&self) {} pub fn len(&self) -> usize { 0 } }",
        );
        let g = CallGraph::build(&[a, b]);
        let go = g.node("demo::a::go").unwrap();
        let targets: Vec<usize> = g.callees(go).collect();
        assert!(targets.contains(&g.node("demo::b::very_unique_helper").unwrap()));
        assert!(!targets.contains(&g.node("demo::b::len").unwrap()));
    }

    #[test]
    fn ambiguous_method_name_is_skipped() {
        let a = file(
            "crates/demo/src/a.rs",
            "demo",
            "fn go(x: &T) { x.helper(); }",
        );
        let b = file("crates/demo/src/b.rs", "demo", "pub fn helper() {}");
        let c = file("crates/demo/src/c.rs", "demo", "pub fn helper() {}");
        let g = CallGraph::build(&[a, b, c]);
        let go = g.node("demo::a::go").unwrap();
        assert_eq!(g.callees(go).count(), 0);
    }

    #[test]
    fn reachability_and_chain_render() {
        let a = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn sink() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&a));
        let sink = g.node("demo::sink").unwrap();
        let pred = g.reachable(&[sink]);
        let leaf = g.node("demo::leaf").unwrap();
        assert!(pred.contains_key(&leaf));
        assert!(!pred.contains_key(&g.node("demo::island").unwrap()));
        assert_eq!(
            g.chain(&pred, leaf),
            "demo::sink -> demo::mid -> demo::leaf"
        );
    }

    #[test]
    fn trait_method_declarations_have_no_body_node() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "trait T { fn decl(&self); }\nfn real() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        assert!(g.node("demo::decl").is_none());
        assert!(g.node("demo::real").is_some());
    }

    #[test]
    fn trait_object_call_fans_out_to_every_impl() {
        let t = file(
            "crates/demo/src/lib.rs",
            "demo",
            "pub trait Render { fn paint(&self, out: &mut Vec<u8>); }",
        );
        let a = file(
            "crates/demo/src/canvas.rs",
            "demo",
            "impl Render for Canvas { fn paint(&self, out: &mut Vec<u8>) {} }",
        );
        let b = file(
            "crates/demo/src/plotter.rs",
            "demo",
            "impl Render for Plotter { fn paint(&self, out: &mut Vec<u8>) {} }",
        );
        let c = file(
            "crates/demo/src/go.rs",
            "demo",
            "fn go(r: &dyn Render, buf: &mut Vec<u8>) { r.paint(buf); }",
        );
        let g = CallGraph::build(&[t, a, b, c]);
        let go = g.node("demo::go::go").unwrap();
        let targets: Vec<usize> = g.callees(go).collect();
        assert!(targets.contains(&g.node("demo::canvas::paint").unwrap()));
        assert!(targets.contains(&g.node("demo::plotter::paint").unwrap()));
        assert_eq!(g.stats.dispatch_edges, 2);
        assert_eq!(g.stats.traits, 1);
        assert_eq!(g.stats.impl_methods, 2);
        assert!(g.call_sites.iter().any(|cs| cs.dispatched));
    }

    #[test]
    fn arity_mismatch_blocks_dispatch() {
        // `guard.read()` takes no args; the trait's `read` takes a buffer —
        // the RwLock guard call must not alias the lone Stream-like impl,
        // and a trait-declared name never falls back to uniqueness.
        let t = file(
            "crates/demo/src/lib.rs",
            "demo",
            "pub trait Pipe { fn read(&mut self, buf: &mut [u8]) -> usize; }",
        );
        let a = file(
            "crates/demo/src/conn.rs",
            "demo",
            "impl Pipe for Conn { fn read(&mut self, buf: &mut [u8]) -> usize { 0 } }",
        );
        let c = file(
            "crates/demo/src/go.rs",
            "demo",
            "fn go(m: &M) { let g = m.state.read(); }",
        );
        let g = CallGraph::build(&[t, a, c]);
        let go = g.node("demo::go::go").unwrap();
        assert_eq!(g.callees(go).count(), 0);
        // The matching arity does dispatch.
        let d = file(
            "crates/demo/src/rd.rs",
            "demo",
            "fn pump(s: &mut dyn Pipe, buf: &mut [u8]) { s.read(buf); }",
        );
        let g = CallGraph::build(&[
            file(
                "crates/demo/src/lib.rs",
                "demo",
                "pub trait Pipe { fn read(&mut self, buf: &mut [u8]) -> usize; }",
            ),
            file(
                "crates/demo/src/conn.rs",
                "demo",
                "impl Pipe for Conn { fn read(&mut self, buf: &mut [u8]) -> usize { 0 } }",
            ),
            d,
        ]);
        let pump = g.node("demo::rd::pump").unwrap();
        let read = g.node("demo::conn::read").unwrap();
        assert!(g.callees(pump).any(|x| x == read));
    }

    #[test]
    fn trait_default_body_is_a_dispatch_target() {
        let t = file(
            "crates/demo/src/lib.rs",
            "demo",
            "pub trait Svc { fn tag(&self) -> u8 { fallback() } }\nfn fallback() -> u8 { 7 }",
        );
        let c = file(
            "crates/demo/src/go.rs",
            "demo",
            "fn go(s: &dyn Svc) { s.tag(); }",
        );
        let g = CallGraph::build(&[t, c]);
        let go = g.node("demo::go::go").unwrap();
        let tag = g.node("demo::tag").unwrap();
        assert!(g.callees(go).any(|x| x == tag));
        // The default body's own calls resolve too.
        assert!(g
            .callees(tag)
            .any(|x| x == g.node("demo::fallback").unwrap()));
    }

    #[test]
    fn generic_param_types_do_not_split_arity() {
        let t = file(
            "crates/demo/src/lib.rs",
            "demo",
            "pub trait Store { fn put(&mut self, pairs: BTreeMap<u8, u8>) -> bool; }",
        );
        let a = file(
            "crates/demo/src/mem.rs",
            "demo",
            "impl Store for Mem { fn put(&mut self, pairs: BTreeMap<u8, u8>) -> bool { true } }",
        );
        let c = file(
            "crates/demo/src/go.rs",
            "demo",
            "fn go(s: &mut dyn Store, m: BTreeMap<u8, u8>) { s.put(m); }",
        );
        let g = CallGraph::build(&[t, a, c]);
        let go = g.node("demo::go::go").unwrap();
        let put = g.node("demo::mem::put").unwrap();
        assert!(g.callees(go).any(|x| x == put));
    }

    #[test]
    fn spawned_closure_becomes_its_own_node() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn boss() { std::thread::spawn(move || { helper(); }); }\nfn helper() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        let boss = g.node("demo::boss").unwrap();
        let closure = g.node("demo::boss::closure@1").unwrap();
        let helper = g.node("demo::helper").unwrap();
        // boss -> closure -> helper; the hole keeps boss off helper.
        let boss_targets: Vec<usize> = g.callees(boss).collect();
        assert_eq!(boss_targets, vec![closure]);
        assert!(g.callees(closure).any(|x| x == helper));
        assert_eq!(g.stats.closure_nodes, 1);
        // The spawn edge is not a call site (other-thread boundary).
        assert!(g.call_sites.iter().all(|cs| !cs.targets.contains(&closure)));
        // The closure's span is a hole in boss's span.
        let span = &g.nodes[boss].spans[0];
        assert_eq!(span.holes.len(), 1);
        assert!(!span.covers(span.holes[0].0));
    }

    #[test]
    fn scoped_spawn_and_expression_bodies_work() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn boss(s: &Scope) { s.spawn(|| pump()); }\nfn pump() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        let closure = g.node("demo::boss::closure@1").unwrap();
        assert!(g
            .callees(closure)
            .any(|x| x == g.node("demo::pump").unwrap()));
    }

    #[test]
    fn register_factory_closure_is_tracked() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn wire(sup: &Supervisor) {\n    sup.register_factory(\"pg\", move || { respawn(); });\n}\nfn respawn() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        let wire = g.node("demo::wire").unwrap();
        let closure = g.node("demo::wire::closure@2").unwrap();
        assert!(g.callees(wire).any(|x| x == closure));
        assert!(g
            .callees(closure)
            .any(|x| x == g.node("demo::respawn").unwrap()));
    }

    #[test]
    fn call_sites_carry_positions() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn a() { b(); }\nfn b() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        let a = g.node("demo::a").unwrap();
        let b = g.node("demo::b").unwrap();
        let cs = g.call_sites.iter().find(|cs| cs.caller == a).unwrap();
        assert_eq!(cs.targets, vec![b]);
        assert_eq!(cs.line, 1);
        assert!(!cs.dispatched);
    }

    #[test]
    fn explicit_drop_is_not_a_call_to_an_impl_drop() {
        // `drop(guard)` is `mem::drop`; linking it to the module's own
        // `impl Drop` fn would manufacture self-deadlocks out of lock
        // releases.
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn release() { drop(guard); }\nimpl Drop for Pipe { fn drop(&mut self) {} }",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        let release = g.node("demo::release").unwrap();
        assert_eq!(g.callees(release).count(), 0);
    }
}
