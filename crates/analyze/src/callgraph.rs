//! A workspace-wide call graph built from the token streams.
//!
//! Nodes are module-path-qualified function names (`pgsim::exec::run_select`
//! — the module path derives from the file's location under `src/` plus any
//! nested `mod name { … }` blocks). Functions that share a module and a name
//! (e.g. `new` on two types in one file) merge into one node; that
//! over-approximation is deliberate — the taint and hot-path passes want
//! reachability, and a merged node only ever *adds* paths.
//!
//! Edges come from three call shapes, resolved in decreasing precision:
//!
//! 1. **Qualified paths** (`exec::run_select(…)`, `crate::db::tag(…)`,
//!    `rddr_pgsim::parser::parse_statement(…)`): matched against node ids by
//!    path suffix, with `crate`/`self`/`super` and the `rddr_*` package
//!    prefix normalized first.
//! 2. **Plain names** (`run_select(…)`): same module first, then a unique
//!    match in the same crate, then a unique match workspace-wide.
//! 3. **Method calls** (`.session(…)`): linked only when the name is unique
//!    across the workspace and not a ubiquitous std name (`len`, `clone`,
//!    `read`, …) — receivers are untyped at the token level, so anything
//!    more aggressive manufactures edges.
//!
//! Unresolved calls (std, shims, trait dispatch) simply produce no edge; the
//! passes that consume the graph treat missing edges as "not reachable",
//! which keeps them quiet rather than noisy. Known imprecision is documented
//! in DESIGN.md.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Method names too generic to resolve by uniqueness: std trait methods and
/// container vocabulary that would otherwise alias unrelated workspace
/// functions onto one node.
const UBIQUITOUS_METHODS: &[&str] = &[
    "as_mut",
    "as_ref",
    "borrow",
    "clone",
    "cmp",
    "collect",
    "contains",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "err",
    "extend",
    "flush",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "parse",
    "pop",
    "push",
    "read",
    "recv",
    "remove",
    "replace",
    "retain",
    "send",
    "sort",
    "split",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "unwrap",
    "unwrap_or",
    "write",
];

/// Keywords that can precede `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "fn",
    "impl", "where", "unsafe", "dyn",
];

/// One contiguous body of a function, as token indices into its file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Index into the slice of [`SourceFile`]s the graph was built from.
    pub file: usize,
    /// Token range of the body, `{` inclusive to `}` inclusive.
    pub start: usize,
    /// End of the body (exclusive token index).
    pub end: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// One function node (possibly merged from same-module same-name functions).
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Module-qualified id, e.g. `pgsim::exec::run_select`.
    pub id: String,
    /// Crate the function lives in (`pgsim`, `proxy`, `shim:rand`, …).
    pub crate_name: String,
    /// Every body with this id.
    pub spans: Vec<FnSpan>,
}

/// An unresolved call reference found in a body.
#[derive(Debug, Clone)]
struct CallRef {
    /// Path segments (one for plain/method calls).
    path: Vec<String>,
    /// Whether it was `.name(` (method dispatch).
    method: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Nodes, indexable by the ids in [`CallGraph::by_id`].
    pub nodes: Vec<FnNode>,
    by_id: BTreeMap<String, usize>,
    /// caller -> callees.
    edges: BTreeMap<usize, BTreeSet<usize>>,
}

impl CallGraph {
    /// Builds the graph over every file (the same slice the spans index).
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut graph = CallGraph::default();
        // (node index, module path, file index, calls) per function occurrence.
        let mut pending: Vec<(usize, String, usize, Vec<CallRef>)> = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            let module = module_path(file);
            for f in functions(file) {
                let id = if f.module.is_empty() {
                    format!("{}::{}", module, f.name)
                } else {
                    format!("{}::{}::{}", module, f.module, f.name)
                };
                let node = graph.intern(&id, &file.crate_name);
                graph.nodes[node].spans.push(FnSpan {
                    file: file_idx,
                    start: f.body_start,
                    end: f.body_end,
                    line: f.line,
                });
                let calls = call_refs(file, f.body_start, f.body_end);
                let owner_module = match f.module.is_empty() {
                    true => module.clone(),
                    false => format!("{}::{}", module, f.module),
                };
                pending.push((node, owner_module, file_idx, calls));
            }
        }
        // Name index for resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            let tail = n.id.rsplit("::").next().unwrap_or(&n.id);
            by_name.entry(tail).or_default().push(i);
        }
        // One use-map per file, built once: `resolve` consults it for every
        // plain call, and rebuilding it per call made graph construction
        // quadratic in the file's token count.
        let use_maps: Vec<BTreeMap<String, String>> = files.iter().map(use_map).collect();
        let no_uses = BTreeMap::new();
        let mut edges: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (node, owner_module, file_idx, calls) in &pending {
            let crate_name = &graph.nodes[*node].crate_name;
            let uses = use_maps.get(*file_idx).unwrap_or(&no_uses);
            for call in calls {
                for target in graph.resolve(call, owner_module, crate_name, &by_name, uses) {
                    if target != *node {
                        edges.entry(*node).or_default().insert(target);
                    }
                }
            }
        }
        graph.edges = edges;
        graph
    }

    fn intern(&mut self, id: &str, crate_name: &str) -> usize {
        if let Some(&i) = self.by_id.get(id) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(FnNode {
            id: id.to_string(),
            crate_name: crate_name.to_string(),
            spans: Vec::new(),
        });
        self.by_id.insert(id.to_string(), i);
        i
    }

    /// Node index by exact id.
    pub fn node(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Direct callees of a node.
    pub fn callees(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.get(&node).into_iter().flatten().copied()
    }

    /// Every node whose id starts with one of `prefixes` (or equals it).
    pub fn matching(&self, prefixes: &[&str]) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                prefixes
                    .iter()
                    .any(|p| n.id == *p || n.id.starts_with(&format!("{p}::")))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over callee edges from `roots`; returns, per reached node, the
    /// BFS predecessor (roots map to themselves). The predecessor chain
    /// renders the call path back to a root.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for callee in self.callees(n) {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(callee) {
                    e.insert(n);
                    queue.push_back(callee);
                }
            }
        }
        pred
    }

    /// Renders the predecessor chain from `node` up to its BFS root, e.g.
    /// `core::diff::diff_segments -> pgsim::exec::run_select`.
    pub fn chain(&self, pred: &BTreeMap<usize, usize>, node: usize) -> String {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(&p) = pred.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
            if path.len() > 32 {
                break; // defensive: predecessor maps are acyclic by construction
            }
        }
        path.reverse();
        let names: Vec<&str> = path.iter().map(|&i| self.nodes[i].id.as_str()).collect();
        names.join(" -> ")
    }

    /// Resolves one call reference to zero or more node indices.
    fn resolve(
        &self,
        call: &CallRef,
        owner_module: &str,
        crate_name: &str,
        by_name: &BTreeMap<&str, Vec<usize>>,
        uses: &BTreeMap<String, String>,
    ) -> Vec<usize> {
        let tail = call.path.last().map(String::as_str).unwrap_or_default();
        if call.method {
            // `.name(…)`: untyped receiver — only a workspace-unique,
            // non-ubiquitous name is trustworthy.
            if UBIQUITOUS_METHODS.contains(&tail) {
                return Vec::new();
            }
            return match by_name.get(tail).map(Vec::as_slice) {
                Some([single]) => vec![*single],
                _ => Vec::new(),
            };
        }
        if call.path.len() == 1 {
            // Plain call: a `use` may alias it to a full path (candidates
            // are then looked up by the *aliased* name — `beta as b2`
            // resolves `b2()` to `…::beta`).
            if let Some(full) = uses.get(tail) {
                let segs: Vec<String> = full.split("::").map(str::to_string).collect();
                if let Some(segs) = normalize_head(segs, owner_module, crate_name) {
                    let full_tail = segs.last().map(String::as_str).unwrap_or_default();
                    if let Some(cands) = by_name.get(full_tail) {
                        let matches = self.suffix_matches(&segs.join("::"), cands);
                        if !matches.is_empty() {
                            return matches;
                        }
                    }
                }
            }
            let Some(candidates) = by_name.get(tail) else {
                return Vec::new();
            };
            // Same module, then unique-in-crate, then unique-global.
            let in_module = format!("{owner_module}::{tail}");
            if let Some(i) = self.node(&in_module) {
                return vec![i];
            }
            let in_crate: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].crate_name == crate_name)
                .collect();
            if let [single] = in_crate.as_slice() {
                return vec![*single];
            }
            return match candidates.as_slice() {
                [single] => vec![*single],
                _ => Vec::new(),
            };
        }
        // Qualified path: normalize the head, then suffix-match node ids.
        let Some(segs) = normalize_head(call.path.clone(), owner_module, crate_name) else {
            return Vec::new();
        };
        match by_name.get(tail) {
            Some(candidates) => self.suffix_matches(&segs.join("::"), candidates),
            None => Vec::new(),
        }
    }

    /// Candidates whose id equals `path` or ends with `::path`.
    fn suffix_matches(&self, path: &str, candidates: &[usize]) -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&i| {
                let id = &self.nodes[i].id;
                id == path || id.ends_with(&format!("::{path}"))
            })
            .collect()
    }
}

/// Normalizes a path's head segment for matching against node ids:
/// `crate`/`self`/`super` resolve against the caller's position, the
/// `rddr_*` package prefix becomes the crate-directory name, and std
/// facade paths (`std`/`core`/`alloc` — our core crate is referenced as
/// `rddr_core`, so a literal `core::…` is std's) return `None`.
fn normalize_head(
    mut segs: Vec<String>,
    owner_module: &str,
    crate_name: &str,
) -> Option<Vec<String>> {
    match segs.first().map(String::as_str) {
        Some("crate") => segs[0] = crate_name.to_string(),
        Some("self") => {
            segs.remove(0);
            segs.insert(0, owner_module.to_string());
        }
        Some("super") => {
            segs.remove(0);
            let parent = owner_module.rsplit_once("::").map_or("", |(p, _)| p);
            if !parent.is_empty() {
                segs.insert(0, parent.to_string());
            }
        }
        Some("std" | "core" | "alloc") => return None,
        Some(s) if s.starts_with("rddr_") => {
            segs[0] = s.trim_start_matches("rddr_").to_string();
        }
        _ => {}
    }
    Some(segs)
}

/// The module path of a file from its location: `crates/pgsim/src/exec.rs`
/// → `pgsim::exec`; `lib.rs`/`main.rs`/`mod.rs` terminate the path.
fn module_path(file: &SourceFile) -> String {
    let mut segs: Vec<&str> = vec![&file.crate_name];
    if let Some(rest) = file.path.split("/src/").nth(1) {
        for part in rest.split('/') {
            let part = part.strip_suffix(".rs").unwrap_or(part);
            if !matches!(part, "lib" | "main" | "mod") && !part.is_empty() {
                segs.push(part);
            }
        }
    }
    segs.join("::")
}

/// One function occurrence in a file.
struct FnOccurrence {
    name: String,
    /// Extra module path from nested `mod x { … }` blocks ("" at top level).
    module: String,
    body_start: usize,
    body_end: usize,
    line: u32,
}

/// Extracts every `fn name … { body }` from a file, tracking nested
/// `mod name { … }` blocks for qualification. Bodies of nested functions
/// are spans of their own; the enclosing span simply also covers them
/// (again: over-approximation is fine for reachability).
fn functions(file: &SourceFile) -> Vec<FnOccurrence> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    // (mod name, close token index) stack.
    let mut mods: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while let Some(&(_, close)) = mods.last() {
            if i > close {
                mods.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.is_ident("mod")
            && toks.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct('{'))
        {
            mods.push((toks[i + 1].text.clone(), file.close_of(i + 2)));
            i += 3;
            continue;
        }
        if t.is_ident("fn") && toks.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = t.line;
            // Find the parameter list, then the body `{` (a `;` first means
            // a trait method declaration — no body, no node).
            if let Some(open_paren) =
                (i + 2..toks.len().min(i + 64)).find(|&j| toks[j].is_punct('('))
            {
                let close_paren = match_forward(toks, open_paren, '(', ')');
                let mut j = close_paren + 1;
                let mut body = None;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        body = Some(j);
                        break;
                    }
                    if toks[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let close = file.close_of(open);
                    out.push(FnOccurrence {
                        name,
                        module: mods
                            .iter()
                            .map(|(m, _)| m.as_str())
                            .collect::<Vec<_>>()
                            .join("::"),
                        body_start: open,
                        body_end: (close + 1).min(toks.len()),
                        line,
                    });
                    i += 2; // step inside: nested fns get their own spans
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Index of the token matching `open_c` at `open` (which must hold one).
fn match_forward(toks: &[crate::lexer::Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(open_c) {
            depth += 1;
        } else if toks[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Collects call references inside a body span.
fn call_refs(file: &SourceFile, start: usize, end: usize) -> Vec<CallRef> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue; // a definition, not a call
        }
        if prev.is_some_and(|p| p.is_punct('.')) {
            out.push(CallRef {
                path: vec![t.text.clone()],
                method: true,
            });
            continue;
        }
        // Walk back through `seg::seg::` qualifiers.
        let mut path = vec![t.text.clone()];
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokenKind::Ident
        {
            path.insert(0, toks[j - 3].text.clone());
            j -= 3;
        }
        out.push(CallRef {
            path,
            method: false,
        });
    }
    out
}

/// Parses the file's `use` statements into `alias -> full path` (the alias
/// is the last segment, or the `as` name). Brace groups expand:
/// `use crate::exec::{run_select, scan};` maps both names.
fn use_map(file: &SourceFile) -> BTreeMap<String, String> {
    let toks = &file.tokens;
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Tokens through `;`.
        let stmt_end = (i + 1..toks.len())
            .find(|&j| toks[j].is_punct(';'))
            .unwrap_or(toks.len());
        parse_use(&toks[i + 1..stmt_end], &mut map);
        i = stmt_end + 1;
    }
    // Normalize rddr_* package names to crate-directory names.
    map.into_iter()
        .map(|(k, v)| {
            let v = match v.split_once("::") {
                Some((head, rest)) if head.starts_with("rddr_") => {
                    format!("{}::{rest}", head.trim_start_matches("rddr_"))
                }
                _ => v,
            };
            (k, v)
        })
        .collect()
}

/// Recursive-descent over one use-tree's tokens.
fn parse_use(toks: &[crate::lexer::Token], map: &mut BTreeMap<String, String>) {
    // Split a leading `a::b::` prefix, then either a name, `{…}`, or `*`.
    let mut prefix: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && t.text != "as" {
            // Lookahead: `name ::` extends the prefix; terminal otherwise.
            if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                prefix.push(t.text.clone());
                i += 3;
                continue;
            }
            let full = if prefix.is_empty() {
                t.text.clone()
            } else {
                format!("{}::{}", prefix.join("::"), t.text)
            };
            // `as alias`?
            let alias = if toks.get(i + 1).is_some_and(|n| n.is_ident("as")) {
                toks.get(i + 2).map(|n| n.text.clone())
            } else {
                None
            };
            map.insert(alias.unwrap_or_else(|| t.text.clone()), full);
            return;
        }
        if t.is_punct('{') {
            // Expand each comma-separated subtree with the current prefix.
            let mut depth = 0usize;
            let mut item_start = i + 1;
            for j in i..toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        expand_group(&prefix, &toks[item_start..j], map);
                        return;
                    }
                } else if toks[j].is_punct(',') && depth == 1 {
                    expand_group(&prefix, &toks[item_start..j], map);
                    item_start = j + 1;
                }
            }
            return;
        }
        return; // `*` globs and anything else: no mapping
    }
}

fn expand_group(
    prefix: &[String],
    item: &[crate::lexer::Token],
    map: &mut BTreeMap<String, String>,
) {
    if item.is_empty() {
        return;
    }
    // Prepend the prefix tokens conceptually by recursing with it rebuilt.
    let mut sub: BTreeMap<String, String> = BTreeMap::new();
    parse_use(item, &mut sub);
    for (alias, path) in sub {
        let full = if prefix.is_empty() {
            path
        } else if path == "self" {
            prefix.join("::")
        } else {
            format!("{}::{}", prefix.join("::"), path)
        };
        map.insert(alias, full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, crate_name, src.as_bytes())
    }

    #[test]
    fn module_paths_derive_from_location() {
        let f = file("crates/pgsim/src/exec.rs", "pgsim", "fn run() {}");
        assert_eq!(module_path(&f), "pgsim::exec");
        let lib = file("crates/net/src/lib.rs", "net", "fn x() {}");
        assert_eq!(module_path(&lib), "net");
        let nested = file("crates/vulns/src/scenarios/mod.rs", "vulns", "fn y() {}");
        assert_eq!(module_path(&nested), "vulns::scenarios");
    }

    #[test]
    fn functions_and_nested_mods_are_qualified() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn top() {}\nmod inner { fn deep() {} }\nfn after() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        assert!(g.node("demo::top").is_some());
        assert!(g.node("demo::inner::deep").is_some());
        assert!(g.node("demo::after").is_some());
    }

    #[test]
    fn plain_call_links_within_module() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn callee() {}\nfn caller() { callee(); }",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        let caller = g.node("demo::caller").unwrap();
        let callee = g.node("demo::callee").unwrap();
        assert!(g.callees(caller).any(|c| c == callee));
    }

    #[test]
    fn qualified_and_crate_paths_link_across_files() {
        let a = file(
            "crates/demo/src/exec.rs",
            "demo",
            "pub fn run_select() { crate::db::tag(); }",
        );
        let b = file("crates/demo/src/db.rs", "demo", "pub fn tag() {}");
        let g = CallGraph::build(&[a, b]);
        let caller = g.node("demo::exec::run_select").unwrap();
        let callee = g.node("demo::db::tag").unwrap();
        assert!(g.callees(caller).any(|c| c == callee));
    }

    #[test]
    fn use_import_links_cross_crate() {
        let a = file(
            "crates/core/src/diff.rs",
            "core",
            "use rddr_helper::leak;\npub fn diff_segments() { leak(); }",
        );
        let b = file("crates/helper/src/lib.rs", "helper", "pub fn leak() {}");
        let g = CallGraph::build(&[a, b]);
        let caller = g.node("core::diff::diff_segments").unwrap();
        let callee = g.node("helper::leak").unwrap();
        assert!(g.callees(caller).any(|c| c == callee));
    }

    #[test]
    fn brace_group_imports_resolve() {
        let a = file(
            "crates/demo/src/a.rs",
            "demo",
            "use crate::util::{alpha, beta as b2};\nfn go() { alpha(); b2(); }",
        );
        let b = file(
            "crates/demo/src/util.rs",
            "demo",
            "pub fn alpha() {}\npub fn beta() {}",
        );
        let g = CallGraph::build(&[a, b]);
        let go = g.node("demo::a::go").unwrap();
        let targets: Vec<usize> = g.callees(go).collect();
        assert!(targets.contains(&g.node("demo::util::alpha").unwrap()));
        assert!(targets.contains(&g.node("demo::util::beta").unwrap()));
    }

    #[test]
    fn unique_method_call_links_but_ubiquitous_does_not() {
        let a = file(
            "crates/demo/src/a.rs",
            "demo",
            "fn go(x: &T) { x.very_unique_helper(); x.len(); }",
        );
        let b = file(
            "crates/demo/src/b.rs",
            "demo",
            "impl T { pub fn very_unique_helper(&self) {} pub fn len(&self) -> usize { 0 } }",
        );
        let g = CallGraph::build(&[a, b]);
        let go = g.node("demo::a::go").unwrap();
        let targets: Vec<usize> = g.callees(go).collect();
        assert!(targets.contains(&g.node("demo::b::very_unique_helper").unwrap()));
        assert!(!targets.contains(&g.node("demo::b::len").unwrap()));
    }

    #[test]
    fn ambiguous_method_name_is_skipped() {
        let a = file(
            "crates/demo/src/a.rs",
            "demo",
            "fn go(x: &T) { x.helper(); }",
        );
        let b = file("crates/demo/src/b.rs", "demo", "pub fn helper() {}");
        let c = file("crates/demo/src/c.rs", "demo", "pub fn helper() {}");
        let g = CallGraph::build(&[a, b, c]);
        let go = g.node("demo::a::go").unwrap();
        assert_eq!(g.callees(go).count(), 0);
    }

    #[test]
    fn reachability_and_chain_render() {
        let a = file(
            "crates/demo/src/lib.rs",
            "demo",
            "fn sink() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&a));
        let sink = g.node("demo::sink").unwrap();
        let pred = g.reachable(&[sink]);
        let leaf = g.node("demo::leaf").unwrap();
        assert!(pred.contains_key(&leaf));
        assert!(!pred.contains_key(&g.node("demo::island").unwrap()));
        assert_eq!(
            g.chain(&pred, leaf),
            "demo::sink -> demo::mid -> demo::leaf"
        );
    }

    #[test]
    fn trait_method_declarations_have_no_body_node() {
        let f = file(
            "crates/demo/src/lib.rs",
            "demo",
            "trait T { fn decl(&self); }\nfn real() {}",
        );
        let g = CallGraph::build(std::slice::from_ref(&f));
        assert!(g.node("demo::decl").is_none());
        assert!(g.node("demo::real").is_some());
    }
}
