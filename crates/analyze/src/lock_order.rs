//! Lock-order pass: builds a workspace-wide lock-acquisition graph over the
//! call graph and reports cycles as potential deadlocks.
//!
//! Heuristic, in keeping with the token-level analysis: a lock site is a
//! `.lock()`, `.read()`, or `.write()` call **with no arguments** (stream
//! I/O `read(&mut buf)` takes a buffer and is not matched). The receiver is
//! the dotted path before the call (`self.` stripped, index expressions
//! skipped) qualified by the owning crate, so `self.shards[i].lock()` and
//! `shards[j].lock()` in rddr-proxy both name `proxy:shards`. A guard is
//! assumed held until the end of its enclosing block, so:
//!
//! * any lock acquired *textually* before that closing brace nests under
//!   the held lock, and
//! * any **call** made before that closing brace nests everything the
//!   callee may transitively acquire under it — computed as a fixpoint over
//!   the [`CallGraph`]'s resolved call sites, so acquire-then-call-then-
//!   acquire chains crossing crate boundaries (proxy→core→telemetry) are
//!   seen.
//!
//! Spawned closures are a thread boundary: a guard held at the spawn point
//! is *not* held inside the closure (the spawner→closure edge carries no
//! call site, and textual pairs never cross into a closure's range), so
//! handing work to another thread while holding a lock does not manufacture
//! edges. A cycle in the merged graph (including a self-edge — re-acquiring
//! a non-reentrant lock, directly or through a callee) is reported at the
//! edge's site.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnSpan};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::{Finding, Lint};

/// One lock acquisition: where the guard is taken and how long it lives.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Token index of the `lock`/`read`/`write` callee name.
    pub tok: usize,
    /// Token index the guard is assumed held until (exclusive): the end of
    /// the enclosing block, or of the statement for a chained temporary.
    pub scope_end: usize,
    /// Receiver path of the lock (`self.` stripped, indexes collapsed).
    pub receiver: String,
    /// Line of the acquisition.
    pub line: u32,
}

/// Extracts lock-acquisition sites from one prepared file (allow-commented
/// sites are dropped here, so neither textual nor call-mediated edges see
/// them).
pub fn sites(file: &SourceFile) -> Vec<LockSite> {
    let toks = &file.tokens;
    let mut out: Vec<LockSite> = Vec::new();
    let mut block_stack: Vec<usize> = Vec::new(); // open-brace token indices
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            block_stack.push(i);
        } else if t.is_punct('}') {
            block_stack.pop();
        }
        let is_lock_call = matches!(t.text.as_str(), "lock" | "read" | "write")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if !is_lock_call || file.allowed(Lint::LockOrder, t.line) {
            continue;
        }
        let Some(receiver) = receiver_path(toks, i - 1) else {
            continue;
        };
        let scope_end = if guard_is_temporary(toks, i + 3) {
            // `x.lock().do_thing()`: the guard is a temporary dropped at the
            // end of the statement, not a binding that lives to block end.
            statement_end(toks, i)
        } else {
            block_stack
                .last()
                .map(|&open| file.close_of(open))
                .unwrap_or(toks.len())
        };
        out.push(LockSite {
            tok: i,
            scope_end,
            receiver,
            line: t.line,
        });
    }
    out
}

/// Runs the pass: `files` must be the slice `graph` was built over.
pub fn check(graph: &CallGraph, files: &[SourceFile]) -> Vec<Finding> {
    // Spans per file (for attributing sites to nodes) and closure ranges
    // (thread boundaries).
    let mut spans_by_file: Vec<Vec<(usize, &FnSpan)>> = vec![Vec::new(); files.len()];
    let mut closure_ranges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); files.len()];
    for (i, n) in graph.nodes.iter().enumerate() {
        let is_closure = n.id.contains("::closure@");
        for span in &n.spans {
            if let Some(per_file) = spans_by_file.get_mut(span.file) {
                per_file.push((i, span));
                if is_closure {
                    closure_ranges[span.file].push((span.start, span.end));
                }
            }
        }
    }
    // Lock sites per file, qualified by crate and attributed to the
    // innermost covering node.
    struct Site {
        tok: usize,
        scope_end: usize,
        name: String,
        line: u32,
    }
    let mut sites_by_file: Vec<Vec<Site>> = Vec::with_capacity(files.len());
    let mut direct: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        let mut v = Vec::new();
        for s in sites(file) {
            let name = format!("{}:{}", file.crate_name, s.receiver);
            let node = spans_by_file[fi]
                .iter()
                .filter(|(_, sp)| sp.covers(s.tok))
                .max_by_key(|(_, sp)| sp.start)
                .map(|&(n, _)| n);
            if let Some(n) = node {
                direct.entry(n).or_default().insert(name.clone());
            }
            v.push(Site {
                tok: s.tok,
                scope_end: s.scope_end,
                name,
                line: s.line,
            });
        }
        sites_by_file.push(v);
    }
    // acq*: every lock a call into `node` may transitively acquire, as a
    // fixpoint over the call-site adjacency (spawner→closure edges have no
    // call site — the closure's locks are taken on another thread).
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut cs_by_file: Vec<Vec<&crate::callgraph::CallSite>> = vec![Vec::new(); files.len()];
    for cs in &graph.call_sites {
        adj.entry(cs.caller)
            .or_default()
            .extend(cs.targets.iter().copied());
        if let Some(per_file) = cs_by_file.get_mut(cs.file) {
            per_file.push(cs);
        }
    }
    let mut acq: BTreeMap<usize, BTreeSet<String>> = direct;
    loop {
        let mut changed = false;
        for (&caller, callees) in &adj {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in callees {
                if let Some(set) = acq.get(c) {
                    add.extend(set.iter().cloned());
                }
            }
            if !add.is_empty() {
                let entry = acq.entry(caller).or_default();
                let before = entry.len();
                entry.extend(add);
                changed |= entry.len() > before;
            }
        }
        if !changed {
            break;
        }
    }
    // Edges: `held -> acquired`, with the first site observed per edge.
    let mut edge_site: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        // `inner` sits inside a spawned closure that does not also contain
        // `outer`: the two execute on different threads.
        let crosses_spawn = |inner: usize, outer: usize| {
            closure_ranges[fi]
                .iter()
                .any(|&(s, e)| inner >= s && inner < e && !(outer >= s && outer < e))
        };
        let fsites = &sites_by_file[fi];
        for (a_idx, a) in fsites.iter().enumerate() {
            // Textual nesting: a later acquisition before the guard's scope
            // closes.
            for b in &fsites[a_idx + 1..] {
                if b.tok < a.scope_end && !crosses_spawn(b.tok, a.tok) {
                    edge_site
                        .entry((a.name.clone(), b.name.clone()))
                        .or_insert((file.path.clone(), b.line));
                }
            }
            // Call-mediated nesting: everything a callee may acquire nests
            // under the held guard.
            for cs in &cs_by_file[fi] {
                if cs.tok <= a.tok
                    || cs.tok >= a.scope_end
                    || crosses_spawn(cs.tok, a.tok)
                    || file.allowed(Lint::LockOrder, cs.line)
                {
                    continue;
                }
                for t in &cs.targets {
                    for q in acq.get(t).into_iter().flatten() {
                        edge_site
                            .entry((a.name.clone(), q.clone()))
                            .or_insert((file.path.clone(), cs.line));
                    }
                }
            }
        }
    }
    cycles(&edge_site)
}

/// Whether the guard produced by a lock call is consumed by further method
/// chaining (and thus dropped at the end of the statement). `after` is the
/// token index just past the call's `()`. Chained `.unwrap()`/`.expect(…)`
/// still *yield* the guard (std's poison API), so they are skipped first.
fn guard_is_temporary(toks: &[crate::lexer::Token], mut after: usize) -> bool {
    loop {
        if !toks.get(after).is_some_and(|t| t.is_punct('.')) {
            return false;
        }
        let chained = toks.get(after + 1);
        if !chained.is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect")) {
            return true;
        }
        // Skip past the unwrap/expect call's parens.
        if !toks.get(after + 2).is_some_and(|t| t.is_punct('(')) {
            return true;
        }
        let mut depth = 1;
        after += 3;
        while after < toks.len() && depth > 0 {
            if toks[after].is_punct('(') {
                depth += 1;
            } else if toks[after].is_punct(')') {
                depth -= 1;
            }
            after += 1;
        }
    }
}

/// Index just past the `;` ending the statement containing token `from`
/// (braces are skipped whole, so closures/blocks in arguments don't end the
/// statement early). Falls back to the enclosing block's end.
fn statement_end(toks: &[crate::lexer::Token], from: usize) -> usize {
    let mut i = from;
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return i; // end of enclosing block: statement over
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Walks backwards from the `.` of a lock call, collecting the receiver's
/// dotted path. Index expressions (`[i]`) are skipped; call parens end the
/// walk with the callee name kept (`registry().lock()` → `registry()`).
fn receiver_path(toks: &[crate::lexer::Token], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // tokens are consumed backwards at index `i - 1`
    while i > 0 {
        let t = &toks[i - 1];
        if t.kind == TokenKind::Ident {
            parts.push(t.text.clone());
            i -= 1;
            if i > 0 && toks[i - 1].is_punct('.') {
                i -= 1; // continue through the `a.b` chain
                continue;
            }
            break;
        } else if t.is_punct(']') {
            // Skip the index expression back to its `[`; the owner
            // expression directly precedes it.
            let mut depth = 1;
            i -= 1;
            while i > 0 && depth > 0 {
                i -= 1;
                if toks[i].is_punct(']') {
                    depth += 1;
                } else if toks[i].is_punct('[') {
                    depth -= 1;
                }
            }
            if depth != 0 {
                break;
            }
        } else if t.is_punct(')') {
            // A call: keep the callee name and stop.
            let mut depth = 1;
            i -= 1;
            while i > 0 && depth > 0 {
                i -= 1;
                if toks[i].is_punct(')') {
                    depth += 1;
                } else if toks[i].is_punct('(') {
                    depth -= 1;
                }
            }
            if depth == 0 && i > 0 && toks[i - 1].kind == TokenKind::Ident {
                parts.push(format!("{}()", toks[i - 1].text));
            }
            break;
        } else {
            break;
        }
    }
    parts.retain(|p| p != "self");
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Reports each distinct cycle in the merged `held -> acquired` graph.
fn cycles(edge_site: &BTreeMap<(String, String), (String, u32)>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (held, acquired) in edge_site.keys() {
        adj.entry(held).or_default().insert(acquired);
    }
    let site = |held: &str, acquired: &str| {
        let (file, line) = &edge_site[&(held.to_string(), acquired.to_string())];
        (file.clone(), *line)
    };
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    // Self-edges are immediate deadlocks with std's non-reentrant locks.
    for (&n, succ) in &adj {
        if succ.contains(n) && reported.insert(vec![n]) {
            let (file, line) = site(n, n);
            findings.push(Finding::new(
                Lint::LockOrder,
                file,
                line,
                format!(
                    "`{n}` is re-acquired while already held: self-deadlock \
                     with a non-reentrant lock"
                ),
            ));
        }
    }
    // DFS for longer cycles.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            // Bound the search: paths longer than the node count repeat.
            if path.len() > nodes.len() {
                continue;
            }
            for &next in adj.get(node).into_iter().flatten() {
                if next == start && path.len() > 1 {
                    let mut key: Vec<&str> = path.clone();
                    key.sort_unstable();
                    if reported.insert(key) {
                        let (file, line) = site(path[path.len() - 1], start);
                        findings.push(Finding::new(
                            Lint::LockOrder,
                            file,
                            line,
                            format!(
                                "lock-order cycle: {} -> {start}; \
                                 acquire in one global order to rule out deadlock",
                                path.join(" -> ")
                            ),
                        ));
                    }
                } else if !path.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        let graph = CallGraph::build(&files);
        check(&graph, &files)
    }

    fn run_one(src: &str) -> Vec<Finding> {
        run(vec![SourceFile::parse(
            "crates/demo/src/lib.rs",
            "demo",
            src.as_bytes(),
        )])
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src = "
            fn a(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
            fn b(&self) { let g1 = self.governor.lock(); let g2 = self.meter.lock(); }
        ";
        let f = run_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cycle"));
        assert!(f[0].message.contains("demo:meter"), "{f:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            fn a(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
            fn b(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
        ";
        assert!(run_one(src).is_empty());
    }

    #[test]
    fn sequential_blocks_do_not_nest() {
        // Guards in sibling blocks are never held together.
        let src = "
            fn a(&self) { { let g = self.meter.lock(); } { let g = self.governor.lock(); } }
            fn b(&self) { { let g = self.governor.lock(); } { let g = self.meter.lock(); } }
        ";
        assert!(run_one(src).is_empty());
    }

    #[test]
    fn reacquiring_the_same_lock_is_a_self_deadlock() {
        let src = "fn a(&self) { let g = self.state.lock(); let h = self.state.lock(); }";
        let f = run_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("re-acquired"));
    }

    #[test]
    fn rwlock_read_write_count_as_locks() {
        let src = "
            fn a(&self) { let g = self.map.read(); let h = self.log.write(); }
            fn b(&self) { let g = self.log.read(); let h = self.map.write(); }
        ";
        let f = run_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn stream_read_with_arguments_is_not_a_lock() {
        let src = "fn a(&mut self) { self.conn.read(&mut buf); self.other.lock(); }";
        assert!(run_one(src).is_empty());
    }

    #[test]
    fn indexed_receivers_collapse_to_one_node() {
        let src = "
            fn a(&self) { let g = self.shards[i].lock(); let h = self.audit.lock(); }
            fn b(&self) { let g = self.audit.lock(); let h = self.shards[j].lock(); }
        ";
        let f = run_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn chained_temporary_guards_do_not_nest() {
        // `self.db.lock().session()` drops its guard at the statement's end,
        // so the next statement's lock is not nested under it.
        let src = "
            fn a(&self) { let s = self.db.lock().session(); let b = self.db.lock().banner(); }
        ";
        assert!(run_one(src).is_empty());
    }

    #[test]
    fn unwrap_chained_guard_is_still_held() {
        // std's poison API: `.lock().unwrap()` yields the guard, which the
        // `let` keeps alive to the end of the block.
        let src = "
            fn a(&self) { let g = self.meter.lock().unwrap(); let h = self.governor.lock().unwrap(); }
            fn b(&self) { let g = self.governor.lock().unwrap(); let h = self.meter.lock().unwrap(); }
        ";
        let f = run_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_the_site() {
        let src = "
            fn a(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
            fn b(&self) {
                let g1 = self.governor.lock();
                // deliberate: gated by the governor epoch. rddr-analyze: allow(lock-order)
                let g2 = self.meter.lock();
            }
        ";
        assert!(run_one(src).is_empty());
    }

    #[test]
    fn call_mediated_self_deadlock_is_found() {
        // `outer` holds the guard across a call into `refresh`, which
        // re-acquires the same lock.
        let src = "
            fn outer(&self) { let g = self.state.lock(); self.refresh_once(); }
            fn refresh_once(&self) { let h = self.state.lock(); }
        ";
        let f = run_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("re-acquired"), "{f:?}");
    }

    #[test]
    fn cross_crate_cycle_is_detected() {
        let proxy = SourceFile::parse(
            "crates/proxy/src/session.rs",
            "proxy",
            "pub fn finish(&self) { let g = self.roster.lock(); rddr_audit::record(); }\n\
             pub fn poke(&self) { let g = self.roster.lock(); }"
                .as_bytes(),
        );
        let audit = SourceFile::parse(
            "crates/audit/src/lib.rs",
            "audit",
            "pub fn record() { let g = ring().lock(); }\n\
             pub fn sweep(p: &Proxy) { let g = ring().lock(); p.poke(); }"
                .as_bytes(),
        );
        let f = run(vec![proxy, audit]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cycle"), "{f:?}");
        assert!(f[0].message.contains("proxy:roster"), "{f:?}");
        assert!(f[0].message.contains("audit:ring()"), "{f:?}");
    }

    #[test]
    fn spawned_closures_are_a_thread_boundary() {
        // The guard held at the spawn point is not held inside the closure,
        // so the opposite textual order does not form a cycle.
        let src = "
            fn a(&self) { let g = self.m.lock(); std::thread::spawn(move || { let h = self.n.lock(); }); }
            fn b(&self) { let g = self.n.lock(); let h = self.m.lock(); }
        ";
        assert!(run_one(src).is_empty(), "{:?}", run_one(src));
    }
}
