//! Lock-order pass: builds a per-crate lock-acquisition graph and reports
//! cycles as potential deadlocks.
//!
//! Heuristic, in keeping with the token-level analysis: a lock site is a
//! `.lock()`, `.read()`, or `.write()` call **with no arguments** (stream
//! I/O `read(&mut buf)` takes a buffer and is not matched). The receiver is
//! the dotted path before the call (`self.` stripped, index expressions
//! skipped), so `self.shards[i].lock()` and `shards[j].lock()` name the
//! same node. A guard is assumed held until the end of its enclosing block,
//! so any lock acquired before that closing brace gets an edge from the
//! held lock. Edges from all files of one crate are merged; a cycle in the
//! merged graph (including a self-edge — re-acquiring a non-reentrant lock)
//! is reported at the first edge's site.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::{Finding, Lint};

/// One `A held while acquiring B` observation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Receiver path of the lock already held.
    pub held: String,
    /// Receiver path of the lock being acquired.
    pub acquired: String,
    /// File the edge was observed in.
    pub file: String,
    /// Line of the acquisition.
    pub line: u32,
}

/// Extracts lock-acquisition edges from one prepared file.
pub fn edges(file: &SourceFile) -> Vec<LockEdge> {
    let toks = &file.tokens;
    // Lock sites: (token index, end of enclosing block, receiver, line).
    let mut sites: Vec<(usize, usize, String, u32)> = Vec::new();
    let mut block_stack: Vec<usize> = Vec::new(); // open-brace token indices
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            block_stack.push(i);
        } else if t.is_punct('}') {
            block_stack.pop();
        }
        let is_lock_call = matches!(t.text.as_str(), "lock" | "read" | "write")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if !is_lock_call || file.allowed(Lint::LockOrder, t.line) {
            continue;
        }
        let Some(receiver) = receiver_path(toks, i - 1) else {
            continue;
        };
        let scope_end = if guard_is_temporary(toks, i + 3) {
            // `x.lock().do_thing()`: the guard is a temporary dropped at the
            // end of the statement, not a binding that lives to block end.
            statement_end(toks, i)
        } else {
            block_stack
                .last()
                .map(|&open| file.close_of(open))
                .unwrap_or(toks.len())
        };
        sites.push((i, scope_end, receiver, t.line));
    }
    let mut out = Vec::new();
    for (a, &(ia, end_a, ref held, _)) in sites.iter().enumerate() {
        for &(ib, _, ref acquired, line_b) in &sites[a + 1..] {
            // The guard taken at `ia` is live until its block closes at
            // `end_a`; a lock taken before that point nests under it.
            if ib < end_a && ib > ia {
                out.push(LockEdge {
                    held: held.clone(),
                    acquired: acquired.clone(),
                    file: file.path.clone(),
                    line: line_b,
                });
            }
        }
    }
    out
}

/// Whether the guard produced by a lock call is consumed by further method
/// chaining (and thus dropped at the end of the statement). `after` is the
/// token index just past the call's `()`. Chained `.unwrap()`/`.expect(…)`
/// still *yield* the guard (std's poison API), so they are skipped first.
fn guard_is_temporary(toks: &[crate::lexer::Token], mut after: usize) -> bool {
    loop {
        if !toks.get(after).is_some_and(|t| t.is_punct('.')) {
            return false;
        }
        let chained = toks.get(after + 1);
        if !chained.is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect")) {
            return true;
        }
        // Skip past the unwrap/expect call's parens.
        if !toks.get(after + 2).is_some_and(|t| t.is_punct('(')) {
            return true;
        }
        let mut depth = 1;
        after += 3;
        while after < toks.len() && depth > 0 {
            if toks[after].is_punct('(') {
                depth += 1;
            } else if toks[after].is_punct(')') {
                depth -= 1;
            }
            after += 1;
        }
    }
}

/// Index just past the `;` ending the statement containing token `from`
/// (braces are skipped whole, so closures/blocks in arguments don't end the
/// statement early). Falls back to the enclosing block's end.
fn statement_end(toks: &[crate::lexer::Token], from: usize) -> usize {
    let mut i = from;
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return i; // end of enclosing block: statement over
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Walks backwards from the `.` of a lock call, collecting the receiver's
/// dotted path. Index expressions (`[i]`) are skipped; call parens end the
/// walk with the callee name kept (`registry().lock()` → `registry()`).
fn receiver_path(toks: &[crate::lexer::Token], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // tokens are consumed backwards at index `i - 1`
    while i > 0 {
        let t = &toks[i - 1];
        if t.kind == TokenKind::Ident {
            parts.push(t.text.clone());
            i -= 1;
            if i > 0 && toks[i - 1].is_punct('.') {
                i -= 1; // continue through the `a.b` chain
                continue;
            }
            break;
        } else if t.is_punct(']') {
            // Skip the index expression back to its `[`; the owner
            // expression directly precedes it.
            let mut depth = 1;
            i -= 1;
            while i > 0 && depth > 0 {
                i -= 1;
                if toks[i].is_punct(']') {
                    depth += 1;
                } else if toks[i].is_punct('[') {
                    depth -= 1;
                }
            }
            if depth != 0 {
                break;
            }
        } else if t.is_punct(')') {
            // A call: keep the callee name and stop.
            let mut depth = 1;
            i -= 1;
            while i > 0 && depth > 0 {
                i -= 1;
                if toks[i].is_punct(')') {
                    depth += 1;
                } else if toks[i].is_punct('(') {
                    depth -= 1;
                }
            }
            if depth == 0 && i > 0 && toks[i - 1].kind == TokenKind::Ident {
                parts.push(format!("{}()", toks[i - 1].text));
            }
            break;
        } else {
            break;
        }
    }
    parts.retain(|p| p != "self");
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Merges edges from all files of one crate and reports each distinct cycle.
pub fn cycles(crate_name: &str, all_edges: &[LockEdge]) -> Vec<Finding> {
    // adjacency + first site per edge
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut site: BTreeMap<(&str, &str), (&str, u32)> = BTreeMap::new();
    for e in all_edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        site.entry((&e.held, &e.acquired))
            .or_insert((&e.file, e.line));
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    // Self-edges are immediate deadlocks with std's non-reentrant locks.
    for (&n, succ) in &adj {
        if succ.contains(n) {
            let (file, line) = site[&(n, n)];
            if reported.insert(vec![n]) {
                findings.push(Finding::new(
                    Lint::LockOrder,
                    file,
                    line,
                    format!("`{n}` is re-acquired while already held (crate `{crate_name}`): self-deadlock with a non-reentrant lock"),
                ));
            }
        }
    }
    // DFS for longer cycles.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            // Bound the search: paths longer than the node count repeat.
            if path.len() > nodes.len() {
                continue;
            }
            for &next in adj.get(node).into_iter().flatten() {
                if next == start && path.len() > 1 {
                    let mut key: Vec<&str> = path.clone();
                    key.sort_unstable();
                    if reported.insert(key) {
                        let (file, line) = site[&(path[path.len() - 1], start)];
                        findings.push(Finding::new(
                            Lint::LockOrder,
                            file,
                            line,
                            format!(
                                "lock-order cycle in crate `{crate_name}`: {} -> {start}; \
                                 acquire in one global order to rule out deadlock",
                                path.join(" -> ")
                            ),
                        ));
                    }
                } else if !path.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("demo.rs", "demo", src.as_bytes());
        cycles("demo", &edges(&f))
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src = "
            fn a(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
            fn b(&self) { let g1 = self.governor.lock(); let g2 = self.meter.lock(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cycle"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            fn a(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
            fn b(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn sequential_blocks_do_not_nest() {
        // Guards in sibling blocks are never held together.
        let src = "
            fn a(&self) { { let g = self.meter.lock(); } { let g = self.governor.lock(); } }
            fn b(&self) { { let g = self.governor.lock(); } { let g = self.meter.lock(); } }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn reacquiring_the_same_lock_is_a_self_deadlock() {
        let src = "fn a(&self) { let g = self.state.lock(); let h = self.state.lock(); }";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("re-acquired"));
    }

    #[test]
    fn rwlock_read_write_count_as_locks() {
        let src = "
            fn a(&self) { let g = self.map.read(); let h = self.log.write(); }
            fn b(&self) { let g = self.log.read(); let h = self.map.write(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn stream_read_with_arguments_is_not_a_lock() {
        let src = "fn a(&mut self) { self.conn.read(&mut buf); self.other.lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn indexed_receivers_collapse_to_one_node() {
        let src = "
            fn a(&self) { let g = self.shards[i].lock(); let h = self.audit.lock(); }
            fn b(&self) { let g = self.audit.lock(); let h = self.shards[j].lock(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn chained_temporary_guards_do_not_nest() {
        // `self.db.lock().session()` drops its guard at the statement's end,
        // so the next statement's lock is not nested under it.
        let src = "
            fn a(&self) { let s = self.db.lock().session(); let b = self.db.lock().banner(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unwrap_chained_guard_is_still_held() {
        // std's poison API: `.lock().unwrap()` yields the guard, which the
        // `let` keeps alive to the end of the block.
        let src = "
            fn a(&self) { let g = self.meter.lock().unwrap(); let h = self.governor.lock().unwrap(); }
            fn b(&self) { let g = self.governor.lock().unwrap(); let h = self.meter.lock().unwrap(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_the_site() {
        let src = "
            fn a(&self) { let g1 = self.meter.lock(); let g2 = self.governor.lock(); }
            fn b(&self) {
                let g1 = self.governor.lock();
                // deliberate: gated by the governor epoch. rddr-analyze: allow(lock-order)
                let g2 = self.meter.lock();
            }
        ";
        assert!(run(src).is_empty());
    }
}
