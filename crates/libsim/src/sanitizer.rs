//! Two HTML sanitizers written against different codebases (and, in the
//! paper, different *languages*: Python `lxml` vs Node.js `sanitize-html`).
//!
//! Reproduces the CVE-2014-3146 pair (§V-A): `lxml.html.clean` failed to
//! strip `javascript:` URLs containing embedded control characters, because
//! it checked the raw attribute text while browsers strip those characters
//! before interpreting the scheme. [`SanitizeHtml`] normalizes first;
//! [`LxmlClean`] does not — crafted input sails through it (CWE "Other" /
//! cross-site scripting).

use crate::vfs::VirtualFs;
use crate::xml::{parse, EntityPolicy, XmlNode};

/// Elements allowed through both sanitizers.
const ALLOWED_TAGS: &[&str] = &[
    "a", "b", "i", "em", "strong", "p", "div", "span", "ul", "li",
];
/// Attributes allowed through both sanitizers.
const ALLOWED_ATTRS: &[&str] = &["href", "title", "class"];

/// The REST-facing sanitizer API both implementations share.
pub trait HtmlSanitizer: Send + Sync {
    /// Removes unsafe markup from an HTML fragment.
    fn sanitize(&self, html: &str) -> String;

    /// Implementation name, for diagnostics.
    fn name(&self) -> &str;
}

/// Scheme check. `normalize` selects the safe behaviour.
fn is_dangerous_url(url: &str, normalize: bool) -> bool {
    let checked: String = if normalize {
        url.chars()
            .filter(|c| !c.is_control() && !c.is_whitespace())
            .collect::<String>()
            .to_ascii_lowercase()
    } else {
        url.trim().to_ascii_lowercase()
    };
    checked.starts_with("javascript:")
        || checked.starts_with("vbscript:")
        || checked.starts_with("data:")
}

fn escape_text(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn sanitize_node(node: &XmlNode, normalize_urls: bool, out: &mut String) {
    match node {
        XmlNode::Text(t) => out.push_str(&escape_text(t)),
        XmlNode::Element {
            name,
            attrs,
            children,
        } => {
            let tag = name.to_ascii_lowercase();
            if !ALLOWED_TAGS.contains(&tag.as_str()) {
                // Disallowed element: drop the tag, keep sanitized children
                // (both real libraries behave this way for unknown tags).
                for child in children {
                    sanitize_node(child, normalize_urls, out);
                }
                return;
            }
            out.push('<');
            out.push_str(&tag);
            for (k, v) in attrs {
                let key = k.to_ascii_lowercase();
                if !ALLOWED_ATTRS.contains(&key.as_str()) {
                    continue;
                }
                if key == "href" && is_dangerous_url(v, normalize_urls) {
                    continue;
                }
                out.push_str(&format!(" {key}=\"{}\"", v.replace('"', "&quot;")));
            }
            out.push('>');
            for child in children {
                sanitize_node(child, normalize_urls, out);
            }
            out.push_str(&format!("</{tag}>"));
        }
    }
}

fn sanitize_fragment(html: &str, normalize_urls: bool) -> String {
    // Wrap so fragments with multiple roots parse; reject DTDs outright.
    let wrapped = format!("<root>{html}</root>");
    let fs = VirtualFs::new();
    match parse(&wrapped, EntityPolicy::RejectDtd, &fs) {
        Ok(root) => {
            let mut out = String::new();
            for child in root.children() {
                sanitize_node(child, normalize_urls, &mut out);
            }
            out
        }
        // Unparseable input: escape it wholesale (fail closed).
        Err(_) => escape_text(html),
    }
}

/// The vulnerable sanitizer (`lxml.html.clean` stand-in, CVE-2014-3146).
#[derive(Debug, Clone, Copy, Default)]
pub struct LxmlClean;

impl LxmlClean {
    /// Creates the sanitizer.
    pub fn new() -> Self {
        LxmlClean
    }
}

impl HtmlSanitizer for LxmlClean {
    fn sanitize(&self, html: &str) -> String {
        sanitize_fragment(html, false)
    }

    fn name(&self) -> &str {
        "lxml-clean"
    }
}

/// The safe sanitizer (`sanitize-html` stand-in, "library in a different
/// language" in Table I).
#[derive(Debug, Clone, Copy, Default)]
pub struct SanitizeHtml;

impl SanitizeHtml {
    /// Creates the sanitizer.
    pub fn new() -> Self {
        SanitizeHtml
    }
}

impl HtmlSanitizer for SanitizeHtml {
    fn sanitize(&self, html: &str) -> String {
        sanitize_fragment(html, true)
    }

    fn name(&self) -> &str {
        "sanitize-html"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(html: &str) -> (String, String) {
        (
            LxmlClean::new().sanitize(html),
            SanitizeHtml::new().sanitize(html),
        )
    }

    #[test]
    fn benign_markup_is_preserved_identically() {
        for html in [
            r#"<p>hello <b>world</b></p>"#,
            r#"<a href="https://example.com" title="x">link</a>"#,
            r#"<ul><li>one</li><li>two</li></ul>"#,
            "plain text only",
        ] {
            let (a, b) = both(html);
            assert_eq!(a, b, "benign input must not diverge: {html:?}");
        }
    }

    #[test]
    fn script_tags_are_stripped_by_both() {
        let (a, b) = both("<p>x</p><script>alert(1)</script>");
        assert!(!a.contains("<script"));
        assert!(!b.contains("<script"));
        assert_eq!(a, b, "script bodies degrade to escaped text in both");
    }

    #[test]
    fn plain_javascript_href_is_stripped_by_both() {
        let (a, b) = both(r#"<a href="javascript:alert(1)">x</a>"#);
        assert!(!a.contains("javascript:"));
        assert!(!b.contains("javascript:"));
        assert_eq!(a, b);
    }

    #[test]
    fn cve_2014_3146_control_char_bypass_diverges() {
        // A TAB inside the scheme: browsers strip it; lxml's raw check
        // does not see "javascript:".
        let exploit = "<a href=\"java\tscript:alert(document.cookie)\">pwn</a>";
        let (lxml, safe) = both(exploit);
        assert!(
            lxml.contains("script:alert"),
            "lxml-clean must pass the payload through: {lxml}"
        );
        assert!(
            !safe.contains("script:alert"),
            "sanitize-html must strip it: {safe}"
        );
        assert_ne!(lxml, safe, "this is the divergence RDDR detects");
    }

    #[test]
    fn event_handler_attributes_dropped() {
        let (a, b) = both(r#"<p class="ok" onclick="evil()">x</p>"#);
        assert!(!a.contains("onclick"));
        assert!(!b.contains("onclick"));
        assert!(a.contains("class=\"ok\""));
    }

    #[test]
    fn unparseable_input_fails_closed() {
        let (a, b) = both("<a href='unterminated");
        assert!(!a.contains('<'));
        assert_eq!(a, b);
    }

    #[test]
    fn nested_disallowed_tags_keep_text() {
        let (a, _) = both("<div><blink>hello</blink></div>");
        assert!(a.contains("hello"));
        assert!(!a.contains("blink"));
    }
}
