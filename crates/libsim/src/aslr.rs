//! The ASLR proof-of-concept echo server (§V-E).
//!
//! The paper demonstrates RDDR defeating pointer leaks with "a simple echo
//! server that stores the requester's message in a buffer and returns it
//! without checking for overflow. If the requester overwrites the null
//! terminator at the end of the buffer, the program leaks a pointer
//! adjacent to the buffer in the stack."
//!
//! This module simulates the process: each instance gets its own randomized
//! stack base (the OS's ASLR), a 64-byte buffer, and a saved pointer
//! adjacent to it. Overlong inputs run past the terminator and the "read"
//! returns the pointer bytes — a different value in every instance, which
//! is precisely the divergence RDDR's filter-pair logic cannot mistake for
//! agreement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size of the stack buffer the echo server copies requests into.
pub const BUFFER_SIZE: usize = 64;

/// A simulated process with an ASLR-randomized address space.
#[derive(Debug, Clone)]
pub struct AslrEcho {
    stack_base: u64,
}

impl AslrEcho {
    /// "Launches" the process: the OS assigns a randomized stack base.
    ///
    /// The seed models the kernel's entropy source — distinct per instance
    /// in a real deployment, controllable in tests.
    pub fn launch(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Canonical user-space stack region with 28 bits of entropy,
        // 16-byte aligned — the shape of Linux mmap ASLR.
        let slide: u64 = rng.gen_range(0..(1u64 << 28)) << 4;
        Self {
            stack_base: 0x7ffc_0000_0000 + slide,
        }
    }

    /// The address the buffer lives at (base + frame offset).
    pub fn buffer_address(&self) -> u64 {
        self.stack_base + 0x100
    }

    /// The saved pointer adjacent to the buffer — the leak target. In the
    /// paper's exploit this lets the attacker compute a gadget address.
    pub fn adjacent_pointer(&self) -> u64 {
        self.stack_base + 0x1f8
    }

    /// Handles one echo request.
    ///
    /// Requests up to [`BUFFER_SIZE`] bytes echo cleanly. Longer requests
    /// overflow: the response contains the first `BUFFER_SIZE` bytes and
    /// then "reads past the terminator", leaking the adjacent pointer as
    /// eight raw bytes (rendered hex for transport).
    pub fn echo(&self, request: &[u8]) -> Vec<u8> {
        if request.len() <= BUFFER_SIZE {
            return request.to_vec();
        }
        let mut out = request[..BUFFER_SIZE].to_vec();
        out.extend_from_slice(format!("{:016x}", self.adjacent_pointer()).as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_requests_echo_exactly() {
        let p = AslrEcho::launch(1);
        assert_eq!(p.echo(b"hello"), b"hello");
        let full = vec![b'x'; BUFFER_SIZE];
        assert_eq!(p.echo(&full), full);
    }

    #[test]
    fn overflow_leaks_a_pointer() {
        let p = AslrEcho::launch(1);
        let overlong = vec![b'A'; BUFFER_SIZE + 1];
        let out = p.echo(&overlong);
        assert_eq!(out.len(), BUFFER_SIZE + 16);
        let leaked = std::str::from_utf8(&out[BUFFER_SIZE..]).unwrap();
        assert_eq!(leaked, format!("{:016x}", p.adjacent_pointer()));
    }

    #[test]
    fn distinct_instances_leak_distinct_pointers() {
        let a = AslrEcho::launch(1);
        let b = AslrEcho::launch(2);
        assert_ne!(a.adjacent_pointer(), b.adjacent_pointer());
        let overlong = vec![b'A'; BUFFER_SIZE + 8];
        assert_ne!(
            a.echo(&overlong),
            b.echo(&overlong),
            "divergence under attack"
        );
        assert_eq!(
            a.echo(b"benign"),
            b.echo(b"benign"),
            "agreement when benign"
        );
    }

    #[test]
    fn addresses_are_aligned_and_canonical() {
        for seed in 0..50 {
            let p = AslrEcho::launch(seed);
            assert_eq!(p.buffer_address() % 16, 0);
            assert!(p.buffer_address() >= 0x7ffc_0000_0000);
            assert!(p.adjacent_pointer() > p.buffer_address());
        }
    }

    #[test]
    fn same_seed_same_layout() {
        assert_eq!(
            AslrEcho::launch(7).adjacent_pointer(),
            AslrEcho::launch(7).adjacent_pointer()
        );
    }
}
