//! Two independently written markdown-to-HTML renderers.
//!
//! Reproduces the CVE-2020-11888 pair (§V-A): Python's `markdown2` in
//! safe mode could still emit attacker-controlled markup through crafted
//! link syntax, while `markdown` escaped it. Both renderers here support
//! the same dialect — paragraphs, `#` headings, `**bold**`, `*emphasis*`,
//! `` `code` `` and `[text](url)` links — and both claim to be "safe mode";
//! they differ in one validation detail:
//!
//! * [`MarkdownSafe`] normalizes link URLs *before* checking the scheme, so
//!   `java\tscript:alert(1)` is recognized as `javascript:` and refused.
//! * [`Markdown2`] checks the raw URL prefix only — whitespace/control
//!   characters smuggle a script URL through, mirroring the CVE class.

/// A markdown renderer exposing the shared REST-facing API.
pub trait MarkdownRenderer: Send + Sync {
    /// Renders markdown to HTML in "safe mode".
    fn render(&self, markdown: &str) -> String;

    /// Implementation name, for diagnostics.
    fn name(&self) -> &str;
}

/// Escapes HTML metacharacters.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

/// Renders inline spans; `strict_urls` selects the safe URL check.
fn render_inline(text: &str, strict_urls: bool) -> String {
    let mut out = String::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // **bold**
        if chars[i] == '*' && chars.get(i + 1) == Some(&'*') {
            if let Some(close) = find_seq(&chars, i + 2, &['*', '*']).filter(|&c| c > i + 2) {
                let inner: String = chars[i + 2..close].iter().collect();
                out.push_str("<strong>");
                out.push_str(&render_inline(&inner, strict_urls));
                out.push_str("</strong>");
                i = close + 2;
                continue;
            }
        }
        // *em*
        if chars[i] == '*' {
            if let Some(close) = find_seq(&chars, i + 1, &['*']).filter(|&c| c > i + 1) {
                let inner: String = chars[i + 1..close].iter().collect();
                out.push_str("<em>");
                out.push_str(&render_inline(&inner, strict_urls));
                out.push_str("</em>");
                i = close + 1;
                continue;
            }
        }
        // `code`
        if chars[i] == '`' {
            if let Some(close) = find_seq(&chars, i + 1, &['`']).filter(|&c| c > i + 1) {
                let inner: String = chars[i + 1..close].iter().collect();
                out.push_str("<code>");
                out.push_str(&escape(&inner));
                out.push_str("</code>");
                i = close + 1;
                continue;
            }
        }
        // [text](url)
        if chars[i] == '[' {
            if let Some(close_bracket) = find_seq(&chars, i + 1, &[']']) {
                if chars.get(close_bracket + 1) == Some(&'(') {
                    if let Some(close_paren) = find_seq(&chars, close_bracket + 2, &[')']) {
                        let label: String = chars[i + 1..close_bracket].iter().collect();
                        let url: String = chars[close_bracket + 2..close_paren].iter().collect();
                        out.push_str(&render_link(&label, &url, strict_urls));
                        i = close_paren + 1;
                        continue;
                    }
                }
            }
        }
        out.push_str(&escape(&chars[i].to_string()));
        i += 1;
    }
    out
}

fn find_seq(chars: &[char], from: usize, needle: &[char]) -> Option<usize> {
    (from..chars.len().saturating_sub(needle.len() - 1))
        .find(|&k| &chars[k..k + needle.len()] == needle)
}

fn render_link(label: &str, url: &str, strict: bool) -> String {
    let dangerous = if strict {
        // Normalize first: strip whitespace/control characters, lowercase.
        let normalized: String = url
            .chars()
            .filter(|c| !c.is_whitespace() && !c.is_control())
            .collect::<String>()
            .to_ascii_lowercase();
        normalized.starts_with("javascript:")
            || normalized.starts_with("data:")
            || normalized.starts_with("vbscript:")
    } else {
        // The markdown2-style check: raw prefix only — bypassable with
        // embedded whitespace (the CVE-2020-11888 class).
        let lowered = url.to_ascii_lowercase();
        lowered.starts_with("javascript:")
            || lowered.starts_with("data:")
            || lowered.starts_with("vbscript:")
    };
    if dangerous {
        format!("<a href=\"#\" rel=\"nofollow\">{}</a>", escape(label))
    } else {
        format!("<a href=\"{}\">{}</a>", escape(url), escape(label))
    }
}

fn render_blocks(markdown: &str, strict_urls: bool) -> String {
    let mut out = String::new();
    for block in markdown.split("\n\n") {
        let block = block.trim();
        if block.is_empty() {
            continue;
        }
        if let Some(heading) = block.strip_prefix("# ") {
            out.push_str("<h1>");
            out.push_str(&render_inline(heading, strict_urls));
            out.push_str("</h1>\n");
        } else if let Some(heading) = block.strip_prefix("## ") {
            out.push_str("<h2>");
            out.push_str(&render_inline(heading, strict_urls));
            out.push_str("</h2>\n");
        } else {
            out.push_str("<p>");
            out.push_str(&render_inline(block, strict_urls));
            out.push_str("</p>\n");
        }
    }
    out
}

/// The safe renderer (the paper's `markdown` library stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct MarkdownSafe;

impl MarkdownSafe {
    /// Creates the renderer.
    pub fn new() -> Self {
        MarkdownSafe
    }
}

impl MarkdownRenderer for MarkdownSafe {
    fn render(&self, markdown: &str) -> String {
        render_blocks(markdown, true)
    }

    fn name(&self) -> &str {
        "markdown-safe"
    }
}

/// The vulnerable renderer (the paper's `markdown2`, CVE-2020-11888).
#[derive(Debug, Clone, Copy, Default)]
pub struct Markdown2;

impl Markdown2 {
    /// Creates the renderer.
    pub fn new() -> Self {
        Markdown2
    }
}

impl MarkdownRenderer for Markdown2 {
    fn render(&self, markdown: &str) -> String {
        render_blocks(markdown, false)
    }

    fn name(&self) -> &str {
        "markdown2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(md: &str) -> (String, String) {
        (MarkdownSafe::new().render(md), Markdown2::new().render(md))
    }

    #[test]
    fn benign_markdown_renders_identically() {
        for md in [
            "# Title\n\nHello **world** with *style* and `code`.",
            "[site](https://example.com) is fine",
            "plain paragraph",
            "## h2\n\nsecond block",
        ] {
            let (a, b) = both(md);
            assert_eq!(a, b, "benign input must not diverge: {md:?}");
        }
    }

    #[test]
    fn raw_html_is_escaped_by_both() {
        let (a, b) = both("<script>alert(1)</script>");
        assert!(!a.contains("<script>"));
        assert!(!b.contains("<script>"));
        assert_eq!(a, b);
    }

    #[test]
    fn plain_javascript_url_blocked_by_both() {
        let (a, b) = both("[x](javascript:alert(1))");
        assert!(a.contains("href=\"#\""));
        assert!(b.contains("href=\"#\""));
        assert_eq!(a, b);
    }

    #[test]
    fn cve_2020_11888_whitespace_bypass_diverges() {
        // Tab smuggled into the scheme: markdown2's raw prefix check misses
        // it; the safe renderer normalizes first.
        let exploit = "[click me](java\tscript:alert(document.cookie))";
        let (safe, vulnerable) = both(exploit);
        assert!(
            safe.contains("href=\"#\""),
            "safe renderer must neutralize: {safe}"
        );
        assert!(
            vulnerable.contains("javascript:") || vulnerable.contains("java\tscript:"),
            "vulnerable renderer must let the payload through: {vulnerable}"
        );
        assert_ne!(safe, vulnerable, "this is the divergence RDDR detects");
    }

    #[test]
    fn bold_and_em_render() {
        let html = MarkdownSafe::new().render("**bold** and *em*");
        assert!(html.contains("<strong>bold</strong>"));
        assert!(html.contains("<em>em</em>"));
    }

    #[test]
    fn code_spans_escape_content() {
        let html = MarkdownSafe::new().render("`<b>`");
        assert!(html.contains("<code>&lt;b&gt;</code>"));
    }

    #[test]
    fn unterminated_markers_fall_through_as_text() {
        let html = MarkdownSafe::new().render("a ** b");
        assert_eq!(html, "<p>a ** b</p>\n");
    }
}
