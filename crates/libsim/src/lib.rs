//! Diverse mini-library pairs for the RDDR evaluation (§V-A, §V-E).
//!
//! The paper's RESTful case studies pair a vulnerable library with "a
//! library with similar functionality but a different code base" and show
//! that RDDR detects the divergence when an exploit fires:
//!
//! | CVE | paper's pair | this crate's pair |
//! |---|---|---|
//! | CVE-2020-13757 | `rsa` / `Crypto` | [`rsa::RsaLib`] / [`rsa::CryptoLib`] |
//! | CVE-2020-11888 | `markdown2` / `markdown` | [`markdown::Markdown2`] / [`markdown::MarkdownSafe`] |
//! | CVE-2020-10799 | `svglib` / `cairosvg` | [`svg::SvgLib`] / [`svg::CairoSvg`] |
//! | CVE-2014-3146 | `lxml` / `sanitize-html` | [`sanitizer::LxmlClean`] / [`sanitizer::SanitizeHtml`] |
//!
//! Each pair implements one shared trait so the HTTP wrappers in
//! `rddr-httpsim` can expose them behind identical REST APIs. The
//! vulnerable member reproduces its CVE's *observable* behaviour — the
//! output divergence RDDR diffs — not the original memory-level bug (see
//! `DESIGN.md`, substitution ledger).
//!
//! The crate also provides the substrates these need: a mini XML parser
//! with optional DTD entity expansion ([`xml`]), a virtual filesystem for
//! XXE targets ([`vfs`]), and the ASLR'd echo server of §V-E ([`aslr`]).

pub mod aslr;
pub mod markdown;
pub mod rsa;
pub mod sanitizer;
pub mod svg;
pub mod vfs;
pub mod xml;

pub use aslr::AslrEcho;
pub use markdown::{Markdown2, MarkdownRenderer, MarkdownSafe};
pub use rsa::{craft_forged_ciphertext, CryptoLib, RsaDecryptor, RsaKeyPair, RsaLib};
pub use sanitizer::{HtmlSanitizer, LxmlClean, SanitizeHtml};
pub use svg::{CairoSvg, SvgLib, SvgRasterizer};
pub use vfs::VirtualFs;
