//! Two RSA decryption implementations over small (64-bit) moduli.
//!
//! Reproduces the CVE-2020-13757 pair (§V-A): `python-rsa` accepted
//! ciphertexts whose decryption had leading null bytes stripped, letting an
//! attacker craft ciphertexts that decrypt "successfully" to content the
//! strict implementation rejects as malformed padding.
//!
//! Both implementations share keys and textbook RSA math; they differ in
//! padding validation:
//!
//! * [`CryptoLib`] (strict, the `Crypto` stand-in) requires the full
//!   PKCS#1-style frame `00 02 ‖ nonzero-padding ‖ 00 ‖ message` at the
//!   exact modulus width and errors otherwise.
//! * [`RsaLib`] (vulnerable) skips leading zero bytes, then accepts *any*
//!   `02 … 00`-delimited frame it can find — crafted ciphertexts yield
//!   attacker-influenced plaintext instead of an error.
//!
//! The keys are toy-sized (32-bit primes). This is a behavioural testbed
//! for N-version divergence, **not** cryptography.

/// RSA decryption error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaError(pub String);

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rsa error: {}", self.0)
    }
}

impl std::error::Error for RsaError {}

/// A toy RSA key pair (64-bit modulus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsaKeyPair {
    /// Modulus `n = p·q`.
    pub n: u64,
    /// Public exponent.
    pub e: u64,
    /// Private exponent.
    pub d: u64,
}

impl RsaKeyPair {
    /// The fixed demo key pair used by the evaluation services (both
    /// instances must share keys so benign traffic agrees).
    pub fn demo() -> Self {
        // p, q are 32-bit primes; e = 65537.
        let p: u64 = 4_294_967_291; // 2^32 - 5
        let q: u64 = 4_294_967_279; // 2^32 - 17
        let n = p * q;
        let phi = (p - 1) * (q - 1);
        let e = 65_537;
        let d = mod_inverse(e, phi).expect("e is coprime to phi");
        Self { n, e, d }
    }

    /// Encrypts a 4-byte message block with the padding frame
    /// `00 02 pp pp 00 m0 m1 m2` (8 bytes = modulus width).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError`] if the message exceeds 3 bytes.
    pub fn encrypt(&self, message: &[u8]) -> Result<u64, RsaError> {
        if message.len() > 3 {
            return Err(RsaError("message too long for toy modulus".into()));
        }
        let mut frame = [0u8; 8];
        frame[0] = 0x00;
        frame[1] = 0x02;
        // Fixed nonzero padding keeps the N instances in agreement.
        let start = 8 - message.len();
        const PAD: [u8; 4] = [0xa7, 0x3b, 0x5d, 0x91];
        for i in 2..start - 1 {
            frame[i] = PAD[(i - 2) % PAD.len()];
        }
        frame[start - 1] = 0x00;
        frame[start..].copy_from_slice(message);
        let m = u64::from_be_bytes(frame);
        Ok(mod_pow(m % self.n, self.e, self.n))
    }

    /// Raw RSA: `c^d mod n`, returned as the 8-byte frame.
    pub fn decrypt_raw(&self, ciphertext: u64) -> [u8; 8] {
        mod_pow(ciphertext % self.n, self.d, self.n).to_be_bytes()
    }
}

/// Modular exponentiation via 128-bit intermediates.
fn mod_pow(base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut result: u128 = 1;
    let m = modulus as u128;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    result as u64
}

/// Extended Euclid modular inverse.
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(m as i128) as u64)
}

/// The REST-facing decryption API both implementations share.
pub trait RsaDecryptor: Send + Sync {
    /// Decrypts and unpads, returning the message bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError`] on malformed padding (strictness varies —
    /// that's the point).
    fn decrypt(&self, key: &RsaKeyPair, ciphertext: u64) -> Result<Vec<u8>, RsaError>;

    /// Implementation name, for diagnostics.
    fn name(&self) -> &str;
}

/// The strict implementation (`Crypto` stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct CryptoLib;

impl CryptoLib {
    /// Creates the decryptor.
    pub fn new() -> Self {
        CryptoLib
    }
}

impl RsaDecryptor for CryptoLib {
    fn decrypt(&self, key: &RsaKeyPair, ciphertext: u64) -> Result<Vec<u8>, RsaError> {
        let frame = key.decrypt_raw(ciphertext);
        if frame[0] != 0x00 || frame[1] != 0x02 {
            return Err(RsaError("invalid padding header".into()));
        }
        // Padding must be nonzero until a 0x00 delimiter.
        let delim = frame[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| RsaError("missing padding delimiter".into()))?;
        if delim == 0 {
            return Err(RsaError("empty padding".into()));
        }
        Ok(frame[2 + delim + 1..].to_vec())
    }

    fn name(&self) -> &str {
        "crypto-lib"
    }
}

/// The vulnerable implementation (`python-rsa` stand-in, CVE-2020-13757).
#[derive(Debug, Clone, Copy, Default)]
pub struct RsaLib;

impl RsaLib {
    /// Creates the decryptor.
    pub fn new() -> Self {
        RsaLib
    }
}

impl RsaDecryptor for RsaLib {
    fn decrypt(&self, key: &RsaKeyPair, ciphertext: u64) -> Result<Vec<u8>, RsaError> {
        let frame = key.decrypt_raw(ciphertext);
        // CVE behaviour: strip leading zeros instead of checking position,
        // then accept any 0x02 … 0x00 frame that remains.
        let stripped: Vec<u8> = frame.iter().copied().skip_while(|&b| b == 0).collect();
        if stripped.first() != Some(&0x02) {
            return Err(RsaError("invalid padding header".into()));
        }
        let delim = stripped[1..]
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| RsaError("missing padding delimiter".into()))?;
        Ok(stripped[1 + delim + 1..].to_vec())
    }

    fn name(&self) -> &str {
        "rsa-lib"
    }
}

/// Crafts a ciphertext that the vulnerable decryptor accepts but the strict
/// one rejects: its decryption starts `00 00 02 …` (an extra zero byte), so
/// zero-stripping "finds" a frame while position checking fails.
pub fn craft_forged_ciphertext(key: &RsaKeyPair) -> u64 {
    // Search deterministically for a plaintext of the malformed shape and
    // encrypt it with the public exponent.
    for candidate in 1u64..50_000 {
        let frame = [
            0x00,
            0x00,
            0x02,
            0x41,
            0x00,
            b'p',
            b'w',
            (candidate % 251) as u8 + 1,
        ];
        let m = u64::from_be_bytes(frame);
        if m < key.n {
            let c = mod_pow(m, key.e, key.n);
            if key.decrypt_raw(c) == frame {
                return c;
            }
        }
    }
    unreachable!("a forgeable frame always exists under the toy modulus");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_agrees_across_implementations() {
        let key = RsaKeyPair::demo();
        let c = key.encrypt(b"abc").unwrap();
        let strict = CryptoLib::new().decrypt(&key, c).unwrap();
        let lax = RsaLib::new().decrypt(&key, c).unwrap();
        assert_eq!(strict, b"abc");
        assert_eq!(strict, lax, "benign ciphertexts must agree");
    }

    #[test]
    fn short_messages_round_trip() {
        let key = RsaKeyPair::demo();
        for msg in [&b"a"[..], b"xy"] {
            let c = key.encrypt(msg).unwrap();
            assert_eq!(CryptoLib::new().decrypt(&key, c).unwrap(), msg);
        }
    }

    #[test]
    fn oversized_message_rejected() {
        let key = RsaKeyPair::demo();
        assert!(key.encrypt(b"toolong").is_err());
    }

    #[test]
    fn cve_2020_13757_forged_ciphertext_diverges() {
        let key = RsaKeyPair::demo();
        let forged = craft_forged_ciphertext(&key);
        let strict = CryptoLib::new().decrypt(&key, forged);
        let lax = RsaLib::new().decrypt(&key, forged);
        assert!(
            strict.is_err(),
            "strict implementation must reject the forgery"
        );
        assert!(lax.is_ok(), "vulnerable implementation must accept it");
        assert!(
            lax.unwrap().starts_with(b"pw"),
            "attacker-influenced plaintext"
        );
    }

    #[test]
    fn mod_inverse_sanity() {
        assert_eq!(mod_inverse(3, 11), Some(4));
        assert_eq!(mod_inverse(4, 8), None, "non-coprime has no inverse");
    }

    #[test]
    fn mod_pow_sanity() {
        assert_eq!(mod_pow(4, 13, 497), 445);
        assert_eq!(mod_pow(2, 10, 1000), 24);
    }

    #[test]
    fn demo_key_is_consistent() {
        let k = RsaKeyPair::demo();
        // e·d ≡ 1 (mod phi) implies m^(ed) = m for any m < n.
        let m = 123_456_789u64;
        let c = mod_pow(m, k.e, k.n);
        assert_eq!(mod_pow(c, k.d, k.n), m);
    }
}
