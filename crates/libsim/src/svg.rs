//! Two SVG → PNG rasterizers over the mini XML parser.
//!
//! Reproduces the CVE-2020-10799 pair (§V-A): `svglib` resolved XML
//! external entities while converting SVG to PNG, allowing file disclosure
//! (CWE-611); `cairosvg` refused DTDs. The rasterizer here is a tiny
//! deterministic renderer — `rect`, `circle` and `text` elements painted
//! onto a monochrome grid and serialized as a PNG-like byte blob — enough
//! for two implementations' outputs to be byte-comparable by RDDR.

use crate::vfs::VirtualFs;
use crate::xml::{parse, EntityPolicy, XmlError, XmlNode};

/// Rasterization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvgError(pub String);

impl std::fmt::Display for SvgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "svg error: {}", self.0)
    }
}

impl std::error::Error for SvgError {}

impl From<XmlError> for SvgError {
    fn from(e: XmlError) -> Self {
        SvgError(e.to_string())
    }
}

/// The REST-facing rasterizer API both implementations share.
pub trait SvgRasterizer: Send + Sync {
    /// Converts an SVG document to PNG-like bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SvgError`] on malformed SVG (and, for the safe
    /// implementation, on any document with a DTD).
    fn rasterize(&self, svg: &str, fs: &VirtualFs) -> Result<Vec<u8>, SvgError>;

    /// Implementation name, for diagnostics.
    fn name(&self) -> &str;
}

const GRID: usize = 24;

/// Renders the parsed document onto a monochrome grid and serializes it.
///
/// Deterministic across implementations: both rasterizers share this
/// painter, so agreement/divergence is decided purely by entity policy.
fn paint(root: &XmlNode) -> Result<Vec<u8>, SvgError> {
    if root.name() != Some("svg") {
        return Err(SvgError(format!(
            "root element must be <svg>, found <{}>",
            root.name().unwrap_or("?")
        )));
    }
    let mut grid = [[0u8; GRID]; GRID];
    paint_children(root, &mut grid)?;
    // "PNG": magic + dimensions + packed rows + text payload checksum.
    let mut out = b"\x89PNGSIM\x00".to_vec();
    out.push(GRID as u8);
    out.push(GRID as u8);
    for row in &grid {
        let mut packed = 0u32;
        for (i, &cell) in row.iter().enumerate() {
            if cell != 0 {
                packed |= 1 << i;
            }
        }
        out.extend_from_slice(&packed.to_be_bytes());
    }
    // Text content participates byte-for-byte (this is the leak channel:
    // an expanded external entity lands here).
    let text = collect_text(root);
    out.extend_from_slice(&(text.len() as u32).to_be_bytes());
    out.extend_from_slice(text.as_bytes());
    Ok(out)
}

fn paint_children(node: &XmlNode, grid: &mut [[u8; GRID]; GRID]) -> Result<(), SvgError> {
    for child in node.children() {
        match child.name() {
            Some("rect") => {
                let x = attr_num(child, "x")?;
                let y = attr_num(child, "y")?;
                let w = attr_num(child, "width")?;
                let h = attr_num(child, "height")?;
                for row in grid.iter_mut().take((y + h).min(GRID)).skip(y) {
                    for cell in row.iter_mut().take((x + w).min(GRID)).skip(x) {
                        *cell = 1;
                    }
                }
            }
            Some("circle") => {
                let cx = attr_num(child, "cx")? as i64;
                let cy = attr_num(child, "cy")? as i64;
                let r = attr_num(child, "r")? as i64;
                for (yy, row) in grid.iter_mut().enumerate() {
                    for (xx, cell) in row.iter_mut().enumerate() {
                        let (dx, dy) = (xx as i64 - cx, yy as i64 - cy);
                        if dx.pow(2) + dy.pow(2) <= r.pow(2) {
                            *cell = 1;
                        }
                    }
                }
            }
            Some("text") | Some("g") | Some("tspan") => paint_children(child, grid)?,
            Some(other) => {
                return Err(SvgError(format!("unsupported element <{other}>")));
            }
            None => {}
        }
    }
    Ok(())
}

fn collect_text(node: &XmlNode) -> String {
    node.text_content()
}

fn attr_num(node: &XmlNode, key: &str) -> Result<usize, SvgError> {
    let raw = node
        .attr(key)
        .ok_or_else(|| SvgError(format!("missing attribute {key}")))?;
    raw.trim()
        .parse::<usize>()
        .map(|v| v.min(GRID))
        .map_err(|_| SvgError(format!("non-numeric {key}: {raw:?}")))
}

/// The vulnerable rasterizer (`svglib` stand-in): resolves external
/// entities against the virtual filesystem (CVE-2020-10799, CWE-611).
#[derive(Debug, Clone, Copy, Default)]
pub struct SvgLib;

impl SvgLib {
    /// Creates the rasterizer.
    pub fn new() -> Self {
        SvgLib
    }
}

impl SvgRasterizer for SvgLib {
    fn rasterize(&self, svg: &str, fs: &VirtualFs) -> Result<Vec<u8>, SvgError> {
        let root = parse(svg, EntityPolicy::ResolveExternal, fs)?;
        paint(&root)
    }

    fn name(&self) -> &str {
        "svglib"
    }
}

/// The safe rasterizer (`cairosvg` stand-in): refuses any document with a
/// document type definition.
#[derive(Debug, Clone, Copy, Default)]
pub struct CairoSvg;

impl CairoSvg {
    /// Creates the rasterizer.
    pub fn new() -> Self {
        CairoSvg
    }
}

impl SvgRasterizer for CairoSvg {
    fn rasterize(&self, svg: &str, fs: &VirtualFs) -> Result<Vec<u8>, SvgError> {
        let root = parse(svg, EntityPolicy::RejectDtd, fs)?;
        paint(&root)
    }

    fn name(&self) -> &str {
        "cairosvg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENIGN: &str = r#"<svg width="24" height="24">
        <rect x="2" y="2" width="5" height="5"/>
        <circle cx="12" cy="12" r="4"/>
        <text>logo</text>
    </svg>"#;

    const XXE: &str = r#"<!DOCTYPE svg [<!ENTITY xxe SYSTEM "file:///app/secrets.env">]>
<svg width="24" height="24"><text>&xxe;</text></svg>"#;

    #[test]
    fn benign_svg_renders_identically() {
        let fs = VirtualFs::with_defaults();
        let a = SvgLib::new().rasterize(BENIGN, &fs).unwrap();
        let b = CairoSvg::new().rasterize(BENIGN, &fs).unwrap();
        assert_eq!(a, b, "benign documents must not diverge");
        assert!(a.starts_with(b"\x89PNGSIM"));
    }

    #[test]
    fn cve_2020_10799_xxe_diverges() {
        let fs = VirtualFs::with_defaults();
        let vulnerable = SvgLib::new().rasterize(XXE, &fs).unwrap();
        let safe = CairoSvg::new().rasterize(XXE, &fs);
        assert!(
            String::from_utf8_lossy(&vulnerable).contains("hunter2"),
            "svglib must disclose the file contents"
        );
        assert!(safe.is_err(), "cairosvg must refuse the DTD");
    }

    #[test]
    fn rect_pixels_are_painted() {
        let fs = VirtualFs::new();
        let png = CairoSvg::new()
            .rasterize(
                r#"<svg><rect x="0" y="0" width="2" height="1"/></svg>"#,
                &fs,
            )
            .unwrap();
        // First packed row (after 10-byte header) must have bits 0 and 1 set.
        let row0 = u32::from_be_bytes(png[10..14].try_into().unwrap());
        assert_eq!(row0 & 0b11, 0b11);
    }

    #[test]
    fn unsupported_elements_error_in_both() {
        let fs = VirtualFs::new();
        let doc = r#"<svg><script>alert(1)</script></svg>"#;
        assert!(SvgLib::new().rasterize(doc, &fs).is_err());
        assert!(CairoSvg::new().rasterize(doc, &fs).is_err());
    }

    #[test]
    fn non_svg_root_is_rejected() {
        let fs = VirtualFs::new();
        assert!(CairoSvg::new().rasterize("<html/>", &fs).is_err());
    }

    #[test]
    fn oversized_coordinates_clamp() {
        let fs = VirtualFs::new();
        let png = CairoSvg::new()
            .rasterize(
                r#"<svg><rect x="9999" y="9999" width="9999" height="9999"/></svg>"#,
                &fs,
            )
            .unwrap();
        assert!(png.starts_with(b"\x89PNGSIM"));
    }
}
