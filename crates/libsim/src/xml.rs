//! A mini XML parser with optional DTD entity expansion.
//!
//! Supports the subset the SVG rasterizers and HTML sanitizers need:
//! elements with attributes, text, comments, XML declarations, and —
//! crucially for CVE-2020-10799 — `<!DOCTYPE … [<!ENTITY …>]>` internal
//! subsets with both internal and `SYSTEM "file://…"` external entities.
//! Whether external entities are *resolved* is the caller's choice; that
//! policy difference is exactly the diversity the paper exploits.

use std::collections::BTreeMap;

use crate::vfs::VirtualFs;

/// An XML node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// An element with attributes and children.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
        /// Child nodes.
        children: Vec<XmlNode>,
    },
    /// Character data (entities already expanded).
    Text(String),
}

impl XmlNode {
    /// The element name, if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            XmlNode::Element { name, .. } => Some(name),
            XmlNode::Text(_) => None,
        }
    }

    /// Attribute lookup for elements.
    pub fn attr(&self, key: &str) -> Option<&str> {
        match self {
            XmlNode::Element { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(key))
                .map(|(_, v)| v.as_str()),
            XmlNode::Text(_) => None,
        }
    }

    /// Concatenated text content of this subtree.
    pub fn text_content(&self) -> String {
        match self {
            XmlNode::Text(t) => t.clone(),
            XmlNode::Element { children, .. } => {
                children.iter().map(XmlNode::text_content).collect()
            }
        }
    }

    /// Children, for elements (empty for text).
    pub fn children(&self) -> &[XmlNode] {
        match self {
            XmlNode::Element { children, .. } => children,
            XmlNode::Text(_) => &[],
        }
    }
}

/// How the parser treats DTD-declared external entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityPolicy {
    /// Refuse documents that declare a DTD at all (cairosvg-like).
    RejectDtd,
    /// Parse the DTD but expand external entities to the empty string.
    IgnoreExternal,
    /// Resolve `SYSTEM "file://…"` entities against a [`VirtualFs`] —
    /// the vulnerable behaviour (svglib-like, CVE-2020-10799).
    ResolveExternal,
}

/// XML parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError(pub String);

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xml error: {}", self.0)
    }
}

impl std::error::Error for XmlError {}

/// Parses a document under the given entity policy.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed markup, or (under
/// [`EntityPolicy::RejectDtd`]) on any document containing a DOCTYPE.
pub fn parse(input: &str, policy: EntityPolicy, fs: &VirtualFs) -> Result<XmlNode, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        entities: BTreeMap::new(),
        policy,
        fs,
    };
    p.skip_ws();
    p.skip_prolog()?;
    p.skip_ws();
    if p.starts_with("<!DOCTYPE") {
        if policy == EntityPolicy::RejectDtd {
            return Err(XmlError("document type definitions are not allowed".into()));
        }
        p.parse_doctype()?;
        p.skip_ws();
    }
    let root = p.element()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(XmlError(format!("trailing content at offset {}", p.pos)));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    entities: BTreeMap<String, String>,
    policy: EntityPolicy,
    fs: &'a VirtualFs,
}

impl<'a> Parser<'a> {
    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        if self.starts_with("<?xml") {
            let end = self.find("?>")?;
            self.pos = end + 2;
        }
        Ok(())
    }

    fn find(&self, needle: &str) -> Result<usize, XmlError> {
        self.bytes[self.pos..]
            .windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .map(|i| self.pos + i)
            .ok_or_else(|| XmlError(format!("expected {needle:?}")))
    }

    fn parse_doctype(&mut self) -> Result<(), XmlError> {
        // <!DOCTYPE name [ internal subset ]>
        self.pos += "<!DOCTYPE".len();
        let close = self.find(">")?;
        let bracket = self.bytes[self.pos..close].iter().position(|&b| b == b'[');
        if let Some(open_rel) = bracket {
            let open = self.pos + open_rel + 1;
            let close_bracket = self.bytes[open..]
                .iter()
                .position(|&b| b == b']')
                .map(|i| open + i)
                .ok_or_else(|| XmlError("unterminated internal subset".into()))?;
            let subset = std::str::from_utf8(&self.bytes[open..close_bracket])
                .map_err(|_| XmlError("non-utf8 dtd".into()))?
                .to_string();
            self.parse_entities(&subset)?;
            let real_close = self.bytes[close_bracket..]
                .iter()
                .position(|&b| b == b'>')
                .map(|i| close_bracket + i)
                .ok_or_else(|| XmlError("unterminated DOCTYPE".into()))?;
            self.pos = real_close + 1;
        } else {
            self.pos = close + 1;
        }
        Ok(())
    }

    fn parse_entities(&mut self, subset: &str) -> Result<(), XmlError> {
        let mut rest = subset;
        while let Some(start) = rest.find("<!ENTITY") {
            let after = &rest[start + "<!ENTITY".len()..];
            let end = after
                .find('>')
                .ok_or_else(|| XmlError("unterminated <!ENTITY".into()))?;
            let decl = after[..end].trim();
            self.parse_entity_decl(decl)?;
            rest = &after[end + 1..];
        }
        Ok(())
    }

    fn parse_entity_decl(&mut self, decl: &str) -> Result<(), XmlError> {
        let mut parts = decl.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| XmlError("entity needs a name".into()))?
            .to_string();
        let rest = decl[name.len()..].trim();
        if let Some(system) = rest.strip_prefix("SYSTEM") {
            let url = system.trim().trim_matches(|c| c == '"' || c == '\'');
            let value = match self.policy {
                EntityPolicy::ResolveExternal => {
                    let path = url.strip_prefix("file://").unwrap_or(url);
                    self.fs.read(path).unwrap_or("").to_string()
                }
                _ => String::new(),
            };
            self.entities.insert(name, value);
        } else {
            let value = rest.trim_matches(|c| c == '"' || c == '\'').to_string();
            self.entities.insert(name, value);
        }
        Ok(())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if !self.starts_with("<") {
            return Err(XmlError(format!("expected element at offset {}", self.pos)));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.pos += 2;
                return Ok(XmlNode::Element {
                    name,
                    attrs,
                    children: Vec::new(),
                });
            }
            if self.starts_with(">") {
                self.pos += 1;
                break;
            }
            let key = self.name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(XmlError(format!("attribute {key} needs a value")));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = *self
                .bytes
                .get(self.pos)
                .filter(|&&b| b == b'"' || b == b'\'')
                .ok_or_else(|| XmlError("attribute value must be quoted".into()))?;
            self.pos += 1;
            let end = self.bytes[self.pos..]
                .iter()
                .position(|&b| b == quote)
                .map(|i| self.pos + i)
                .ok_or_else(|| XmlError("unterminated attribute value".into()))?;
            let raw = std::str::from_utf8(&self.bytes[self.pos..end])
                .map_err(|_| XmlError("non-utf8 attribute".into()))?;
            attrs.push((key, self.expand_entities(raw)));
            self.pos = end + 1;
        }
        // Children until matching close tag.
        let mut children = Vec::new();
        loop {
            if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(XmlError(format!("mismatched </{close}> for <{name}>")));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(XmlError("malformed close tag".into()));
                }
                self.pos += 1;
                return Ok(XmlNode::Element {
                    name,
                    attrs,
                    children,
                });
            }
            if self.starts_with("<") {
                children.push(self.element()?);
                continue;
            }
            if self.pos >= self.bytes.len() {
                return Err(XmlError(format!("unterminated <{name}>")));
            }
            let end = self.bytes[self.pos..]
                .iter()
                .position(|&b| b == b'<')
                .map(|i| self.pos + i)
                .unwrap_or(self.bytes.len());
            let raw = std::str::from_utf8(&self.bytes[self.pos..end])
                .map_err(|_| XmlError("non-utf8 text".into()))?;
            let text = self.expand_entities(raw);
            if !text.trim().is_empty() {
                children.push(XmlNode::Text(text));
            }
            self.pos = end;
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':' | b'.'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError(format!("expected a name at offset {}", self.pos)));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn expand_entities(&self, raw: &str) -> String {
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            let after = &rest[amp + 1..];
            match after.find(';') {
                Some(semi) => {
                    let name = &after[..semi];
                    match name {
                        "lt" => out.push('<'),
                        "gt" => out.push('>'),
                        "amp" => out.push('&'),
                        "quot" => out.push('"'),
                        "apos" => out.push('\''),
                        custom => match self.entities.get(custom) {
                            Some(value) => out.push_str(value),
                            None => {
                                out.push('&');
                                out.push_str(custom);
                                out.push(';');
                            }
                        },
                    }
                    rest = &after[semi + 1..];
                }
                None => {
                    out.push('&');
                    rest = after;
                }
            }
        }
        out.push_str(rest);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> VirtualFs {
        VirtualFs::with_defaults()
    }

    #[test]
    fn parses_nested_elements_and_attrs() {
        let doc = r#"<svg width="10"><rect x="1" y="2"/><text>hi</text></svg>"#;
        let root = parse(doc, EntityPolicy::RejectDtd, &fs()).unwrap();
        assert_eq!(root.name(), Some("svg"));
        assert_eq!(root.attr("width"), Some("10"));
        assert_eq!(root.children().len(), 2);
        assert_eq!(root.children()[1].text_content(), "hi");
    }

    #[test]
    fn builtin_entities_expand() {
        let doc = "<t>a &lt;b&gt; &amp; c</t>";
        let root = parse(doc, EntityPolicy::RejectDtd, &fs()).unwrap();
        assert_eq!(root.text_content(), "a <b> & c");
    }

    #[test]
    fn internal_dtd_entity_expands() {
        let doc = r#"<!DOCTYPE t [<!ENTITY who "world">]><t>hello &who;</t>"#;
        let root = parse(doc, EntityPolicy::IgnoreExternal, &fs()).unwrap();
        assert_eq!(root.text_content(), "hello world");
    }

    #[test]
    fn reject_dtd_policy_refuses_doctype() {
        let doc = r#"<!DOCTYPE t [<!ENTITY x "1">]><t>&x;</t>"#;
        assert!(parse(doc, EntityPolicy::RejectDtd, &fs()).is_err());
    }

    #[test]
    fn external_entity_resolves_only_under_vulnerable_policy() {
        let doc = r#"<!DOCTYPE t [<!ENTITY xxe SYSTEM "file:///etc/passwd">]><t>&xxe;</t>"#;
        let leaked = parse(doc, EntityPolicy::ResolveExternal, &fs()).unwrap();
        assert!(leaked.text_content().contains("root:x:0:0"));
        let safe = parse(doc, EntityPolicy::IgnoreExternal, &fs()).unwrap();
        assert_eq!(safe.text_content().trim(), "");
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse("<a><b></a></b>", EntityPolicy::RejectDtd, &fs()).is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let root = parse("<t><!-- hidden --><u/></t>", EntityPolicy::RejectDtd, &fs()).unwrap();
        assert_eq!(root.children().len(), 1);
    }

    #[test]
    fn xml_prolog_is_accepted() {
        let root = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><t/>",
            EntityPolicy::RejectDtd,
            &fs(),
        )
        .unwrap();
        assert_eq!(root.name(), Some("t"));
    }

    #[test]
    fn self_closing_with_attrs() {
        let root = parse(
            r#"<rect width="5" height="3"/>"#,
            EntityPolicy::RejectDtd,
            &fs(),
        )
        .unwrap();
        assert_eq!(root.attr("height"), Some("3"));
    }

    #[test]
    fn attribute_entities_expand() {
        let doc = r#"<!DOCTYPE t [<!ENTITY u "http://x">]><t href="&u;/p"/>"#;
        let root = parse(doc, EntityPolicy::IgnoreExternal, &fs()).unwrap();
        assert_eq!(root.attr("href"), Some("http://x/p"));
    }
}
