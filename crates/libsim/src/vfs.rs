use std::collections::BTreeMap;

/// A virtual filesystem: the target of simulated XXE file disclosure.
///
/// The paper's CVE-2020-10799 exploit uses an XML external entity to read
/// host files through `svglib`. Real file access is out of scope for a
/// simulator, so the vulnerable rasterizer resolves `file://` entities
/// against this in-memory tree instead (see `DESIGN.md`).
///
/// # Examples
///
/// ```
/// use rddr_libsim::VirtualFs;
///
/// let fs = VirtualFs::with_defaults();
/// assert!(fs.read("/etc/passwd").unwrap().contains("root"));
/// assert!(fs.read("/nonexistent").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualFs {
    files: BTreeMap<String, String>,
}

impl VirtualFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// A filesystem pre-populated with the classic XXE targets.
    pub fn with_defaults() -> Self {
        let mut fs = Self::new();
        fs.write(
            "/etc/passwd",
            "root:x:0:0:root:/root:/bin/bash\napp:x:1000:1000::/home/app:/bin/sh\n",
        );
        fs.write("/etc/hostname", "svc-render-0\n");
        fs.write(
            "/app/secrets.env",
            "DB_PASSWORD=hunter2\nAPI_KEY=sk-verysecret\n",
        );
        fs
    }

    /// Creates or replaces a file.
    pub fn write(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(path.into(), contents.into());
    }

    /// Reads a file, if present.
    pub fn read(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the filesystem is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut fs = VirtualFs::new();
        fs.write("/tmp/x", "data");
        assert_eq!(fs.read("/tmp/x"), Some("data"));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn defaults_include_xxe_targets() {
        let fs = VirtualFs::with_defaults();
        assert!(fs.read("/etc/passwd").is_some());
        assert!(fs.read("/app/secrets.env").unwrap().contains("hunter2"));
    }

    #[test]
    fn overwrite_replaces() {
        let mut fs = VirtualFs::new();
        fs.write("/a", "1");
        fs.write("/a", "2");
        assert_eq!(fs.read("/a"), Some("2"));
        assert_eq!(fs.len(), 1);
    }
}
