//! Property-based framing tests: however the transport fragments the byte
//! stream, the protocol modules must produce identical frames — the proxies
//! feed them arbitrary chunk boundaries.

use bytes::BytesMut;
use proptest::prelude::*;
use rddr_core::{Direction, Frame, Protocol};
use rddr_protocols::pg::PgMessage;
use rddr_protocols::{HttpProtocol, JsonProtocol, PgProtocol};

/// Splits `wire` at the given fractional points and feeds the pieces through
/// `split_frames`, collecting every produced frame.
fn frames_chunked(
    protocol: &dyn Protocol,
    wire: &[u8],
    cuts: &[usize],
    direction: Direction,
) -> Vec<Frame> {
    let mut positions: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
    positions.push(0);
    positions.push(wire.len());
    positions.sort_unstable();
    positions.dedup();
    let mut buf = BytesMut::new();
    let mut frames = Vec::new();
    for window in positions.windows(2) {
        buf.extend_from_slice(&wire[window[0]..window[1]]);
        frames.extend(protocol.split_frames(&mut buf, direction).unwrap());
    }
    assert!(buf.is_empty(), "complete input must be fully consumed");
    frames
}

fn http_wire(bodies: &[String]) -> Vec<u8> {
    let mut wire = Vec::new();
    for body in bodies {
        wire.extend(
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes(),
        );
    }
    wire
}

proptest! {
    /// HTTP framing is chunking-invariant.
    #[test]
    fn http_framing_is_chunking_invariant(
        bodies in proptest::collection::vec("[ -~]{0,64}", 1..4),
        cuts in proptest::collection::vec(0usize..4096, 0..12),
    ) {
        let p = HttpProtocol::new();
        let wire = http_wire(&bodies);
        let whole = frames_chunked(&p, &wire, &[], Direction::Response);
        let pieces = frames_chunked(&p, &wire, &cuts, Direction::Response);
        prop_assert_eq!(whole.len(), bodies.len());
        prop_assert_eq!(whole, pieces);
    }

    /// PostgreSQL wire framing is chunking-invariant.
    #[test]
    fn pg_framing_is_chunking_invariant(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..8),
        cuts in proptest::collection::vec(0usize..4096, 0..12),
    ) {
        let p = PgProtocol::new();
        let mut wire = Vec::new();
        for payload in &payloads {
            wire.extend(PgMessage { tag: b'D', payload: payload.clone() }.encode());
        }
        wire.extend(PgMessage { tag: b'Z', payload: b"I".to_vec() }.encode());
        let whole = frames_chunked(&p, &wire, &[], Direction::Response);
        let pieces = frames_chunked(&p, &wire, &cuts, Direction::Response);
        prop_assert_eq!(whole.len(), payloads.len() + 1);
        prop_assert_eq!(whole, pieces);
    }

    /// JSON line framing is chunking-invariant.
    #[test]
    fn json_framing_is_chunking_invariant(
        values in proptest::collection::vec(-1000i64..1000, 1..6),
        cuts in proptest::collection::vec(0usize..512, 0..8),
    ) {
        let p = JsonProtocol::new();
        let wire: Vec<u8> = values
            .iter()
            .map(|v| format!("{{\"v\": {v}}}\n"))
            .collect::<String>()
            .into_bytes();
        let whole = frames_chunked(&p, &wire, &[], Direction::Response);
        let pieces = frames_chunked(&p, &wire, &cuts, Direction::Response);
        prop_assert_eq!(whole.len(), values.len());
        prop_assert_eq!(whole, pieces);
    }

    /// HTTP tokenization is insensitive to how the body was transfer-framed:
    /// a content-length body and the equivalent single-chunk chunked body
    /// tokenize identically.
    #[test]
    fn http_tokenize_ignores_transfer_framing(body in "[ -~]{1,64}") {
        let p = HttpProtocol::new();
        let plain = Frame::new(
            "http:response",
            format!(
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes(),
        );
        let chunked = Frame::new(
            "http:response",
            format!(
                "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n{body}\r\n0\r\n\r\n",
                body.len()
            )
            .into_bytes(),
        );
        let body_of = |f: &Frame| -> Vec<Vec<u8>> {
            p.tokenize(f)
                .into_iter()
                .filter(|s| s.label == "http:body")
                .map(|s| s.payload)
                .collect()
        };
        prop_assert_eq!(body_of(&plain), body_of(&chunked));
    }

    /// The engine renders the same verdict whatever chunking the transport
    /// delivered — the end-to-end version of the properties above.
    #[test]
    fn engine_verdict_is_chunking_invariant(
        lines in proptest::collection::vec("[a-z]{1,16}", 1..6),
        corrupt in any::<bool>(),
        cuts in proptest::collection::vec(0usize..512, 0..6),
    ) {
        use rddr_core::{EngineConfig, NVersionEngine, Verdict};
        use rddr_core::protocol::LineProtocol;
        let mut a: Vec<u8> = lines.join("\n").into_bytes();
        a.push(b'\n');
        let mut b = a.clone();
        if corrupt {
            b.extend_from_slice(b"EXTRA\n");
        }
        let whole = {
            let mut e = NVersionEngine::new(
                EngineConfig::builder(2).build().unwrap(),
                LineProtocol::new(),
            );
            matches!(
                e.evaluate_responses(&[a.clone(), b.clone()]).unwrap(),
                Verdict::Divergent(_)
            )
        };
        let pieces = {
            let mut e = NVersionEngine::new(
                EngineConfig::builder(2).build().unwrap(),
                LineProtocol::new(),
            );
            // Feed instance 1's bytes in arbitrary pieces.
            e.push_response(0, &a).unwrap();
            let mut positions: Vec<usize> =
                cuts.iter().map(|&c| c % (b.len() + 1)).collect();
            positions.push(0);
            positions.push(b.len());
            positions.sort_unstable();
            positions.dedup();
            for w in positions.windows(2) {
                e.push_response(1, &b[w[0]..w[1]]).unwrap();
            }
            e.finish_exchange().unwrap().report.diverged()
        };
        prop_assert_eq!(whole, pieces);
        prop_assert_eq!(whole, corrupt);
    }
}
