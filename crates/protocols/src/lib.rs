//! Application-layer protocol modules for RDDR (§IV-B1 of the paper).
//!
//! "RDDR supports multiple transport and application layer protocols. …
//! Support for application layer protocols is implemented by modules that
//! comply with a standard interface, allowing developers to extend RDDR to
//! support other protocols."
//!
//! This crate provides the three rich modules the paper describes, each
//! implementing [`rddr_core::Protocol`]:
//!
//! * [`HttpProtocol`] — HTTP/1.1 framing (Content-Length and chunked),
//!   newline tokenization, header interpretation, transfer decoding before
//!   diffing, and CSRF ephemeral-state support.
//! * [`PgProtocol`] — PostgreSQL v3 wire-format framing; messages are
//!   tokenized by type, `ParameterStatus`/`BackendKeyData` are treated as
//!   known variance, and an exchange completes at `ReadyForQuery`.
//! * [`JsonProtocol`] — newline-delimited JSON documents diffed structurally
//!   (path/value segments), via a hand-written parser (no `serde_json`;
//!   see `DESIGN.md` dependency ledger).
//!
//! The simpler `line` and `raw` modules live in `rddr_core::protocol`.

pub mod http;
pub mod json;
pub mod pg;

pub use http::HttpProtocol;
pub use json::{parse_json, JsonProtocol, JsonValue};
pub use pg::{PgMessage, PgProtocol};
