//! The JSON protocol module.
//!
//! The paper lists JSON among RDDR's supported application protocols
//! (§IV-B1). This module frames newline-delimited JSON documents (the
//! framing used by the paper's RESTful microservices) and diffs them
//! *structurally*: each document is flattened to ordered `path = value`
//! segments, so two instances that serialize the same object with different
//! key order or whitespace still compare equal.
//!
//! The parser is hand-written to keep dependencies to the sanctioned
//! offline set (no `serde_json`; see `DESIGN.md`).

use std::collections::BTreeMap;
use std::fmt;

use bytes::BytesMut;
use rddr_core::{Direction, Frame, Protocol, RddrError, Result, Segment};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are sorted (`BTreeMap`) so serialization is canonical.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Element lookup for arrays.
    pub fn index(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Flattens the value into ordered `(path, scalar-rendering)` pairs.
    pub fn flatten(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, path: &str, out: &mut Vec<(String, String)>) {
        match self {
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push((path.to_string(), "{}".to_string()));
                }
                for (k, v) in map {
                    v.flatten_into(&format!("{path}/{k}"), out);
                }
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push((path.to_string(), "[]".to_string()));
                }
                for (i, v) in items.iter().enumerate() {
                    v.flatten_into(&format!("{path}/{i}"), out);
                }
            }
            scalar => out.push((path.to_string(), scalar.to_string())),
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write!(f, "{:?}", s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{:?}:{v}", k)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`RddrError::Protocol`] on malformed input or trailing garbage.
pub fn parse_json(input: &str) -> Result<JsonValue> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(RddrError::Protocol(format!(
            "trailing bytes after json document at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> RddrError {
        RddrError::Protocol(format!("json: {what} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {text}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", JsonValue::Null),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(&format!("unexpected byte {:?}", c as char))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.err("bad escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-utf8 \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(self.err(&format!("bad escape \\{}", other as char))),
                },
                byte => {
                    // Re-assemble UTF-8 sequences byte-wise.
                    let mut chunk = vec![byte];
                    let extra = match byte {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        0xf0..=0xf7 => 3,
                        _ => return Err(self.err("invalid utf-8 in string")),
                    };
                    for _ in 0..extra {
                        chunk.push(self.bump().ok_or_else(|| self.err("truncated utf-8"))?);
                    }
                    out.push_str(
                        std::str::from_utf8(&chunk)
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// The JSON protocol module: newline-delimited documents, structural diff.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonProtocol;

impl JsonProtocol {
    /// Creates the JSON module.
    pub fn new() -> Self {
        JsonProtocol
    }
}

impl Protocol for JsonProtocol {
    fn name(&self) -> &str {
        "json"
    }

    fn split_frames(&self, buf: &mut BytesMut, _direction: Direction) -> Result<Vec<Frame>> {
        let mut frames = Vec::new();
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line = buf.split_to(pos + 1);
            frames.push(Frame::new("json:document", line.to_vec()));
        }
        Ok(frames)
    }

    fn tokenize(&self, frame: &Frame) -> Vec<Segment> {
        let text = String::from_utf8_lossy(&frame.bytes);
        match parse_json(text.trim()) {
            Ok(value) => value
                .flatten()
                .into_iter()
                .map(|(path, rendered)| Segment::new(format!("json:{path}"), rendered.into_bytes()))
                .collect(),
            Err(_) => vec![Segment::new("json:malformed", frame.bytes.clone())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-2.5").unwrap(), JsonValue::Number(-2.5));
        assert_eq!(
            parse_json("\"hi\\nthere\"").unwrap(),
            JsonValue::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"user": {"name": "ada", "ids": [1, 2]}}"#).unwrap();
        assert_eq!(
            v.get("user").unwrap().get("name").unwrap().as_str(),
            Some("ada")
        );
        assert_eq!(
            v.get("user")
                .unwrap()
                .get("ids")
                .unwrap()
                .index(1)
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("{} extra").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "nul", "1.2.3"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse_json("\"\\u0041\\u00e9\"").unwrap(),
            JsonValue::String("Aé".into())
        );
    }

    #[test]
    fn key_order_does_not_affect_diffing() {
        let p = JsonProtocol::new();
        let a = Frame::new("json:document", br#"{"a":1,"b":2}"#.to_vec());
        let b = Frame::new("json:document", br#"{ "b" : 2, "a" : 1 }"#.to_vec());
        assert_eq!(p.tokenize(&a), p.tokenize(&b));
    }

    #[test]
    fn value_difference_produces_differing_segment() {
        let p = JsonProtocol::new();
        let a = p.tokenize(&Frame::new("json:document", br#"{"balance":100}"#.to_vec()));
        let b = p.tokenize(&Frame::new("json:document", br#"{"balance":999}"#.to_vec()));
        assert_ne!(a, b);
        assert_eq!(a[0].label, "json:/balance");
    }

    #[test]
    fn flatten_paths_are_stable_and_ordered() {
        let v = parse_json(r#"{"z": [true, null], "a": {"k": "v"}}"#).unwrap();
        let flat = v.flatten();
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["/a/k", "/z/0", "/z/1"]);
    }

    #[test]
    fn empty_containers_flatten_to_markers() {
        let v = parse_json(r#"{"xs": [], "o": {}}"#).unwrap();
        let flat = v.flatten();
        assert!(flat.contains(&("/xs".to_string(), "[]".to_string())));
        assert!(flat.contains(&("/o".to_string(), "{}".to_string())));
    }

    #[test]
    fn frames_on_newlines() {
        let p = JsonProtocol::new();
        let mut buf = BytesMut::from(&b"{\"a\":1}\n{\"a\":2}\n{\"part"[..]);
        let frames = p.split_frames(&mut buf, Direction::Response).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(&buf[..], b"{\"part");
    }

    #[test]
    fn malformed_document_still_tokenizes_for_comparison() {
        let p = JsonProtocol::new();
        let segs = p.tokenize(&Frame::new("json:document", b"not json\n".to_vec()));
        assert_eq!(segs[0].label, "json:malformed");
    }

    #[test]
    fn display_renders_canonical_form() {
        let v = parse_json(r#"{"b": [1, "x"], "a": true}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"a":true,"b":[1,"x"]}"#);
    }
}
