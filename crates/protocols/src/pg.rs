//! The PostgreSQL wire-protocol module.
//!
//! "The PostgreSQL module tokenizes traffic into separate messages according
//! to the PostgreSQL message format and differences messages of known
//! critical types" (§IV-B1).
//!
//! The v3 wire format frames every backend/frontend message as a one-byte
//! type tag followed by a big-endian `i32` length (which includes itself).
//! The one exception is the frontend *startup* message, which has no tag.
//!
//! Critical (diffed) message types are the ones that can carry data out of
//! the database: `DataRow`, `RowDescription`, `CommandComplete`,
//! `ErrorResponse`, `NoticeResponse` (the leak channel of CVE-2017-7484 and
//! CVE-2019-10130 is a `NOTICE`). Session-identity messages
//! (`ParameterStatus`, `BackendKeyData`) are inherently instance-specific
//! and are treated as non-critical, with operator-visible known-variance
//! rules still applicable to the critical set (§IV-B4, used for
//! `server_version`).

use bytes::BytesMut;
use rddr_core::{Direction, Frame, Protocol, RddrError, Result, Segment};

/// A decoded PostgreSQL wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PgMessage {
    /// The type tag (`b'D'` for `DataRow`, etc.); `0` for untagged startup.
    pub tag: u8,
    /// The message payload (after the length word).
    pub payload: Vec<u8>,
}

impl PgMessage {
    /// Human-readable name of the message type.
    pub fn type_name(&self) -> &'static str {
        pg_type_name(self.tag)
    }

    /// Encodes the message back to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 5);
        if self.tag != 0 {
            out.push(self.tag);
        }
        out.extend_from_slice(&((self.payload.len() as i32 + 4).to_be_bytes()));
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one message from the front of `buf`, if complete.
    pub fn decode(buf: &[u8], startup_allowed: bool) -> Result<Option<(PgMessage, usize)>> {
        if buf.is_empty() {
            return Ok(None);
        }
        let tagged = !startup_allowed || buf[0].is_ascii_alphabetic();
        let (tag, len_off) = if tagged { (buf[0], 1) } else { (0u8, 0) };
        if buf.len() < len_off + 4 {
            return Ok(None);
        }
        let len = i32::from_be_bytes(buf[len_off..len_off + 4].try_into().expect("4 bytes"));
        if len < 4 {
            return Err(RddrError::Protocol(format!("pg message length {len} < 4")));
        }
        let total = len_off + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        Ok(Some((
            PgMessage {
                tag,
                payload: buf[len_off + 4..total].to_vec(),
            },
            total,
        )))
    }
}

/// Maps a tag byte to the v3 protocol message name.
pub fn pg_type_name(tag: u8) -> &'static str {
    match tag {
        0 => "Startup",
        b'R' => "Authentication",
        b'S' => "ParameterStatus",
        b'K' => "BackendKeyData",
        b'Z' => "ReadyForQuery",
        b'T' => "RowDescription",
        b'D' => "DataRow",
        b'C' => "CommandComplete",
        b'E' => "ErrorResponse",
        b'N' => "NoticeResponse",
        b'Q' => "Query",
        b'X' => "Terminate",
        b'P' => "Parse",
        b'B' => "Bind",
        b'p' => "PasswordMessage",
        b'I' => "EmptyQueryResponse",
        _ => "Unknown",
    }
}

/// Whether a backend message type is diffed across instances.
fn is_critical(tag: u8) -> bool {
    matches!(tag, b'T' | b'D' | b'C' | b'E' | b'N' | b'I' | 0 | b'Q')
}

/// The PostgreSQL protocol module.
#[derive(Debug, Clone, Copy, Default)]
pub struct PgProtocol;

impl PgProtocol {
    /// Creates the PostgreSQL module.
    pub fn new() -> Self {
        PgProtocol
    }
}

impl Protocol for PgProtocol {
    fn name(&self) -> &str {
        "postgres"
    }

    fn split_frames(&self, buf: &mut BytesMut, direction: Direction) -> Result<Vec<Frame>> {
        let mut frames = Vec::new();
        loop {
            let startup_allowed = direction == Direction::Request;
            let Some((msg, consumed)) = PgMessage::decode(buf, startup_allowed)? else {
                break;
            };
            let _ = buf.split_to(consumed);
            let label = format!("pg:{}", msg.type_name());
            let frame = if is_critical(msg.tag) {
                Frame::new(label, msg.encode())
            } else {
                Frame::non_critical(label, msg.encode())
            };
            frames.push(frame);
        }
        Ok(frames)
    }

    fn tokenize(&self, frame: &Frame) -> Vec<Segment> {
        match PgMessage::decode(&frame.bytes, frame.label == "pg:Startup") {
            Ok(Some((msg, _))) => {
                vec![Segment::new(format!("pg:{}", msg.type_name()), msg.payload)]
            }
            _ => vec![Segment::new("pg:malformed", frame.bytes.clone())],
        }
    }

    fn exchange_complete(&self, frames: &[Frame], direction: Direction) -> bool {
        match direction {
            // A query's response cycle ends at ReadyForQuery.
            Direction::Response => frames.iter().any(|f| f.label == "pg:ReadyForQuery"),
            Direction::Request => !frames.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(tag: u8, payload: &[u8]) -> Vec<u8> {
        PgMessage {
            tag,
            payload: payload.to_vec(),
        }
        .encode()
    }

    #[test]
    fn decode_round_trips_encode() {
        let wire = msg(b'D', b"row-bytes");
        let (decoded, used) = PgMessage::decode(&wire, false).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(decoded.tag, b'D');
        assert_eq!(decoded.payload, b"row-bytes");
        assert_eq!(decoded.encode(), wire);
    }

    #[test]
    fn partial_message_yields_none() {
        let wire = msg(b'D', b"row");
        assert!(PgMessage::decode(&wire[..3], false).unwrap().is_none());
        assert!(PgMessage::decode(&wire[..wire.len() - 1], false)
            .unwrap()
            .is_none());
    }

    #[test]
    fn negative_length_is_an_error() {
        let bad = [b'D', 0xff, 0xff, 0xff, 0xff];
        assert!(PgMessage::decode(&bad, false).is_err());
    }

    #[test]
    fn startup_message_has_no_tag() {
        // Startup: length(8) + version 196608.
        let mut wire = 8i32.to_be_bytes().to_vec();
        wire.extend(196608i32.to_be_bytes());
        let (decoded, used) = PgMessage::decode(&wire, true).unwrap().unwrap();
        assert_eq!(decoded.tag, 0);
        assert_eq!(used, 8);
    }

    #[test]
    fn split_frames_labels_and_criticality() {
        let p = PgProtocol::new();
        let mut wire = msg(b'S', b"server_version\x0010.7\x00");
        wire.extend(msg(b'T', b"rowdesc"));
        wire.extend(msg(b'D', b"data"));
        wire.extend(msg(b'Z', b"I"));
        let mut buf = BytesMut::from(&wire[..]);
        let frames = p.split_frames(&mut buf, Direction::Response).unwrap();
        let labels: Vec<&str> = frames.iter().map(|f| f.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "pg:ParameterStatus",
                "pg:RowDescription",
                "pg:DataRow",
                "pg:ReadyForQuery"
            ]
        );
        assert!(!frames[0].critical, "ParameterStatus is session identity");
        assert!(frames[1].critical);
        assert!(frames[2].critical);
        assert!(!frames[3].critical, "ReadyForQuery carries txn status only");
        assert!(buf.is_empty());
    }

    #[test]
    fn exchange_completes_at_ready_for_query() {
        let p = PgProtocol::new();
        let mut buf = BytesMut::from(&msg(b'D', b"data")[..]);
        let mut frames = p.split_frames(&mut buf, Direction::Response).unwrap();
        assert!(!p.exchange_complete(&frames, Direction::Response));
        buf.extend_from_slice(&msg(b'Z', b"I"));
        frames.extend(p.split_frames(&mut buf, Direction::Response).unwrap());
        assert!(p.exchange_complete(&frames, Direction::Response));
    }

    #[test]
    fn tokenize_exposes_payload_for_diffing() {
        let p = PgProtocol::new();
        let frame = Frame::new("pg:NoticeResponse", msg(b'N', b"leak 42 1000"));
        let segs = p.tokenize(&frame);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].label, "pg:NoticeResponse");
        assert_eq!(segs[0].payload, b"leak 42 1000");
    }

    #[test]
    fn notice_divergence_is_detectable_end_to_end() {
        // The CVE-2017-7484 shape: one instance emits NOTICE leaks, the
        // other errors out — different critical frames.
        use rddr_core::{EngineConfig, NVersionEngine, Verdict};
        let mut leaking = msg(b'N', b"NOTICE: leak 42");
        leaking.extend(msg(b'C', b"SELECT 1"));
        leaking.extend(msg(b'Z', b"I"));
        let mut erroring = msg(b'E', b"ERROR: unsupported feature");
        erroring.extend(msg(b'Z', b"I"));
        let mut engine =
            NVersionEngine::new(EngineConfig::builder(2).build().unwrap(), PgProtocol::new());
        let verdict = engine.evaluate_responses(&[leaking, erroring]).unwrap();
        assert!(matches!(verdict, Verdict::Divergent(_)));
    }

    #[test]
    fn identical_result_sets_pass_despite_differing_parameter_status() {
        use rddr_core::{EngineConfig, NVersionEngine, Verdict};
        let mk = |version: &str| {
            let mut wire = msg(b'S', format!("server_version\0{version}\0").as_bytes());
            wire.extend(msg(b'T', b"col_a"));
            wire.extend(msg(b'D', b"1"));
            wire.extend(msg(b'Z', b"I"));
            wire
        };
        let mut engine =
            NVersionEngine::new(EngineConfig::builder(2).build().unwrap(), PgProtocol::new());
        let verdict = engine
            .evaluate_responses(&[mk("10.7"), mk("10.9")])
            .unwrap();
        assert!(
            matches!(verdict, Verdict::Unanimous(_)),
            "version banners must not trigger divergence"
        );
    }

    #[test]
    fn pipelined_queries_frame_one_at_a_time() {
        let p = PgProtocol::new();
        let mut wire = msg(b'Q', b"SELECT 1;\0");
        wire.extend(msg(b'Q', b"SELECT 2;\0"));
        let mut buf = BytesMut::from(&wire[..]);
        let frames = p.split_frames(&mut buf, Direction::Request).unwrap();
        assert_eq!(frames.len(), 2);
        assert!(frames.iter().all(|f| f.label == "pg:Query"));
    }

    #[test]
    fn type_names_cover_common_tags() {
        assert_eq!(pg_type_name(b'D'), "DataRow");
        assert_eq!(pg_type_name(b'Z'), "ReadyForQuery");
        assert_eq!(pg_type_name(b'!'), "Unknown");
    }
}
