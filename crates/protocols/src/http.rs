//! The HTTP protocol module.
//!
//! Mirrors the paper's description (§IV-B1): "the HTTP module tokenizes at
//! the newline boundary and compares lines. If necessary, it also interprets
//! the HTTP header and decompresses the message before differencing, and it
//! saves CSRF tokens."
//!
//! Framing supports `Content-Length` and `Transfer-Encoding: chunked`
//! bodies for both requests and responses. Before tokenization, chunked
//! bodies are de-chunked and the toy `rle` content encoding (this repo's
//! stand-in for gzip — see `DESIGN.md`) is decoded, so instances that chose
//! different transfer framings still compare equal when their payloads agree.

use bytes::BytesMut;
use rddr_core::{Direction, Frame, Protocol, RddrError, Result, Segment};

/// The HTTP/1.1 protocol module.
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpProtocol;

impl HttpProtocol {
    /// Creates the HTTP module.
    pub fn new() -> Self {
        HttpProtocol
    }
}

/// A parsed HTTP message head: start line plus headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// The request line or status line, without line terminator.
    pub start_line: String,
    /// Header `(name, value)` pairs in order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Byte length of the head including the blank line.
    pub len: usize,
}

impl Head {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a message head if the buffer holds a complete one.
    pub fn parse(buf: &[u8]) -> Option<Head> {
        let head_end = find_head_end(buf)?;
        let head_text = String::from_utf8_lossy(&buf[..head_end.body_start]);
        let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));
        let start_line = lines.next()?.to_string();
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        Some(Head {
            start_line,
            headers,
            len: head_end.body_start,
        })
    }
}

struct HeadEnd {
    body_start: usize,
}

fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    // Take whichever blank line comes first, so an LF-only head followed by
    // a body that happens to contain CRLFCRLF is not mis-framed.
    let crlf = window_find(buf, b"\r\n\r\n");
    let lf = window_find(buf, b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l < c => Some(HeadEnd { body_start: l + 2 }),
        (Some(c), _) => Some(HeadEnd { body_start: c + 4 }),
        (None, Some(l)) => Some(HeadEnd { body_start: l + 2 }),
        (None, None) => None,
    }
}

fn window_find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Returns the total frame length if the buffer holds one complete message.
fn message_len(buf: &[u8], direction: Direction) -> Result<Option<usize>> {
    let Some(head) = Head::parse(buf) else {
        return Ok(None);
    };
    if head
        .header("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    {
        return Ok(chunked_end(&buf[head.len..])?.map(|n| head.len + n));
    }
    if let Some(cl) = head.header("content-length") {
        let cl: usize = cl
            .trim()
            .parse()
            .map_err(|_| RddrError::Protocol(format!("bad content-length: {cl:?}")))?;
        if buf.len() >= head.len + cl {
            return Ok(Some(head.len + cl));
        }
        return Ok(None);
    }
    // No body indicators: responses to HEAD, 204/304, or bare GET requests.
    let _ = direction;
    Ok(Some(head.len))
}

/// Returns the byte length of a complete chunked body (through the final
/// `0\r\n\r\n`), or `None` if incomplete.
fn chunked_end(body: &[u8]) -> Result<Option<usize>> {
    let mut pos = 0;
    loop {
        let Some(line_end) = body[pos..].iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let size_line = &body[pos..pos + line_end];
        let size_text = std::str::from_utf8(size_line)
            .map_err(|_| RddrError::Protocol("non-utf8 chunk size".into()))?
            .trim_end_matches('\r')
            .trim();
        let size = usize::from_str_radix(size_text.split(';').next().unwrap_or(""), 16)
            .map_err(|_| RddrError::Protocol(format!("bad chunk size: {size_text:?}")))?;
        pos += line_end + 1;
        if body.len() < pos + size {
            return Ok(None);
        }
        pos += size;
        // Chunk data is followed by CRLF (or LF).
        if body[pos..].starts_with(b"\r\n") {
            pos += 2;
        } else if body[pos..].starts_with(b"\n") {
            pos += 1;
        } else if size != 0 || !body[pos..].is_empty() {
            if body.len() <= pos {
                return Ok(None);
            }
            return Err(RddrError::Protocol("missing chunk terminator".into()));
        }
        if size == 0 {
            return Ok(Some(pos));
        }
    }
}

/// Decodes a complete chunked body into its payload bytes.
pub fn dechunk(body: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = 0;
    loop {
        let line_end = body[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| RddrError::Protocol("truncated chunked body".into()))?;
        let size_text = std::str::from_utf8(&body[pos..pos + line_end])
            .map_err(|_| RddrError::Protocol("non-utf8 chunk size".into()))?
            .trim_end_matches('\r')
            .trim();
        let size = usize::from_str_radix(size_text.split(';').next().unwrap_or(""), 16)
            .map_err(|_| RddrError::Protocol(format!("bad chunk size: {size_text:?}")))?;
        pos += line_end + 1;
        if size == 0 {
            return Ok(out);
        }
        if body.len() < pos + size {
            return Err(RddrError::Protocol("truncated chunk".into()));
        }
        out.extend_from_slice(&body[pos..pos + size]);
        pos += size;
        if body[pos..].starts_with(b"\r\n") {
            pos += 2;
        } else if body[pos..].starts_with(b"\n") {
            pos += 1;
        }
    }
}

/// Encodes bytes with the toy run-length `rle` content coding: a sequence of
/// `(count, byte)` pairs. This repo's stand-in for gzip (see `DESIGN.md`).
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Decodes the toy `rle` content coding.
///
/// # Errors
///
/// Returns [`RddrError::Protocol`] on odd-length input.
pub fn rle_decode(data: &[u8]) -> Result<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(RddrError::Protocol("rle payload has odd length".into()));
    }
    let mut out = Vec::new();
    for pair in data.chunks_exact(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    Ok(out)
}

impl Protocol for HttpProtocol {
    fn name(&self) -> &str {
        "http"
    }

    fn split_frames(&self, buf: &mut BytesMut, direction: Direction) -> Result<Vec<Frame>> {
        let mut frames = Vec::new();
        while let Some(len) = message_len(buf, direction)? {
            let bytes = buf.split_to(len).to_vec();
            let label = match direction {
                Direction::Request => "http:request",
                Direction::Response => "http:response",
            };
            frames.push(Frame::new(label, bytes));
        }
        Ok(frames)
    }

    fn tokenize(&self, frame: &Frame) -> Vec<Segment> {
        let Some(head) = Head::parse(&frame.bytes) else {
            return vec![Segment::new("http:malformed", frame.bytes.clone())];
        };
        let mut segments = Vec::new();
        let start_label = if frame.label == "http:request" {
            "http:request-line"
        } else {
            "http:status"
        };
        segments.push(Segment::new(
            start_label,
            head.start_line.as_bytes().to_vec(),
        ));
        for (name, value) in &head.headers {
            // Transfer framing headers are normalized away by decoding below.
            if name == "transfer-encoding" || name == "content-length" || name == "content-encoding"
            {
                continue;
            }
            segments.push(Segment::new(
                format!("http:header:{name}"),
                format!("{name}: {value}").into_bytes(),
            ));
        }

        // Interpret the header and decode the body before differencing.
        let mut body: Vec<u8> = frame.bytes[head.len..].to_vec();
        if head
            .header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
        {
            if let Ok(decoded) = dechunk(&body) {
                body = decoded;
            }
        }
        if head
            .header("content-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("rle"))
        {
            if let Ok(decoded) = rle_decode(&body) {
                body = decoded;
            }
        }
        for line in split_lines(&body) {
            segments.push(Segment::new("http:body", line));
        }
        segments
    }

    fn supports_ephemeral(&self) -> bool {
        true
    }
}

/// Splits a body at newline boundaries (the paper's tokenization unit),
/// dropping line terminators; a trailing fragment without a newline is kept.
fn split_lines(body: &[u8]) -> Vec<Vec<u8>> {
    let mut lines = Vec::new();
    let mut start = 0;
    for (i, &b) in body.iter().enumerate() {
        if b == b'\n' {
            let mut end = i;
            if end > start && body[end - 1] == b'\r' {
                end -= 1;
            }
            lines.push(body[start..end].to_vec());
            start = i + 1;
        }
    }
    if start < body.len() {
        lines.push(body[start..].to_vec());
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(body: &str, extra_headers: &str) -> Vec<u8> {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n{extra_headers}\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    #[test]
    fn frames_complete_response_only() {
        let p = HttpProtocol::new();
        let full = response("hello", "");
        let mut buf = BytesMut::from(&full[..full.len() - 2]);
        assert!(p
            .split_frames(&mut buf, Direction::Response)
            .unwrap()
            .is_empty());
        buf.extend_from_slice(&full[full.len() - 2..]);
        let frames = p.split_frames(&mut buf, Direction::Response).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].bytes, full);
        assert!(buf.is_empty());
    }

    #[test]
    fn frames_pipelined_messages() {
        let p = HttpProtocol::new();
        let mut wire = response("one", "");
        wire.extend(response("two", ""));
        let mut buf = BytesMut::from(&wire[..]);
        let frames = p.split_frames(&mut buf, Direction::Response).unwrap();
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn get_request_without_body_is_complete_at_head() {
        let p = HttpProtocol::new();
        let mut buf = BytesMut::from(&b"GET /path HTTP/1.1\r\nHost: svc\r\n\r\n"[..]);
        let frames = p.split_frames(&mut buf, Direction::Request).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].label, "http:request");
    }

    #[test]
    fn post_request_waits_for_body() {
        let p = HttpProtocol::new();
        let mut buf = BytesMut::from(&b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"[..]);
        assert!(p
            .split_frames(&mut buf, Direction::Request)
            .unwrap()
            .is_empty());
        buf.extend_from_slice(b"cde");
        assert_eq!(
            p.split_frames(&mut buf, Direction::Request).unwrap().len(),
            1
        );
    }

    #[test]
    fn tokenize_splits_status_headers_and_body_lines() {
        let p = HttpProtocol::new();
        let frame = Frame::new("http:response", response("line1\nline2", "X-Id: 7\r\n"));
        let segs = p.tokenize(&frame);
        let labels: Vec<&str> = segs.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["http:status", "http:header:x-id", "http:body", "http:body"]
        );
        assert_eq!(segs[2].payload, b"line1");
        assert_eq!(segs[3].payload, b"line2");
    }

    #[test]
    fn chunked_and_content_length_tokenize_identically() {
        let p = HttpProtocol::new();
        let plain = Frame::new("http:response", response("hello world", ""));
        let chunked = Frame::new(
            "http:response",
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"
                .to_vec(),
        );
        let a: Vec<_> = p
            .tokenize(&plain)
            .into_iter()
            .filter(|s| s.label == "http:body")
            .collect();
        let b: Vec<_> = p
            .tokenize(&chunked)
            .into_iter()
            .filter(|s| s.label == "http:body")
            .collect();
        assert_eq!(a, b, "framing must not affect diffing");
    }

    #[test]
    fn chunked_framing_waits_for_terminal_chunk() {
        let p = HttpProtocol::new();
        let mut buf = BytesMut::from(
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n"[..],
        );
        assert!(p
            .split_frames(&mut buf, Direction::Response)
            .unwrap()
            .is_empty());
        buf.extend_from_slice(b"0\r\n\r\n");
        assert_eq!(
            p.split_frames(&mut buf, Direction::Response).unwrap().len(),
            1
        );
    }

    #[test]
    fn rle_round_trip() {
        let data = b"aaabbbbbbcccd".to_vec();
        let encoded = rle_encode(&data);
        assert!(encoded.len() < data.len() + 2);
        assert_eq!(rle_decode(&encoded).unwrap(), data);
    }

    #[test]
    fn rle_rejects_odd_length() {
        assert!(rle_decode(&[3]).is_err());
    }

    #[test]
    fn rle_encoded_body_is_decoded_before_diffing() {
        let p = HttpProtocol::new();
        let body = rle_encode(b"secret-data");
        let mut wire = format!(
            "HTTP/1.1 200 OK\r\nContent-Encoding: rle\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend(&body);
        let segs = p.tokenize(&Frame::new("http:response", wire));
        let body_segs: Vec<_> = segs.iter().filter(|s| s.label == "http:body").collect();
        assert_eq!(body_segs.len(), 1);
        assert_eq!(body_segs[0].payload, b"secret-data");
    }

    #[test]
    fn bad_content_length_is_a_protocol_error() {
        let p = HttpProtocol::new();
        let mut buf = BytesMut::from(&b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n"[..]);
        assert!(p.split_frames(&mut buf, Direction::Response).is_err());
    }

    #[test]
    fn supports_ephemeral_per_paper() {
        assert!(HttpProtocol::new().supports_ephemeral());
    }

    #[test]
    fn head_parse_lowercases_names() {
        let head = Head::parse(b"GET / HTTP/1.1\r\nX-FOO: Bar\r\n\r\n").unwrap();
        assert_eq!(head.header("x-foo"), Some("Bar"));
        assert_eq!(head.header("X-FOO"), None, "lookup is by lower-case name");
    }

    #[test]
    fn lf_only_messages_are_accepted() {
        let p = HttpProtocol::new();
        let mut buf = BytesMut::from(&b"HTTP/1.1 200 OK\nContent-Length: 2\n\nhi"[..]);
        let frames = p.split_frames(&mut buf, Direction::Response).unwrap();
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn split_lines_keeps_trailing_fragment() {
        assert_eq!(split_lines(b"a\nb"), vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(
            split_lines(b"a\r\nb\r\n"),
            vec![b"a".to_vec(), b"b".to_vec()]
        );
        assert!(split_lines(b"").is_empty());
    }
}
