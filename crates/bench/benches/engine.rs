//! Criterion micro-benchmarks for the RDDR engine: the per-exchange costs
//! behind the paper's "low performance impact beyond the cost of
//! replicating microservices" claim, plus the N-sweep ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rddr_core::protocol::LineProtocol;
use rddr_core::{
    diff_segments, EngineConfig, EphemeralStore, NVersionEngine, NoiseMask, Segment,
    SignatureThrottle, VarianceRule, VarianceRules,
};

fn segments(lines: usize, salt: &str) -> Vec<Segment> {
    (0..lines)
        .map(|i| Segment::new("line", format!("row {i} value {salt}").into_bytes()))
        .collect()
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_segments");
    for &lines in &[10usize, 100, 1000] {
        let identical: Vec<Vec<Segment>> = (0..3).map(|_| segments(lines, "same")).collect();
        group.bench_with_input(
            BenchmarkId::new("unanimous_3way", lines),
            &identical,
            |b, segs| {
                b.iter(|| {
                    diff_segments(
                        std::hint::black_box(segs),
                        &NoiseMask::none(),
                        &VarianceRules::new(),
                    )
                })
            },
        );
        let mut divergent = identical.clone();
        divergent[2][lines / 2] = Segment::new("line", b"LEAKED ROW".to_vec());
        group.bench_with_input(
            BenchmarkId::new("divergent_3way", lines),
            &divergent,
            |b, segs| {
                b.iter(|| {
                    diff_segments(
                        std::hint::black_box(segs),
                        &NoiseMask::none(),
                        &VarianceRules::new(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_denoise(c: &mut Criterion) {
    let a = segments(100, "sid=aaaa1111");
    let b = segments(100, "sid=bbbb2222");
    c.bench_function("noise_mask_from_filter_pair_100_lines", |bench| {
        bench.iter(|| NoiseMask::from_filter_pair(std::hint::black_box(&a), &b))
    });
}

fn bench_variance(c: &mut Criterion) {
    let mut rules = VarianceRules::new();
    rules.push(VarianceRule::new("http:header:server", "*").unwrap());
    rules.push(VarianceRule::any_label("*nginx/1.13.*").unwrap());
    let segs: Vec<Vec<Segment>> = (0..3).map(|_| segments(100, "x")).collect();
    c.bench_function("diff_with_variance_rules_100_lines", |b| {
        b.iter(|| diff_segments(std::hint::black_box(&segs), &NoiseMask::none(), &rules))
    });
}

fn bench_ephemeral(c: &mut Criterion) {
    let pages: Vec<Vec<u8>> = [b'A', b'B', b'C']
        .iter()
        .map(|c| {
            let token: String = (0..12).map(|_| *c as char).collect();
            format!("<input name='csrf' value='{token}'>").into_bytes()
        })
        .collect();
    c.bench_function("ephemeral_scan_position", |b| {
        b.iter(|| {
            let mut store = EphemeralStore::new();
            let views: Vec<&[u8]> = pages.iter().map(Vec::as_slice).collect();
            store.scan_position(std::hint::black_box(&views))
        })
    });
    c.bench_function("ephemeral_substitute", |b| {
        let mut store = EphemeralStore::new();
        let views: Vec<&[u8]> = pages.iter().map(Vec::as_slice).collect();
        store.scan_position(&views).expect("token captured");
        let request = b"POST /f token=AAAAAAAAAAAA rest-of-request";
        b.iter(|| store.substitute(std::hint::black_box(request), 2))
    });
}

fn bench_engine_n_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_exchange_vs_n");
    for n in 2..=6usize {
        let responses: Vec<Vec<u8>> = (0..n)
            .map(|_| b"alpha\nbravo\ncharlie\n".to_vec())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &responses, |b, resp| {
            let mut engine = NVersionEngine::new(
                EngineConfig::builder(n).build().unwrap(),
                LineProtocol::new(),
            );
            b.iter(|| {
                engine
                    .evaluate_responses(std::hint::black_box(resp))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_throttle(c: &mut Criterion) {
    let mut throttle = SignatureThrottle::new(0);
    throttle.record(b"known-bad-input");
    c.bench_function("signature_throttle_lookup", |b| {
        b.iter(|| throttle.should_refuse(std::hint::black_box(b"candidate-request")))
    });
}

criterion_group!(
    benches,
    bench_diff,
    bench_denoise,
    bench_variance,
    bench_ephemeral,
    bench_engine_n_sweep,
    bench_throttle
);
criterion_main!(benches);
