//! Criterion micro-benchmarks for the protocol modules (§IV-B1): framing
//! and tokenization throughput for HTTP, PostgreSQL wire, and JSON.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rddr_core::{Direction, Frame, Protocol};
use rddr_protocols::pg::PgMessage;
use rddr_protocols::{parse_json, HttpProtocol, JsonProtocol, PgProtocol};

fn http_response(body_lines: usize) -> Vec<u8> {
    let body: String = (0..body_lines)
        .map(|i| format!("row {i}: some data payload\n"))
        .collect();
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Trace: abc\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn bench_http(c: &mut Criterion) {
    let p = HttpProtocol::new();
    let mut group = c.benchmark_group("http");
    for &lines in &[10usize, 100, 1000] {
        let wire = http_response(lines);
        group.bench_with_input(BenchmarkId::new("split_frames", lines), &wire, |b, w| {
            b.iter(|| {
                let mut buf = BytesMut::from(&w[..]);
                p.split_frames(std::hint::black_box(&mut buf), Direction::Response)
                    .unwrap()
            })
        });
        let frame = Frame::new("http:response", wire.clone());
        group.bench_with_input(BenchmarkId::new("tokenize", lines), &frame, |b, f| {
            b.iter(|| p.tokenize(std::hint::black_box(f)))
        });
    }
    group.finish();
}

fn bench_pg(c: &mut Criterion) {
    let p = PgProtocol::new();
    let mut wire = Vec::new();
    wire.extend(
        PgMessage {
            tag: b'T',
            payload: "col_a\u{1f}col_b".as_bytes().to_vec(),
        }
        .encode(),
    );
    for i in 0..100 {
        wire.extend(
            PgMessage {
                tag: b'D',
                payload: format!("{i}\u{1f}value-{i}").into_bytes(),
            }
            .encode(),
        );
    }
    wire.extend(
        PgMessage {
            tag: b'C',
            payload: b"SELECT 100".to_vec(),
        }
        .encode(),
    );
    wire.extend(
        PgMessage {
            tag: b'Z',
            payload: b"I".to_vec(),
        }
        .encode(),
    );
    c.bench_function("pg_split_frames_100_rows", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&wire[..]);
            p.split_frames(std::hint::black_box(&mut buf), Direction::Response)
                .unwrap()
        })
    });
}

fn bench_json(c: &mut Criterion) {
    let doc = r#"{"user":{"id":42,"name":"ada","roles":["admin","dev"],
        "profile":{"bio":"pioneer","links":[{"url":"https://a"},{"url":"https://b"}]}},
        "balance":1234.56,"active":true,"tags":null}"#;
    c.bench_function("json_parse_nested", |b| {
        b.iter(|| parse_json(std::hint::black_box(doc)).unwrap())
    });
    let p = JsonProtocol::new();
    let frame = Frame::new("json:document", format!("{}\n", doc.replace('\n', " ")));
    c.bench_function("json_tokenize_structural", |b| {
        b.iter(|| p.tokenize(std::hint::black_box(&frame)))
    });
}

criterion_group!(benches, bench_http, bench_pg, bench_json);
criterion_main!(benches);
