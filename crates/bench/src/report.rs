//! Machine-readable benchmark reports.
//!
//! Every figure harness accepts `--json <path>` and writes a `BENCH_*.json`
//! document there (serialized with the in-tree [`rddr_protocols::JsonValue`]
//! writer), so the repo's performance trajectory can be tracked run over
//! run without scraping the human-readable tables.

use std::collections::BTreeMap;

use rddr_protocols::JsonValue;
use rddr_telemetry::Histogram;

use crate::Summary;

/// Returns the path following a `--json` flag in the process arguments,
/// if any. Figure harnesses call this once at startup.
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Builds a JSON object from `(key, value)` pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A JSON number.
pub fn num(value: f64) -> JsonValue {
    JsonValue::Number(value)
}

/// A JSON string.
pub fn s(value: impl Into<String>) -> JsonValue {
    JsonValue::String(value.into())
}

/// Renders a [`Summary`] as `{mean, median, p5, p95, n}`.
pub fn summary_json(summary: &Summary) -> JsonValue {
    obj([
        ("mean", num(summary.mean)),
        ("median", num(summary.median)),
        ("p5", num(summary.p5)),
        ("p95", num(summary.p95)),
        ("n", num(summary.n as f64)),
    ])
}

/// Renders a latency [`Histogram`] (recorded in µs) as milliseconds:
/// `{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}`.
pub fn latency_json(hist: &Histogram) -> JsonValue {
    let ms = |us: u64| num(us as f64 / 1000.0);
    obj([
        ("count", num(hist.count() as f64)),
        ("mean_ms", num(hist.mean() / 1000.0)),
        ("p50_ms", ms(hist.quantile(0.50))),
        ("p95_ms", ms(hist.quantile(0.95))),
        ("p99_ms", ms(hist.quantile(0.99))),
        ("max_ms", ms(hist.max())),
    ])
}

/// Writes the report document for `figure` (e.g. `"fig5_pgbench"`):
/// `{"figure": ..., "params": {...}, "rows": [...]}`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_report(
    path: &std::path::Path,
    figure: &str,
    params: JsonValue,
    rows: Vec<JsonValue>,
) -> std::io::Result<()> {
    let doc = JsonValue::Object(BTreeMap::from([
        ("figure".to_string(), s(figure)),
        ("params".to_string(), params),
        ("rows".to_string(), JsonValue::Array(rows)),
    ]));
    std::fs::write(path, format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_parser() {
        let dir = std::env::temp_dir().join("rddr-bench-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let rows = vec![obj([("clients", num(4.0)), ("tps", num(123.5))])];
        write_report(&path, "fig_test", obj([("scale", num(2.0))]), rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = rddr_protocols::parse_json(&text).unwrap();
        assert_eq!(
            doc.get("figure").and_then(JsonValue::as_str),
            Some("fig_test")
        );
        let row = doc.get("rows").and_then(|r| r.index(0)).unwrap();
        assert_eq!(row.get("tps").and_then(JsonValue::as_f64), Some(123.5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn latency_json_uses_histogram_quantiles() {
        let hist = Histogram::new();
        for us in [1000, 2000, 3000, 4000] {
            hist.record(us);
        }
        let j = latency_json(&hist);
        assert_eq!(j.get("count").and_then(JsonValue::as_f64), Some(4.0));
        let p50 = j.get("p50_ms").and_then(JsonValue::as_f64).unwrap();
        assert!((1.9..=2.2).contains(&p50), "p50_ms = {p50}");
    }
}
