//! Shared harness machinery for regenerating the paper's tables and figures.
//!
//! Each `src/bin/*` binary reproduces one artifact (see `DESIGN.md`'s
//! experiment index); this library holds the deployment builders, client
//! drivers and summary statistics they share.

pub mod deploy;
pub mod driver;
pub mod report;
pub mod social;
pub mod stats;

pub use deploy::{
    deploy_pg_baseline, deploy_pg_envoy, deploy_pg_rddr, PgDeployment, PG_COST_MODEL,
};
pub use driver::{run_pgbench, run_tpch, RunOutcome};
pub use report::{json_path_from_args, write_report};
pub use stats::{percentile, Summary};

/// Reads a `f64` parameter from the environment with a default, so the
/// figure binaries can be scaled up/down without recompiling.
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `usize` parameter from the environment with a default.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
