//! The Figure 1 social-network deployment (DeathStarBench's social network,
//! Gan et al.) and the paper's micro-versioning overhead arithmetic (§II):
//! N-versioning only "Search" and "Compose Post" costs ~20% extra containers
//! instead of the 300% of replicating everything 3×.

use std::sync::Arc;
use std::time::Duration;

use rddr_core::EngineConfig;
use rddr_httpsim::{HttpResponse, HttpService};
use rddr_net::ServiceAddr;
use rddr_orchestra::{Cluster, ContainerHandle, Image};
use rddr_protocols::HttpProtocol;
use rddr_proxy::IncomingProxy;

/// The microservices of Figure 1's "small-scale social network deployment".
pub const SERVICES: &[&str] = &[
    "frontend-logic",
    "compose-post",
    "search",
    "user-service",
    "home-timeline",
    "social-graph",
    "url-shorten",
    "media",
    "user-storage",
    "post-storage",
    "home-timeline-storage",
    "social-graph-storage",
];

/// The subset worth protecting: "the microservices that handle unmodified
/// user data".
pub const PROTECTED: &[&str] = &["search", "compose-post"];

fn stub_service(name: &'static str) -> Arc<HttpService> {
    Arc::new(HttpService::new(name).route("GET", "/", move |req, _ctx| {
        HttpResponse::ok(format!("{name}: handled {}", req.path))
    }))
}

/// A deployed social network, possibly with RDDR protecting a subset.
pub struct SocialNetwork {
    /// The hosting cluster.
    pub cluster: Cluster,
    /// All running containers.
    pub containers: Vec<ContainerHandle>,
    /// RDDR proxies (empty when deployed without protection).
    pub proxies: Vec<IncomingProxy>,
    /// Address of each logical service's entry point.
    pub entrypoints: Vec<(String, ServiceAddr)>,
}

impl std::fmt::Debug for SocialNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocialNetwork")
            .field("containers", &self.containers.len())
            .field("proxies", &self.proxies.len())
            .finish()
    }
}

impl SocialNetwork {
    /// Total containers, the unit of the paper's overhead arithmetic
    /// ("if all microservice containers … were equally costly").
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }
}

/// Deploys the plain (unprotected) social network: one container each.
pub fn deploy_plain(cluster: Cluster) -> SocialNetwork {
    let mut containers = Vec::new();
    let mut entrypoints = Vec::new();
    for (i, name) in SERVICES.iter().enumerate() {
        let addr = ServiceAddr::new(*name, 8000 + i as u16);
        containers.push(
            cluster
                .run_container(
                    format!("{name}-0"),
                    Image::new(*name, "v1"),
                    &addr,
                    stub_service(name),
                )
                .expect("social services deploy"),
        );
        entrypoints.push((name.to_string(), addr));
    }
    SocialNetwork {
        cluster,
        containers,
        proxies: Vec::new(),
        entrypoints,
    }
}

/// Deploys the micro-versioned network: every service once, except the
/// [`PROTECTED`] subset which runs `n` diverse instances behind an RDDR
/// incoming proxy.
pub fn deploy_microversioned(cluster: Cluster, n: usize) -> SocialNetwork {
    let mut containers = Vec::new();
    let mut proxies = Vec::new();
    let mut entrypoints = Vec::new();
    for (i, name) in SERVICES.iter().enumerate() {
        let base_port = 8000 + (i as u16) * 10;
        if PROTECTED.contains(name) {
            for k in 0..n {
                containers.push(
                    cluster
                        .run_container(
                            format!("{name}-{k}"),
                            Image::new(*name, format!("v{}", k + 1)),
                            &ServiceAddr::new(*name, base_port + 1 + k as u16),
                            stub_service(name),
                        )
                        .expect("protected replicas deploy"),
                );
            }
            let proxy_addr = ServiceAddr::new(*name, base_port);
            proxies.push(
                IncomingProxy::start(
                    Arc::new(cluster.net()),
                    &proxy_addr,
                    (0..n as u16)
                        .map(|k| ServiceAddr::new(*name, base_port + 1 + k))
                        .collect(),
                    EngineConfig::builder(n)
                        .response_deadline(Duration::from_secs(2))
                        .build()
                        .expect("static config"),
                    Arc::new(|| Box::new(HttpProtocol::new())),
                )
                .expect("rddr proxy starts"),
            );
            entrypoints.push((name.to_string(), proxy_addr));
        } else {
            let addr = ServiceAddr::new(*name, base_port);
            containers.push(
                cluster
                    .run_container(
                        format!("{name}-0"),
                        Image::new(*name, "v1"),
                        &addr,
                        stub_service(name),
                    )
                    .expect("social services deploy"),
            );
            entrypoints.push((name.to_string(), addr));
        }
    }
    SocialNetwork {
        cluster,
        containers,
        proxies,
        entrypoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rddr_httpsim::HttpClient;

    #[test]
    fn plain_network_has_one_container_per_service() {
        let net = deploy_plain(Cluster::new(4));
        assert_eq!(net.container_count(), SERVICES.len());
    }

    #[test]
    fn microversioned_overhead_matches_paper_arithmetic() {
        let plain = deploy_plain(Cluster::new(4));
        let protected = deploy_microversioned(Cluster::new(4), 3);
        // 12 services; 2 protected ones gain 2 extra containers each.
        let extra = protected.container_count() - plain.container_count();
        assert_eq!(extra, 4);
        let overhead = extra as f64 / plain.container_count() as f64;
        assert!((overhead - 1.0 / 3.0).abs() < 1e-9, "4/12 extra containers");
        assert_eq!(protected.proxies.len(), PROTECTED.len());
    }

    #[test]
    fn protected_services_still_answer_through_rddr() {
        let net = deploy_microversioned(Cluster::new(4), 3);
        let fabric = net.cluster.net();
        for (name, addr) in &net.entrypoints {
            let mut client = HttpClient::connect(&fabric, addr).unwrap();
            let resp = client.get("/").unwrap();
            assert_eq!(resp.status, 200, "{name}");
            assert!(resp.body_text().starts_with(name.as_str()), "{name}");
        }
    }
}
