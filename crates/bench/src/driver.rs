//! Client drivers: spawn N concurrent clients against a deployment and
//! collect throughput/latency, pgbench-style.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rddr_net::Network;
use rddr_pgsim::{pgbench::SelectWorkload, PgClient};
use rddr_telemetry::Histogram;

use crate::deploy::PgDeployment;

/// The outcome of one multi-client run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Total transactions completed.
    pub transactions: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-transaction latencies in microseconds, all clients pooled into
    /// one shared [`Histogram`] (the same type the proxies report with).
    pub latency_us: Arc<Histogram>,
}

impl RunOutcome {
    /// Transactions per second.
    pub fn throughput(&self) -> f64 {
        self.transactions as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency_us.mean() / 1000.0
    }

    /// The `q`-quantile (0–1) latency in milliseconds, from the histogram.
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        self.latency_us.quantile(q) as f64 / 1000.0
    }
}

/// Runs the pgbench SELECT-only script: `clients` threads, each issuing
/// `transactions_per_client` point queries over `accounts` rows
/// ("each client is executed in a separate thread and makes "10,000" SELECT
/// transactions against each deployment", §V-G2).
pub fn run_pgbench(
    deployment: &PgDeployment,
    accounts: usize,
    clients: usize,
    transactions_per_client: usize,
) -> RunOutcome {
    run_pgbench_think(
        deployment,
        accounts,
        clients,
        transactions_per_client,
        Duration::ZERO,
    )
}

/// Like [`run_pgbench`] with per-transaction client think time, modelling
/// the paper's separate client machine and its network round trip (used by
/// the Figure 6 harness to reproduce sub-saturation utilization levels).
pub fn run_pgbench_think(
    deployment: &PgDeployment,
    accounts: usize,
    clients: usize,
    transactions_per_client: usize,
    think: Duration,
) -> RunOutcome {
    let net = Arc::new(deployment.cluster.net());
    let addr = deployment.addr.clone();
    let latency_us = Arc::new(Histogram::new());
    let t0 = Instant::now();
    let mut threads = Vec::with_capacity(clients);
    for client_id in 0..clients {
        let net = Arc::clone(&net);
        let addr = addr.clone();
        let latency_us = Arc::clone(&latency_us);
        threads.push(std::thread::spawn(move || {
            let Ok(conn) = net.dial(&addr) else {
                return 0u64;
            };
            let Ok(mut client) = PgClient::connect(conn, "app") else {
                return 0u64;
            };
            let mut workload = SelectWorkload::new(accounts, client_id as u64);
            let mut done = 0u64;
            for _ in 0..transactions_per_client {
                let sql = workload.next_query();
                let q0 = Instant::now();
                match client.query(&sql) {
                    Ok(resp) if resp.error.is_none() => {
                        latency_us.record_duration(q0.elapsed());
                        done += 1;
                    }
                    _ => break,
                }
                if !think.is_zero() {
                    std::thread::sleep(think);
                }
            }
            done
        }));
    }
    let mut transactions = 0;
    for t in threads {
        transactions += t.join().expect("client thread");
    }
    RunOutcome {
        transactions,
        elapsed: t0.elapsed(),
        latency_us,
    }
}

/// Runs the TPC-H query stream on `clients` concurrent connections; every
/// client executes the full 21-query set. Returns per-query mean wall time
/// (seconds) indexed by query number.
pub fn run_tpch(deployment: &PgDeployment, clients: usize) -> Vec<(u32, f64)> {
    use rddr_pgsim::tpch::{benchmark_query_numbers, QUERIES};
    let numbers = benchmark_query_numbers();
    let net = Arc::new(deployment.cluster.net());
    let addr = deployment.addr.clone();
    let mut threads = Vec::with_capacity(clients);
    for _ in 0..clients {
        let net = Arc::clone(&net);
        let addr = addr.clone();
        let numbers = numbers.clone();
        threads.push(std::thread::spawn(move || {
            let mut times = vec![0.0f64; numbers.len()];
            let Ok(conn) = net.dial(&addr) else {
                return times;
            };
            let Ok(mut client) = PgClient::connect(conn, "app") else {
                return times;
            };
            for (i, number) in numbers.iter().enumerate() {
                let query = QUERIES
                    .iter()
                    .find(|q| q.number == *number)
                    .expect("benchmark set is a subset of QUERIES");
                let q0 = Instant::now();
                let result = client.query(query.sql);
                assert!(
                    matches!(&result, Ok(r) if r.error.is_none()),
                    "Q{number} failed: {result:?}"
                );
                times[i] = q0.elapsed().as_secs_f64();
            }
            times
        }));
    }
    let per_client: Vec<Vec<f64>> = threads
        .into_iter()
        .map(|t| t.join().expect("tpch client"))
        .collect();
    numbers
        .iter()
        .enumerate()
        .map(|(i, number)| {
            let mean = per_client.iter().map(|c| c[i]).sum::<f64>() / per_client.len() as f64;
            (*number, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{deploy_pg_baseline, deploy_pg_rddr};
    use rddr_pgsim::{pgbench, Database, PgServerConfig};
    use std::time::Duration;

    fn seed(db: &mut Database) {
        pgbench::load(db, 1).unwrap();
    }

    fn quick() -> PgServerConfig {
        PgServerConfig {
            base_cost: Duration::from_micros(20),
            cost_per_row: Duration::from_micros(1),
        }
    }

    #[test]
    fn pgbench_driver_completes_all_transactions() {
        let d = deploy_pg_baseline(&seed, quick(), 8, 0.01);
        let outcome = run_pgbench(&d, 1000, 4, 25);
        assert_eq!(outcome.transactions, 100);
        assert_eq!(outcome.latency_us.count(), 100);
        assert!(outcome.throughput() > 0.0);
        assert!(outcome.mean_latency_ms() > 0.0);
        assert!(outcome.latency_quantile_ms(0.95) >= outcome.latency_quantile_ms(0.5));
    }

    #[test]
    fn pgbench_through_rddr_matches_baseline_results() {
        let d = deploy_pg_rddr(&seed, quick(), 8, 0.01);
        let outcome = run_pgbench(&d, 1000, 2, 20);
        assert_eq!(
            outcome.transactions, 40,
            "no divergences on identical instances"
        );
        if let Some(stats) = d.proxy_stats() {
            assert_eq!(stats.divergences, 0);
        }
    }
}
