//! Summary statistics for the figure harnesses (the paper's Figure 4 boxes
//! span the 5th–95th percentile with mean and median marked).

/// The `q`-th percentile (0–100) of a sample, by linear interpolation.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (q / 100.0) * (sorted.len() as f64 - 1.0);
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let frac = rank - low as f64;
        sorted[low] * (1.0 - frac) + sorted[high] * frac
    }
}

/// A five-number-ish summary of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub median: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Summary {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Summary {
            mean,
            median: percentile(values, 50.0),
            p5: percentile(values, 5.0),
            p95: percentile(values, 95.0),
            n: values.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean={:.2} median={:.2} p5={:.2} p95={:.2} (n={})",
            self.mean, self.median, self.p5, self.p95, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert!((percentile(&xs, 25.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[2.0, 4.0, 6.0, 8.0]);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.median - 5.0).abs() < 1e-9);
        assert_eq!(s.n, 4);
        assert!(s.p5 >= 2.0 && s.p95 <= 8.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 50.0), 3.0);
    }
}
