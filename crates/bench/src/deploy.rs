//! Deployment builders for the §V-G performance figures: a single MiniPg
//! baseline, the same behind an Envoy front proxy, and a 3-versioned MiniPg
//! set behind RDDR — each on its own cluster so CPU/memory are attributable.

use std::sync::Arc;
use std::time::Duration;

use rddr_core::EngineConfig;
use rddr_httpsim::EnvoySim;
use rddr_net::{ServiceAddr, SimNet};
use rddr_orchestra::{Cluster, ContainerHandle, CpuGovernor, Image};
use rddr_pgsim::{Database, PgServer, PgServerConfig, PgVersion};
use rddr_protocols::PgProtocol;
use rddr_proxy::{IncomingProxy, ProtocolFactory};

/// The Figure 5/6 cost model: a deliberately heavy per-statement cost so the
/// vCPU governor — not harness overhead — is the bottleneck, reproducing
/// the paper's saturation crossover ("RDDR's throughput tapers off above 16
/// simultaneous clients" on a 32-vCPU server).
pub const PG_COST_MODEL: PgServerConfig = PgServerConfig {
    base_cost: Duration::from_millis(2),
    cost_per_row: Duration::from_micros(10),
};

/// A running database deployment: the address clients dial, plus the
/// cluster that hosts it (for resource sampling).
pub struct PgDeployment {
    /// Human-readable label (`"rddr"`, `"envoy"`, `"bare"`).
    pub label: &'static str,
    /// The address clients connect to.
    pub addr: ServiceAddr,
    /// The hosting cluster.
    pub cluster: Cluster,
    /// Container + proxy handles kept alive for the deployment's lifetime.
    pub handles: Vec<ContainerHandle>,
    proxy: Option<IncomingProxy>,
}

impl std::fmt::Debug for PgDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PgDeployment")
            .field("label", &self.label)
            .field("addr", &self.addr)
            .finish()
    }
}

impl PgDeployment {
    /// Aggregate resource usage of the whole deployment.
    pub fn usage(&self) -> rddr_orchestra::ResourceSample {
        self.cluster.usage("")
    }

    /// Instantaneous vCPU utilization of the deployment's node.
    pub fn utilization(&self) -> f64 {
        self.cluster.governor().utilization()
    }

    /// RDDR proxy statistics, if this deployment has a proxy.
    pub fn proxy_stats(&self) -> Option<rddr_proxy::StatsSnapshot> {
        self.proxy.as_ref().map(IncomingProxy::stats)
    }
}

fn cluster(vcpus: usize, time_scale: f64) -> Cluster {
    Cluster::with_governor(
        SimNet::new(),
        CpuGovernor::with_time_scale(vcpus, time_scale),
    )
}

fn pg_protocol() -> ProtocolFactory {
    Arc::new(|| Box::new(PgProtocol::new()))
}

/// One MiniPg instance, clients connect directly (Figure 5's "1x Postgres").
///
/// `seed` populates each fresh database; `vcpus`/`time_scale` shape the
/// node (the paper's server machine has 32 vCPUs).
pub fn deploy_pg_baseline(
    seed: &dyn Fn(&mut Database),
    cost: PgServerConfig,
    vcpus: usize,
    time_scale: f64,
) -> PgDeployment {
    let cluster = cluster(vcpus, time_scale);
    let mut db = Database::new(PgVersion::parse("10.7").expect("static version"));
    seed(&mut db);
    let addr = ServiceAddr::new("postgres", 5432);
    let handle = cluster
        .run_container(
            "postgres-0",
            Image::new("postgres", "10.7"),
            &addr,
            Arc::new(PgServer::with_config(db, cost)),
        )
        .expect("baseline deploys");
    PgDeployment {
        label: "bare",
        addr,
        cluster,
        handles: vec![handle],
        proxy: None,
    }
}

/// One MiniPg instance behind an Envoy front proxy (Figure 5's
/// "1x Postgres + Envoy").
pub fn deploy_pg_envoy(
    seed: &dyn Fn(&mut Database),
    cost: PgServerConfig,
    vcpus: usize,
    time_scale: f64,
) -> PgDeployment {
    let cluster = cluster(vcpus, time_scale);
    let mut db = Database::new(PgVersion::parse("10.7").expect("static version"));
    seed(&mut db);
    let pg_addr = ServiceAddr::new("postgres", 5432);
    let envoy_addr = ServiceAddr::new("envoy", 5432);
    let mut handles = vec![cluster
        .run_container(
            "postgres-0",
            Image::new("postgres", "10.7"),
            &pg_addr,
            Arc::new(PgServer::with_config(db, cost)),
        )
        .expect("postgres deploys")];
    handles.push(
        cluster
            .run_container(
                "envoy-0",
                Image::new("envoy", "v1.14"),
                &envoy_addr,
                Arc::new(EnvoySim::new(pg_addr)),
            )
            .expect("envoy deploys"),
    );
    PgDeployment {
        label: "envoy",
        addr: envoy_addr,
        cluster,
        handles,
        proxy: None,
    }
}

/// Three identical MiniPg instances behind RDDR (Figures 4–6's "RDDR"
/// deployment; "all Postgres instances are identical").
pub fn deploy_pg_rddr(
    seed: &dyn Fn(&mut Database),
    cost: PgServerConfig,
    vcpus: usize,
    time_scale: f64,
) -> PgDeployment {
    let cluster = cluster(vcpus, time_scale);
    let mut handles = Vec::new();
    for i in 0..3u16 {
        let mut db = Database::new(PgVersion::parse("10.7").expect("static version"));
        seed(&mut db);
        handles.push(
            cluster
                .run_container(
                    format!("postgres-{i}"),
                    Image::new("postgres", "10.7"),
                    &ServiceAddr::new("pg", 5432 + i),
                    Arc::new(PgServer::with_config(db, cost)),
                )
                .expect("instances deploy"),
        );
    }
    let addr = ServiceAddr::new("rddr", 5432);
    let proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &addr,
        (0..3).map(|i| ServiceAddr::new("pg", 5432 + i)).collect(),
        EngineConfig::builder(3)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(30))
            .build()
            .expect("static config"),
        pg_protocol(),
    )
    .expect("proxy starts");
    PgDeployment {
        label: "rddr",
        addr,
        cluster,
        handles,
        proxy: Some(proxy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rddr_net::Network;
    use rddr_pgsim::PgClient;

    fn tiny_seed(db: &mut Database) {
        let mut s = db.session("app");
        db.execute(&mut s, "CREATE TABLE kv (k INT, v TEXT)")
            .unwrap();
        db.execute(&mut s, "INSERT INTO kv VALUES (1, 'one'), (2, 'two')")
            .unwrap();
    }

    fn quick_cost() -> PgServerConfig {
        PgServerConfig {
            base_cost: Duration::from_micros(10),
            cost_per_row: Duration::from_micros(1),
        }
    }

    #[test]
    fn all_three_deployments_answer_identically() {
        let mut answers = Vec::new();
        for deployment in [
            deploy_pg_baseline(&tiny_seed, quick_cost(), 4, 0.01),
            deploy_pg_envoy(&tiny_seed, quick_cost(), 4, 0.01),
            deploy_pg_rddr(&tiny_seed, quick_cost(), 4, 0.01),
        ] {
            let conn = deployment.cluster.net().dial(&deployment.addr).unwrap();
            let mut client = PgClient::connect(conn, "app").unwrap();
            let r = client.query("SELECT v FROM kv WHERE k = 2").unwrap();
            answers.push((deployment.label, r.rows));
        }
        assert_eq!(answers[0].1, answers[1].1);
        assert_eq!(answers[0].1, answers[2].1);
        assert_eq!(answers[0].1, vec![vec!["two".to_string()]]);
    }

    #[test]
    fn rddr_deployment_uses_three_instances_of_memory() {
        let quick = quick_cost();
        let baseline = deploy_pg_baseline(&tiny_seed, quick, 4, 0.01);
        let rddr = deploy_pg_rddr(&tiny_seed, quick, 4, 0.01);
        // Memory is charged on first touch: issue one query each.
        for d in [&baseline, &rddr] {
            let conn = d.cluster.net().dial(&d.addr).unwrap();
            let mut client = PgClient::connect(conn, "app").unwrap();
            client.query("SELECT COUNT(*) FROM kv").unwrap();
        }
        let wait = |d: &PgDeployment| {
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            loop {
                let m = d.usage().mem_bytes;
                if m > 0 || std::time::Instant::now() > deadline {
                    return m;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        let base_mem = wait(&baseline) as f64;
        let rddr_mem = wait(&rddr) as f64;
        assert!(base_mem > 0.0);
        let ratio = rddr_mem / base_mem;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "3-version memory should be ~3x, got {ratio:.2}"
        );
    }
}
