//! Regenerates **Figure 5**: pgbench throughput and latency for RDDR vs
//! "1x Postgres + Envoy" vs "1x Postgres", for 1–256 clients (powers of
//! two).
//!
//! Expected shapes (on a 32-vCPU node): RDDR within ~10–15% of the Envoy
//! baseline up to ~8–16 clients, then tapering off as its three instances
//! exhaust the node's parallelism ~3× sooner than the baselines.
//!
//! ```text
//! cargo run --release -p rddr-bench --bin fig5_pgbench [-- --json BENCH_fig5.json]
//!   RDDR_PGBENCH_SCALE=2    # branches (default 2 => 2000 accounts)
//!   RDDR_PGBENCH_TXNS=100   # transactions per client (paper: 10,000)
//!   RDDR_VCPUS=32
//! ```

use rddr_bench::deploy::{
    deploy_pg_baseline, deploy_pg_envoy, deploy_pg_rddr, PgDeployment, PG_COST_MODEL,
};
use rddr_bench::driver::run_pgbench;
use rddr_bench::report::{json_path_from_args, latency_json, num, obj, write_report};
use rddr_bench::{env_f64, env_usize};
use rddr_pgsim::{pgbench, Database};
use rddr_protocols::JsonValue;

fn main() {
    let scale = env_usize("RDDR_PGBENCH_SCALE", 2);
    let txns = env_usize("RDDR_PGBENCH_TXNS", 100);
    let vcpus = env_usize("RDDR_VCPUS", 32);
    let time_scale = env_f64("RDDR_TIME_SCALE", 1.0);
    let json_path = json_path_from_args();
    let accounts = scale * pgbench::ACCOUNTS_PER_BRANCH;
    let seed = move |db: &mut Database| {
        pgbench::load(db, scale).expect("pgbench loads");
    };

    println!("RDDR reproduction — Figure 5: pgbench SELECT-only");
    println!("scale {scale} ({accounts} accounts), {txns} transactions/client, {vcpus} vCPUs\n");
    println!(
        "{:>7}  {:>14} {:>14} {:>14}    {:>12} {:>12} {:>12}",
        "clients", "rddr tps", "envoy tps", "bare tps", "rddr ms", "envoy ms", "bare ms"
    );

    let mut rows: Vec<JsonValue> = Vec::new();
    let clients_series = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    for clients in clients_series {
        let deployments: Vec<PgDeployment> = vec![
            deploy_pg_rddr(&seed, PG_COST_MODEL, vcpus, time_scale),
            deploy_pg_envoy(&seed, PG_COST_MODEL, vcpus, time_scale),
            deploy_pg_baseline(&seed, PG_COST_MODEL, vcpus, time_scale),
        ];
        let mut tps = Vec::new();
        let mut lat = Vec::new();
        let mut row = vec![("clients", num(clients as f64))];
        for d in &deployments {
            let outcome = run_pgbench(d, accounts, clients, txns);
            assert_eq!(
                outcome.transactions as usize,
                clients * txns,
                "{} deployment dropped transactions at {clients} clients",
                d.label
            );
            tps.push(outcome.throughput());
            lat.push(outcome.mean_latency_ms());
            row.push((
                d.label,
                obj([
                    ("tps", num(outcome.throughput())),
                    ("latency", latency_json(&outcome.latency_us)),
                ]),
            ));
        }
        rows.push(obj(row));
        println!(
            "{clients:>7}  {:>14.0} {:>14.0} {:>14.0}    {:>12.2} {:>12.2} {:>12.2}",
            tps[0], tps[1], tps[2], lat[0], lat[1], lat[2]
        );
    }
    println!(
        "\nshape check: rddr tracks the baselines at low client counts and \
         flattens ~3x earlier once the {vcpus} vCPUs are exhausted."
    );
    if let Some(path) = json_path {
        let params = obj([
            ("scale", num(scale as f64)),
            ("accounts", num(accounts as f64)),
            ("txns_per_client", num(txns as f64)),
            ("vcpus", num(vcpus as f64)),
            ("time_scale", num(time_scale)),
        ]);
        write_report(&path, "fig5_pgbench", params, rows).expect("write --json report");
        println!("wrote {}", path.display());
    }
}
