//! Proxy hot-path throughput: exchanges/sec and exchange latency through a
//! 3-version [`IncomingProxy`] deployment, over both the in-process SimNet
//! fabric (CPU-bound — isolates the proxy loop cost) and real TCP sockets.
//!
//! Four workloads exercise the diff pipeline differently:
//!
//! * `unanimous` — every instance answers identically and clients pipeline
//!   requests keep-alive style; the overwhelmingly common case the engine's
//!   fast path and the proxy's batched fan-out are built for.
//! * `unanimous_sync` — same, but strict request/response lockstep (no
//!   pipelining), so the per-exchange scheduling floor is visible.
//! * `mixed` — 10% of exchanges diverge (each severs the session under the
//!   default [`ResponsePolicy::Block`], so the client redials).
//! * `divergent` — every exchange diverges; the worst case, pinned so the
//!   fast path can be shown to cost nothing when it never fires.
//!
//! ```text
//! proxy_hotpath [--smoke] [--json BENCH_proxy.json]
//! ```
//!
//! Rows carry a `variant` label from `RDDR_BENCH_VARIANT` (default
//! `"current"`) so before/after runs of the same harness can be merged into
//! one committed report. `--smoke` shrinks the exchange counts for CI and
//! asserts the deployment answers correctly. Knobs: `RDDR_BENCH_EXCHANGES`
//! (per client), `RDDR_BENCH_WARMUP`, `RDDR_BENCH_PAYLOAD`,
//! `RDDR_BENCH_CLIENTS` (concurrent sessions, pgbench-style),
//! `RDDR_BENCH_PIPELINE` (requests in flight per client on the pipelined
//! workload).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rddr_bench::report::{latency_json, num, obj, s};
use rddr_bench::{env_usize, json_path_from_args, write_report};
use rddr_core::protocol::LineProtocol;
use rddr_core::EngineConfig;
use rddr_net::{BoxStream, Network, ServiceAddr, SimNet, TcpNet};
use rddr_protocols::JsonValue;
use rddr_proxy::{IncomingProxy, ProtocolFactory, ProxyTelemetry};
use rddr_telemetry::Histogram;

const INSTANCES: usize = 3;

fn line_protocol() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

/// Serves newline-delimited requests on one accepted connection. Normal
/// lines get the identical `ok:<line>` answer on every instance; lines
/// starting with `DIV` get a different answer from instance 2 only — the
/// version-diverse replica — so the deployment diverges exactly when the
/// workload asks it to. (Instances 0 and 1 are the filter pair; if they
/// diverged too, the difference would be masked as noise.)
fn serve_lines(conn: &mut BoxStream, instance: usize) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let body = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let reply = if body.starts_with("DIV") && instance == 2 {
                format!("inst{instance}:{body}\n")
            } else {
                format!("ok:{body}\n")
            };
            if conn.write_all(reply.as_bytes()).is_err() {
                return;
            }
        }
    }
}

/// Binds `want` on `net`, returns the resolved address (TCP port 0 binds an
/// ephemeral port), and pumps accepted connections through [`serve_lines`]
/// on detached threads for the life of the process.
fn spawn_instance(net: &Arc<dyn Network>, want: &ServiceAddr, instance: usize) -> ServiceAddr {
    let mut listener = net.listen(want).expect("instance listener binds");
    let bound = listener.local_addr();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || serve_lines(&mut conn, instance));
        }
    });
    bound
}

/// A proxy client that redials after severed sessions (the Block policy
/// tears the connection down on every divergent exchange).
struct Client {
    net: Arc<dyn Network>,
    addr: ServiceAddr,
    conn: Option<BoxStream>,
    line: Vec<u8>,
    response: Vec<u8>,
}

impl Client {
    fn new(net: Arc<dyn Network>, addr: ServiceAddr) -> Client {
        Client {
            net,
            addr,
            conn: None,
            line: Vec::new(),
            response: Vec::new(),
        }
    }

    fn conn(&mut self) -> &mut BoxStream {
        if self.conn.is_none() {
            let mut conn = self.net.dial(&self.addr).expect("proxy dial succeeds");
            conn.set_read_timeout(Some(Duration::from_secs(10)));
            self.conn = Some(conn);
        }
        self.conn.as_mut().expect("connection just established")
    }

    fn push_line(&mut self, seq: usize, divergent: bool, payload: usize) {
        self.line
            .extend_from_slice(if divergent { b"DIV" } else { b"req" });
        self.line.extend_from_slice(format!("{seq:08}:").as_bytes());
        while self.line.len() < payload {
            self.line.push(b'x');
        }
        self.line.push(b'\n');
    }

    /// One request/response exchange. Returns `true` when the session was
    /// severed (divergence under Block) instead of answered.
    fn exchange(&mut self, seq: usize, divergent: bool, payload: usize) -> bool {
        self.line.clear();
        self.push_line(seq, divergent, payload);
        if !self.write_batch() {
            return true;
        }
        self.response.clear();
        let mut chunk = [0u8; 4096];
        loop {
            match self.conn().read(&mut chunk) {
                Ok(0) | Err(_) => {
                    self.conn = None;
                    return true;
                }
                Ok(n) => {
                    self.response.extend_from_slice(&chunk[..n]);
                    if let Some(pos) = self.response.iter().position(|&b| b == b'\n') {
                        self.response.truncate(pos);
                        return false;
                    }
                }
            }
        }
    }

    /// Writes `self.line` (one or more requests), redialing once if the
    /// previous session was severed. Returns `false` if the write failed.
    fn write_batch(&mut self) -> bool {
        for attempt in 0..2 {
            let line = std::mem::take(&mut self.line);
            let wrote = self.conn().write_all(&line).is_ok();
            self.line = line;
            if wrote {
                return true;
            }
            self.conn = None;
            if attempt == 1 {
                return false;
            }
        }
        false
    }

    /// Pipelines `count` requests in one write, then drains `count`
    /// responses, recording each response's completion latency (measured
    /// from batch start, keep-alive style). Returns how many exchanges were
    /// severed instead of answered.
    fn exchange_pipelined(
        &mut self,
        seq0: usize,
        count: usize,
        payload: usize,
        latency: &Histogram,
    ) -> usize {
        self.line.clear();
        for k in 0..count {
            self.push_line(seq0 + k, false, payload);
        }
        let t0 = Instant::now();
        if !self.write_batch() {
            return count;
        }
        let mut seen = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        while seen < count {
            match self.conn().read(&mut chunk) {
                Ok(0) | Err(_) => {
                    self.conn = None;
                    return count - seen;
                }
                Ok(n) => {
                    for &b in &chunk[..n] {
                        if b == b'\n' {
                            latency.record(t0.elapsed().as_micros() as u64);
                            seen += 1;
                        }
                    }
                }
            }
        }
        0
    }
}

#[derive(Clone, Copy)]
struct Knobs {
    warmup: usize,
    measured: usize,
    payload: usize,
    clients: usize,
    pipeline: usize,
}

/// One (fabric, workload) cell: a fresh 3-instance deployment behind a
/// fresh proxy (so proxy-side histograms and counters are per-workload),
/// driven by `clients` concurrent sessions. `divergent_every` of 0 means
/// never (unanimous), 1 means always, k means one in k; `pipeline` > 1
/// sends that many requests per write (unanimous traffic only).
fn run_workload(
    fabric: &'static str,
    net: &Arc<dyn Network>,
    workload: &'static str,
    divergent_every: usize,
    pipeline: usize,
    knobs: Knobs,
    smoke: bool,
) -> JsonValue {
    let instances: Vec<ServiceAddr> = (0..INSTANCES)
        .map(|i| {
            let want = match fabric {
                "tcp" => ServiceAddr::new("127.0.0.1", 0),
                _ => ServiceAddr::new("inst", 7000 + i as u16),
            };
            spawn_instance(net, &want, i)
        })
        .collect();
    let listen = match fabric {
        "tcp" => ServiceAddr::new("127.0.0.1", 0),
        _ => ServiceAddr::new("rddr", 9000),
    };
    let telemetry = ProxyTelemetry::new("hot");
    let proxy = IncomingProxy::start_with_telemetry(
        Arc::clone(net),
        &listen,
        instances,
        EngineConfig::builder(INSTANCES)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(10))
            .build()
            .expect("static config"),
        line_protocol(),
        Some(telemetry.clone()),
    )
    .expect("proxy starts");

    if smoke {
        // Correctness gate for CI: a unanimous exchange answers, a
        // divergent one severs.
        let mut probe = Client::new(Arc::clone(net), proxy.listen_addr().clone());
        assert!(
            !probe.exchange(0, false, knobs.payload),
            "unanimous exchange must be answered"
        );
        assert!(
            probe.response.ends_with(b"xxx"),
            "echoed body should carry the padded payload, got {:?}",
            String::from_utf8_lossy(&probe.response)
        );
        assert!(
            probe.exchange(1, true, knobs.payload),
            "divergent exchange must sever under Block"
        );
    }

    let hits = telemetry
        .registry
        .counter(&format!("{}_in_fastpath_hits_total", telemetry.prefix));
    let misses = telemetry
        .registry
        .counter(&format!("{}_in_fastpath_misses_total", telemetry.prefix));
    let latency = Histogram::new();
    let severed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let is_divergent = move |seq: usize| divergent_every > 0 && seq.is_multiple_of(divergent_every);

    let started = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..knobs.clients {
            let mut client = Client::new(Arc::clone(net), proxy.listen_addr().clone());
            let latency = &latency;
            let severed = Arc::clone(&severed);
            workers.push(scope.spawn(move || {
                if pipeline > 1 {
                    let sink = Histogram::new();
                    let mut seq = 0usize;
                    while seq < knobs.warmup {
                        client.exchange_pipelined(seq, pipeline, knobs.payload, &sink);
                        seq += pipeline;
                    }
                    let mut done = 0usize;
                    while done < knobs.measured {
                        let count = pipeline.min(knobs.measured - done);
                        let cut = client.exchange_pipelined(seq, count, knobs.payload, latency);
                        severed.fetch_add(cut, std::sync::atomic::Ordering::Relaxed);
                        seq += count;
                        done += count;
                    }
                    return;
                }
                for seq in 0..knobs.warmup {
                    client.exchange(seq, is_divergent(seq), knobs.payload);
                }
                for seq in 0..knobs.measured {
                    let t0 = Instant::now();
                    let cut = client.exchange(
                        knobs.warmup + seq,
                        is_divergent(knobs.warmup + seq),
                        knobs.payload,
                    );
                    if cut {
                        severed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    latency.record(t0.elapsed().as_micros() as u64);
                }
            }));
        }
        for w in workers {
            w.join().expect("bench client thread");
        }
        started.elapsed().as_secs_f64().max(1e-9)
    });
    // Warmup overlaps the measured window (threads start together), biasing
    // the rate slightly *down* — acceptable for a before/after comparison
    // run with identical knobs.
    let total = (knobs.clients * knobs.measured) as f64;
    let rate = total / elapsed;
    let severed = severed.load(std::sync::atomic::Ordering::Relaxed);
    let eval_us = telemetry
        .registry
        .histogram(&format!("{}_in_exchange_eval_latency_us", telemetry.prefix));
    let merge_us = telemetry
        .registry
        .histogram(&format!("{}_in_merge_latency_us", telemetry.prefix));

    println!(
        "{fabric:>4} {workload:<10} {rate:>10.0} ex/s  p50 {:>7.3}ms  p99 {:>7.3}ms  \
         eval-p50 {:>4}us  severed {severed:>6}  fastpath {}/{}",
        latency.quantile(0.50) as f64 / 1000.0,
        latency.quantile(0.99) as f64 / 1000.0,
        eval_us.quantile(0.50),
        hits.get(),
        hits.get() + misses.get(),
    );
    drop(proxy);
    obj([
        (
            "variant",
            s(std::env::var("RDDR_BENCH_VARIANT").unwrap_or_else(|_| "current".into())),
        ),
        ("fabric", s(fabric)),
        ("workload", s(workload)),
        ("clients", num(knobs.clients as f64)),
        ("pipeline", num(pipeline as f64)),
        ("exchanges", num(total)),
        ("exchanges_per_sec", num(rate)),
        ("severed", num(severed as f64)),
        ("fastpath_hits", num(hits.get() as f64)),
        ("fastpath_misses", num(misses.get() as f64)),
        ("engine_eval_p50_us", num(eval_us.quantile(0.50) as f64)),
        ("merge_p50_us", num(merge_us.quantile(0.50) as f64)),
        ("latency", latency_json(&latency)),
    ])
}

/// One fabric's full sweep: the four workloads, one report row each. Each
/// workload gets a fresh fabric, so listeners from the previous deployment
/// can't collide or serve stale sessions.
fn bench_fabric(
    fabric: &'static str,
    net: &dyn Fn() -> Arc<dyn Network>,
    knobs: Knobs,
    smoke: bool,
) -> Vec<JsonValue> {
    [
        ("unanimous", 0usize, knobs.pipeline),
        ("unanimous_sync", 0, 1),
        ("mixed", 10, 1),
        ("divergent", 1, 1),
    ]
    .into_iter()
    .map(|(workload, every, pipeline)| {
        run_workload(fabric, &net(), workload, every, pipeline, knobs, smoke)
    })
    .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = json_path_from_args();
    let variant = std::env::var("RDDR_BENCH_VARIANT").unwrap_or_else(|_| "current".to_string());
    let knobs = Knobs {
        measured: env_usize("RDDR_BENCH_EXCHANGES", if smoke { 300 } else { 6000 }),
        warmup: env_usize("RDDR_BENCH_WARMUP", if smoke { 30 } else { 600 }),
        payload: env_usize("RDDR_BENCH_PAYLOAD", 64),
        clients: env_usize("RDDR_BENCH_CLIENTS", 4),
        pipeline: env_usize("RDDR_BENCH_PIPELINE", 16),
    };

    println!(
        "proxy_hotpath: variant={variant} clients={} exchanges={}/client warmup={} \
         payload={}B pipeline={} instances={INSTANCES}",
        knobs.clients, knobs.measured, knobs.warmup, knobs.payload, knobs.pipeline
    );
    let mut rows = Vec::new();
    rows.extend(bench_fabric(
        "sim",
        &|| Arc::new(SimNet::new()) as Arc<dyn Network>,
        knobs,
        smoke,
    ));
    rows.extend(bench_fabric(
        "tcp",
        &|| Arc::new(TcpNet::new()) as Arc<dyn Network>,
        knobs,
        smoke,
    ));

    if let Some(path) = json {
        let params = obj([
            ("clients", num(knobs.clients as f64)),
            ("exchanges_per_client", num(knobs.measured as f64)),
            ("warmup", num(knobs.warmup as f64)),
            ("payload_bytes", num(knobs.payload as f64)),
            ("pipeline", num(knobs.pipeline as f64)),
            ("instances", num(INSTANCES as f64)),
        ]);
        write_report(&path, "proxy_hotpath", params, rows).expect("report written");
        println!("wrote {}", path.display());
    }
}
