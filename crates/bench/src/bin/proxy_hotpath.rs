//! Proxy hot-path throughput: exchanges/sec and exchange latency through a
//! 3-version [`IncomingProxy`] deployment, over both the in-process SimNet
//! fabric (CPU-bound — isolates the proxy loop cost) and real TCP sockets.
//!
//! Four workloads exercise the diff pipeline differently:
//!
//! * `unanimous` — every instance answers identically and clients pipeline
//!   requests keep-alive style; the overwhelmingly common case the engine's
//!   fast path and the proxy's batched fan-out are built for.
//! * `unanimous_sync` — same, but strict request/response lockstep (no
//!   pipelining), so the per-exchange scheduling floor is visible.
//! * `mixed` — 10% of exchanges diverge (each severs the session under the
//!   default [`ResponsePolicy::Block`], so the client redials).
//! * `divergent` — every exchange diverges; the worst case, pinned so the
//!   fast path can be shown to cost nothing when it never fires.
//!
//! A fifth shape, `unanimous_sweep`, is the reactor's raison d'être: the
//! same unanimous pipelined traffic driven by hundreds to tens of
//! thousands of *concurrent* sessions (sim 256/1k/4k/10k, tcp 256/1k), all
//! multiplexed from one poll-driven driver thread so the process's thread
//! count measures the proxy, not the harness. Every row records
//! `peak_threads` (the `Threads:` line of `/proc/self/status`); under
//! `--smoke` the sweep asserts the count stays flat — within a fixed
//! harness allowance of the reactor worker count — instead of scaling with
//! sessions.
//!
//! ```text
//! proxy_hotpath [--smoke] [--json BENCH_proxy.json]
//! ```
//!
//! Rows carry a `variant` label from `RDDR_BENCH_VARIANT` (default
//! `"current"`) so before/after runs of the same harness can be merged into
//! one committed report. `--smoke` shrinks the exchange counts for CI and
//! asserts the deployment answers correctly. Knobs: `RDDR_BENCH_EXCHANGES`
//! (per client), `RDDR_BENCH_WARMUP`, `RDDR_BENCH_PAYLOAD`,
//! `RDDR_BENCH_CLIENTS` (concurrent sessions, pgbench-style),
//! `RDDR_BENCH_PIPELINE` (requests in flight per client on the pipelined
//! workload), `RDDR_BENCH_SWEEP_EXCHANGES` (total exchanges per sweep row,
//! spread across its sessions).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rddr_bench::report::{latency_json, num, obj, s};
use rddr_bench::{env_usize, json_path_from_args, write_report};
use rddr_core::protocol::LineProtocol;
use rddr_core::EngineConfig;
use rddr_net::{BoxStream, Network, Poller, ServiceAddr, SimNet, TcpNet, Token, TryRead};
use rddr_protocols::JsonValue;
use rddr_proxy::{IncomingProxy, ProtocolFactory, ProxyTelemetry};
use rddr_telemetry::Histogram;

const INSTANCES: usize = 3;

/// Sweep sessions beyond the reactor workers that the harness itself is
/// allowed: main, the sweep driver, 3 instance accept + 3 instance serve
/// threads, the proxy accept thread, and slack for short-lived dials.
const THREAD_ALLOWANCE: usize = 12;

fn line_protocol() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

/// The process's current thread count (`Threads:` in `/proc/self/status`).
/// Returns 0 where procfs is unavailable; the sweep gate is skipped then.
fn thread_count() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Computes one instance's reply to one request line (without the newline).
/// Normal lines get the identical `ok:<line>` answer on every instance;
/// lines starting with `DIV` get a different answer from instance 2 only —
/// the version-diverse replica — so the deployment diverges exactly when
/// the workload asks it to. (Instances 0 and 1 are the filter pair; if they
/// diverged too, the difference would be masked as noise.)
fn reply_for(body: &[u8], instance: usize) -> Vec<u8> {
    let body = String::from_utf8_lossy(body);
    if body.starts_with("DIV") && instance == 2 {
        format!("inst{instance}:{body}\n").into_bytes()
    } else {
        format!("ok:{body}\n").into_bytes()
    }
}

/// One connection owned by the poll-driven instance server.
struct ServeConn {
    conn: BoxStream,
    buf: Vec<u8>,
}

/// A diverse service instance: one accept thread and one poll-driven serve
/// thread handle every connection, however many sessions fan in — the
/// serve side must stay O(1) threads or it would mask the proxy's own
/// thread behavior in the sweep.
struct InstanceServer {
    net: Arc<dyn Network>,
    addr: ServiceAddr,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// Token the accept thread wakes the serve loop with after queuing a new
/// connection; ordinary connections use their slot index.
const ADOPT: u64 = u64::MAX;

impl InstanceServer {
    fn start(net: &Arc<dyn Network>, want: &ServiceAddr, instance: usize) -> InstanceServer {
        let mut listener = net.listen(want).expect("instance listener binds");
        let bound = listener.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let poller = Arc::new(Poller::new());
        let inbox: Arc<Mutex<Vec<BoxStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        {
            let poller = Arc::clone(&poller);
            let inbox = Arc::clone(&inbox);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("bench-inst{instance}-accept"))
                    .spawn(move || {
                        while let Ok(conn) = listener.accept() {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            inbox.lock().push(conn);
                            poller.wake(Token(ADOPT));
                        }
                    })
                    .expect("accept thread spawns"),
            );
        }
        {
            let poller = Arc::clone(&poller);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("bench-inst{instance}-serve"))
                    .spawn(move || serve_loop(&poller, &inbox, &stop, instance))
                    .expect("serve thread spawns"),
            );
        }
        InstanceServer {
            net: Arc::clone(net),
            addr: bound,
            stop,
            poller,
            threads,
        }
    }
}

impl Drop for InstanceServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.net.unbind_addr(&self.addr);
        // Fabrics whose unbind is a no-op (plain TCP) need the accept loop
        // woken so it can observe the stop flag.
        if let Ok(mut conn) = self.net.dial(&self.addr) {
            conn.shutdown();
        }
        self.poller.wake(Token(ADOPT));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Serves every connection of one instance from a single thread: adopt new
/// connections on the `ADOPT` wake, then drain and answer whichever wake.
fn serve_loop(poller: &Poller, inbox: &Mutex<Vec<BoxStream>>, stop: &AtomicBool, instance: usize) {
    let mut conns: std::collections::BTreeMap<u64, ServeConn> = std::collections::BTreeMap::new();
    let mut next_id = 0u64;
    let mut ready = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    loop {
        poller.poll(&mut ready, None);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut woken: Vec<u64> = Vec::new();
        for t in ready.drain(..) {
            if t.0 == ADOPT {
                for mut conn in inbox.lock().drain(..) {
                    let id = next_id;
                    next_id += 1;
                    if !conn.poll_register(poller.readiness(Token(id))) {
                        // Every in-tree transport registers natively; an
                        // exotic one would need a read pump, which would
                        // defeat the thread-count measurement.
                        panic!("bench instance stream cannot register readiness");
                    }
                    conns.insert(
                        id,
                        ServeConn {
                            conn,
                            buf: Vec::new(),
                        },
                    );
                    // Bytes may have landed before registration; serve once
                    // immediately rather than waiting for the next edge.
                    woken.push(id);
                }
            } else {
                woken.push(t.0);
            }
        }
        for id in woken {
            let Some(sc) = conns.get_mut(&id) else {
                continue;
            };
            if !serve_ready(sc, instance, &mut chunk) {
                poller.deregister(Token(id));
                conns.remove(&id);
            }
        }
    }
}

/// Drains one connection to `WouldBlock`, answering each complete line.
/// Returns `false` when the connection is finished (EOF or error).
fn serve_ready(sc: &mut ServeConn, instance: usize, chunk: &mut [u8]) -> bool {
    loop {
        match sc.conn.try_read(chunk) {
            Ok(TryRead::WouldBlock) => return true,
            Ok(TryRead::Eof) | Err(_) => return false,
            Ok(TryRead::Data(n)) => {
                sc.buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = sc.buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = sc.buf.drain(..=pos).collect();
                    let reply = reply_for(&line[..line.len() - 1], instance);
                    if sc.conn.write_all(&reply).is_err() {
                        return false;
                    }
                }
            }
        }
    }
}

/// Binds the three diverse instances on `net` and returns their resolved
/// addresses plus the server handles (dropping a handle tears its threads
/// down, keeping later rows' thread counts clean).
fn spawn_instances(
    net: &Arc<dyn Network>,
    fabric: &str,
) -> (Vec<ServiceAddr>, Vec<InstanceServer>) {
    let mut addrs = Vec::new();
    let mut servers = Vec::new();
    for i in 0..INSTANCES {
        let want = match fabric {
            "tcp" => ServiceAddr::new("127.0.0.1", 0),
            _ => ServiceAddr::new("inst", 7000 + i as u16),
        };
        let server = InstanceServer::start(net, &want, i);
        addrs.push(server.addr.clone());
        servers.push(server);
    }
    (addrs, servers)
}

/// Starts a fresh 3-instance deployment behind a fresh proxy on `net`.
fn start_proxy(
    net: &Arc<dyn Network>,
    fabric: &str,
    instances: Vec<ServiceAddr>,
    telemetry: &ProxyTelemetry,
) -> IncomingProxy {
    let listen = match fabric {
        "tcp" => ServiceAddr::new("127.0.0.1", 0),
        _ => ServiceAddr::new("rddr", 9000),
    };
    IncomingProxy::start_with_telemetry(
        Arc::clone(net),
        &listen,
        instances,
        EngineConfig::builder(INSTANCES)
            .filter_pair(0, 1)
            .response_deadline(Duration::from_secs(10))
            .build()
            .expect("static config"),
        line_protocol(),
        Some(telemetry.clone()),
    )
    .expect("proxy starts")
}

/// A proxy client that redials after severed sessions (the Block policy
/// tears the connection down on every divergent exchange).
struct Client {
    net: Arc<dyn Network>,
    addr: ServiceAddr,
    conn: Option<BoxStream>,
    line: Vec<u8>,
    response: Vec<u8>,
}

/// Appends one padded request line for `seq` to `line`.
fn push_line(line: &mut Vec<u8>, seq: usize, divergent: bool, payload: usize) {
    line.extend_from_slice(if divergent { b"DIV" } else { b"req" });
    line.extend_from_slice(format!("{seq:08}:").as_bytes());
    while line.len() < payload {
        line.push(b'x');
    }
    line.push(b'\n');
}

impl Client {
    fn new(net: Arc<dyn Network>, addr: ServiceAddr) -> Client {
        Client {
            net,
            addr,
            conn: None,
            line: Vec::new(),
            response: Vec::new(),
        }
    }

    fn conn(&mut self) -> &mut BoxStream {
        if self.conn.is_none() {
            let mut conn = self.net.dial(&self.addr).expect("proxy dial succeeds");
            conn.set_read_timeout(Some(Duration::from_secs(10)));
            self.conn = Some(conn);
        }
        self.conn.as_mut().expect("connection just established")
    }

    /// One request/response exchange. Returns `true` when the session was
    /// severed (divergence under Block) instead of answered.
    fn exchange(&mut self, seq: usize, divergent: bool, payload: usize) -> bool {
        self.line.clear();
        push_line(&mut self.line, seq, divergent, payload);
        if !self.write_batch() {
            return true;
        }
        self.response.clear();
        let mut chunk = [0u8; 4096];
        loop {
            match self.conn().read(&mut chunk) {
                Ok(0) | Err(_) => {
                    self.conn = None;
                    return true;
                }
                Ok(n) => {
                    self.response.extend_from_slice(&chunk[..n]);
                    if let Some(pos) = self.response.iter().position(|&b| b == b'\n') {
                        self.response.truncate(pos);
                        return false;
                    }
                }
            }
        }
    }

    /// Writes `self.line` (one or more requests), redialing once if the
    /// previous session was severed. Returns `false` if the write failed.
    fn write_batch(&mut self) -> bool {
        for attempt in 0..2 {
            let line = std::mem::take(&mut self.line);
            let wrote = self.conn().write_all(&line).is_ok();
            self.line = line;
            if wrote {
                return true;
            }
            self.conn = None;
            if attempt == 1 {
                return false;
            }
        }
        false
    }

    /// Pipelines `count` requests in one write, then drains `count`
    /// responses, recording each response's completion latency (measured
    /// from batch start, keep-alive style). Returns how many exchanges were
    /// severed instead of answered.
    fn exchange_pipelined(
        &mut self,
        seq0: usize,
        count: usize,
        payload: usize,
        latency: &Histogram,
    ) -> usize {
        self.line.clear();
        for k in 0..count {
            push_line(&mut self.line, seq0 + k, false, payload);
        }
        let t0 = Instant::now();
        if !self.write_batch() {
            return count;
        }
        let mut seen = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        while seen < count {
            match self.conn().read(&mut chunk) {
                Ok(0) | Err(_) => {
                    self.conn = None;
                    return count - seen;
                }
                Ok(n) => {
                    for &b in &chunk[..n] {
                        if b == b'\n' {
                            latency.record(t0.elapsed().as_micros() as u64);
                            seen += 1;
                        }
                    }
                }
            }
        }
        0
    }
}

#[derive(Clone, Copy)]
struct Knobs {
    warmup: usize,
    measured: usize,
    payload: usize,
    clients: usize,
    pipeline: usize,
    sweep_total: usize,
}

/// One (fabric, workload) cell: a fresh 3-instance deployment behind a
/// fresh proxy (so proxy-side histograms and counters are per-workload),
/// driven by `clients` concurrent sessions. `divergent_every` of 0 means
/// never (unanimous), 1 means always, k means one in k; `pipeline` > 1
/// sends that many requests per write (unanimous traffic only).
fn run_workload(
    fabric: &'static str,
    net: &Arc<dyn Network>,
    workload: &'static str,
    divergent_every: usize,
    pipeline: usize,
    knobs: Knobs,
    smoke: bool,
) -> JsonValue {
    let (instances, _servers) = spawn_instances(net, fabric);
    let telemetry = ProxyTelemetry::new("hot");
    let proxy = start_proxy(net, fabric, instances, &telemetry);

    if smoke {
        // Correctness gate for CI: a unanimous exchange answers, a
        // divergent one severs.
        let mut probe = Client::new(Arc::clone(net), proxy.listen_addr().clone());
        assert!(
            !probe.exchange(0, false, knobs.payload),
            "unanimous exchange must be answered"
        );
        assert!(
            probe.response.ends_with(b"xxx"),
            "echoed body should carry the padded payload, got {:?}",
            String::from_utf8_lossy(&probe.response)
        );
        assert!(
            probe.exchange(1, true, knobs.payload),
            "divergent exchange must sever under Block"
        );
    }

    let hits = telemetry
        .registry
        .counter(&format!("{}_in_fastpath_hits_total", telemetry.prefix));
    let misses = telemetry
        .registry
        .counter(&format!("{}_in_fastpath_misses_total", telemetry.prefix));
    let latency = Histogram::new();
    let severed = Arc::new(AtomicUsize::new(0));
    let peak_threads = Arc::new(AtomicUsize::new(thread_count()));
    let is_divergent = move |seq: usize| divergent_every > 0 && seq.is_multiple_of(divergent_every);

    let started = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..knobs.clients {
            let mut client = Client::new(Arc::clone(net), proxy.listen_addr().clone());
            let latency = &latency;
            let severed = Arc::clone(&severed);
            let peak_threads = Arc::clone(&peak_threads);
            workers.push(scope.spawn(move || {
                if pipeline > 1 {
                    let sink = Histogram::new();
                    let mut seq = 0usize;
                    while seq < knobs.warmup {
                        client.exchange_pipelined(seq, pipeline, knobs.payload, &sink);
                        seq += pipeline;
                    }
                    peak_threads.fetch_max(thread_count(), Ordering::Relaxed);
                    let mut done = 0usize;
                    while done < knobs.measured {
                        let count = pipeline.min(knobs.measured - done);
                        let cut = client.exchange_pipelined(seq, count, knobs.payload, latency);
                        severed.fetch_add(cut, Ordering::Relaxed);
                        seq += count;
                        done += count;
                    }
                    return;
                }
                for seq in 0..knobs.warmup {
                    client.exchange(seq, is_divergent(seq), knobs.payload);
                }
                peak_threads.fetch_max(thread_count(), Ordering::Relaxed);
                for seq in 0..knobs.measured {
                    let t0 = Instant::now();
                    let cut = client.exchange(
                        knobs.warmup + seq,
                        is_divergent(knobs.warmup + seq),
                        knobs.payload,
                    );
                    if cut {
                        severed.fetch_add(1, Ordering::Relaxed);
                    }
                    latency.record(t0.elapsed().as_micros() as u64);
                }
            }));
        }
        for w in workers {
            w.join().expect("bench client thread");
        }
        started.elapsed().as_secs_f64().max(1e-9)
    });
    // Warmup overlaps the measured window (threads start together), biasing
    // the rate slightly *down* — acceptable for a before/after comparison
    // run with identical knobs.
    let total = (knobs.clients * knobs.measured) as f64;
    let rate = total / elapsed;
    let severed = severed.load(Ordering::Relaxed);
    let peak = peak_threads.load(Ordering::Relaxed);
    let eval_us = telemetry
        .registry
        .histogram(&format!("{}_in_exchange_eval_latency_us", telemetry.prefix));
    let merge_us = telemetry
        .registry
        .histogram(&format!("{}_in_merge_latency_us", telemetry.prefix));

    println!(
        "{fabric:>4} {workload:<16} {:>6} cl {rate:>10.0} ex/s  p50 {:>7.3}ms  p99 {:>7.3}ms  \
         eval-p50 {:>4}us  severed {severed:>6}  threads {peak:>3}  fastpath {}/{}",
        knobs.clients,
        latency.quantile(0.50) as f64 / 1000.0,
        latency.quantile(0.99) as f64 / 1000.0,
        eval_us.quantile(0.50),
        hits.get(),
        hits.get() + misses.get(),
    );
    let workers = proxy.workers();
    drop(proxy);
    obj([
        (
            "variant",
            s(std::env::var("RDDR_BENCH_VARIANT").unwrap_or_else(|_| "current".into())),
        ),
        ("fabric", s(fabric)),
        ("workload", s(workload)),
        ("clients", num(knobs.clients as f64)),
        ("pipeline", num(pipeline as f64)),
        ("exchanges", num(total)),
        ("exchanges_per_sec", num(rate)),
        ("severed", num(severed as f64)),
        ("peak_threads", num(peak as f64)),
        ("reactor_workers", num(workers as f64)),
        ("fastpath_hits", num(hits.get() as f64)),
        ("fastpath_misses", num(misses.get() as f64)),
        ("engine_eval_p50_us", num(eval_us.quantile(0.50) as f64)),
        ("merge_p50_us", num(merge_us.quantile(0.50) as f64)),
        ("latency", latency_json(&latency)),
    ])
}

/// One session driven by the poll-driven sweep harness: pipelined unanimous
/// batches, `rounds` of them, all responses counted by newline.
struct SweepConn {
    conn: BoxStream,
    pending: usize,
    rounds_left: usize,
    seq: usize,
    t0: Instant,
    batch: Vec<u8>,
}

impl SweepConn {
    /// Writes the next pipelined batch of `count` requests.
    fn send_batch(&mut self, count: usize, payload: usize) -> bool {
        self.batch.clear();
        for k in 0..count {
            push_line(&mut self.batch, self.seq + k, false, payload);
        }
        self.seq += count;
        self.pending = count;
        self.t0 = Instant::now();
        self.conn.write_all(&self.batch).is_ok()
    }
}

/// The high-concurrency sweep row: `clients` concurrent proxy sessions all
/// multiplexed onto ONE driver thread via the readiness [`Poller`] — the
/// harness adds O(1) threads no matter how many sessions it drives, so
/// `peak_threads` isolates how the proxy scales. Each session pipelines
/// `batch` unanimous requests per round for `rounds` rounds.
fn run_sweep_row(
    fabric: &'static str,
    net: &Arc<dyn Network>,
    clients: usize,
    knobs: Knobs,
    smoke: bool,
) -> JsonValue {
    // Spread the row's total exchanges across its sessions; huge rows trim
    // the batch rather than multiply rounds.
    let batch = (knobs.sweep_total / clients).clamp(1, knobs.pipeline);
    let rounds = (knobs.sweep_total / (clients * batch)).max(1);

    let (instances, _servers) = spawn_instances(net, fabric);
    let telemetry = ProxyTelemetry::new("hot");
    let proxy = start_proxy(net, fabric, instances, &telemetry);
    let workers = proxy.workers();

    let poller = Poller::new();
    let mut conns: Vec<SweepConn> = Vec::with_capacity(clients);
    for i in 0..clients {
        let mut conn = net.dial(proxy.listen_addr()).expect("sweep dial succeeds");
        if !conn.poll_register(poller.readiness(Token(i as u64))) {
            panic!("sweep client stream cannot register readiness");
        }
        conns.push(SweepConn {
            conn,
            pending: 0,
            rounds_left: rounds,
            seq: 0,
            t0: Instant::now(),
            batch: Vec::new(),
        });
    }
    let mut peak = thread_count();

    let latency = Histogram::new();
    let mut severed = 0usize;
    let mut done = 0usize;
    let started = Instant::now();
    for c in conns.iter_mut() {
        c.rounds_left -= 1;
        if !c.send_batch(batch, knobs.payload) {
            severed += c.pending + c.rounds_left * batch;
            c.pending = 0;
            c.rounds_left = 0;
            done += 1;
        }
    }
    let mut ready = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut polls = 0usize;
    let mut last_progress = Instant::now();
    while done < clients {
        if poller.poll(&mut ready, Some(Duration::from_secs(1))) == 0 {
            assert!(
                last_progress.elapsed() < Duration::from_secs(60),
                "sweep stalled: {done}/{clients} sessions finished on {fabric}"
            );
            continue;
        }
        last_progress = Instant::now();
        polls += 1;
        if polls.is_multiple_of(64) {
            peak = peak.max(thread_count());
        }
        for t in ready.drain(..) {
            let Some(c) = conns.get_mut(t.0 as usize) else {
                continue;
            };
            if c.pending == 0 && c.rounds_left == 0 {
                continue;
            }
            let mut dead = false;
            loop {
                match c.conn.try_read(&mut chunk) {
                    Ok(TryRead::WouldBlock) => break,
                    Ok(TryRead::Eof) | Err(_) => {
                        dead = true;
                        break;
                    }
                    Ok(TryRead::Data(n)) => {
                        for &b in &chunk[..n] {
                            if b == b'\n' {
                                latency.record(c.t0.elapsed().as_micros() as u64);
                                c.pending = c.pending.saturating_sub(1);
                            }
                        }
                    }
                }
            }
            if dead {
                severed += c.pending + c.rounds_left * batch;
                c.pending = 0;
                c.rounds_left = 0;
                done += 1;
            } else if c.pending == 0 {
                if c.rounds_left == 0 {
                    done += 1;
                } else {
                    c.rounds_left -= 1;
                    if !c.send_batch(batch, knobs.payload) {
                        severed += c.rounds_left * batch;
                        c.rounds_left = 0;
                        done += 1;
                    }
                }
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    peak = peak.max(thread_count());

    let total = (clients * rounds * batch) as f64;
    let answered = total - severed as f64;
    let rate = answered / elapsed;
    println!(
        "{fabric:>4} {:<16} {clients:>6} cl {rate:>10.0} ex/s  p50 {:>7.3}ms  p99 {:>7.3}ms  \
         severed {severed:>6}  threads {peak:>3} (workers {workers})",
        "unanimous_sweep",
        latency.quantile(0.50) as f64 / 1000.0,
        latency.quantile(0.99) as f64 / 1000.0,
    );
    if smoke {
        assert_eq!(severed, 0, "unanimous sweep must not sever any session");
        // The tentpole gate: thread count must not scale with sessions.
        if peak > 0 {
            assert!(
                peak <= workers + THREAD_ALLOWANCE,
                "thread count scaled with sessions: {peak} threads for {clients} \
                 clients ({workers} reactor workers + {THREAD_ALLOWANCE} allowed)"
            );
        }
    }
    drop(proxy);
    obj([
        (
            "variant",
            s(std::env::var("RDDR_BENCH_VARIANT").unwrap_or_else(|_| "current".into())),
        ),
        ("fabric", s(fabric)),
        ("workload", s("unanimous_sweep")),
        ("clients", num(clients as f64)),
        ("pipeline", num(batch as f64)),
        ("rounds", num(rounds as f64)),
        ("exchanges", num(total)),
        ("exchanges_per_sec", num(rate)),
        ("severed", num(severed as f64)),
        ("peak_threads", num(peak as f64)),
        ("reactor_workers", num(workers as f64)),
        ("latency", latency_json(&latency)),
    ])
}

/// One fabric's full sweep: the four 4-client workloads plus the
/// high-concurrency rows, one report row each. Each row gets a fresh
/// fabric, so listeners from the previous deployment can't collide or
/// serve stale sessions.
fn bench_fabric(
    fabric: &'static str,
    net: &dyn Fn() -> Arc<dyn Network>,
    knobs: Knobs,
    smoke: bool,
) -> Vec<JsonValue> {
    let mut rows: Vec<JsonValue> = [
        ("unanimous", 0usize, knobs.pipeline),
        ("unanimous_sync", 0, 1),
        ("mixed", 10, 1),
        ("divergent", 1, 1),
    ]
    .into_iter()
    .map(|(workload, every, pipeline)| {
        run_workload(fabric, &net(), workload, every, pipeline, knobs, smoke)
    })
    .collect();
    let sweep: &[usize] = match fabric {
        "tcp" => &[256, 1000],
        _ => &[256, 1000, 4000, 10_000],
    };
    for &clients in sweep {
        rows.push(run_sweep_row(fabric, &net(), clients, knobs, smoke));
    }
    rows
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = json_path_from_args();
    let variant = std::env::var("RDDR_BENCH_VARIANT").unwrap_or_else(|_| "current".to_string());
    let knobs = Knobs {
        measured: env_usize("RDDR_BENCH_EXCHANGES", if smoke { 300 } else { 6000 }),
        warmup: env_usize("RDDR_BENCH_WARMUP", if smoke { 30 } else { 600 }),
        payload: env_usize("RDDR_BENCH_PAYLOAD", 64),
        clients: env_usize("RDDR_BENCH_CLIENTS", 4),
        pipeline: env_usize("RDDR_BENCH_PIPELINE", 16),
        sweep_total: env_usize(
            "RDDR_BENCH_SWEEP_EXCHANGES",
            if smoke { 10_000 } else { 120_000 },
        ),
    };

    println!(
        "proxy_hotpath: variant={variant} clients={} exchanges={}/client warmup={} \
         payload={}B pipeline={} sweep_total={} instances={INSTANCES}",
        knobs.clients,
        knobs.measured,
        knobs.warmup,
        knobs.payload,
        knobs.pipeline,
        knobs.sweep_total
    );
    let mut rows = Vec::new();
    rows.extend(bench_fabric(
        "sim",
        &|| Arc::new(SimNet::new()) as Arc<dyn Network>,
        knobs,
        smoke,
    ));
    rows.extend(bench_fabric(
        "tcp",
        &|| Arc::new(TcpNet::new()) as Arc<dyn Network>,
        knobs,
        smoke,
    ));

    if let Some(path) = json {
        let params = obj([
            ("clients", num(knobs.clients as f64)),
            ("exchanges_per_client", num(knobs.measured as f64)),
            ("warmup", num(knobs.warmup as f64)),
            ("payload_bytes", num(knobs.payload as f64)),
            ("pipeline", num(knobs.pipeline as f64)),
            ("sweep_exchanges", num(knobs.sweep_total as f64)),
            ("instances", num(INSTANCES as f64)),
        ]);
        write_report(&path, "proxy_hotpath", params, rows).expect("report written");
        println!("wrote {}", path.display());
    }
}
