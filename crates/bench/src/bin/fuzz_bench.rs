//! Seeded divergence-surface fuzzing campaign (`rddr-fuzz`) as a bench
//! harness: runs one campaign, prints the per-target table, and emits
//! `BENCH_fuzz.json` with inputs/sec, divergences found, false-positive
//! rate, and the mean shrink ratio.
//!
//! ```text
//! fuzz_bench [--smoke] [--chaos] [--seed N] [--targets a,b,...]
//!            [--corpus DIR] [--findings PATH] [--json BENCH_fuzz.json]
//! ```
//!
//! The campaign is a pure function of `(seed, config)`: two runs with the
//! same flags produce byte-identical `--findings` sections and `--corpus`
//! reproducers (CI diffs them). `--smoke` shrinks the budget and gates:
//! zero false positives on the default target set, at least one true
//! positive found + shrunk + triaged, and (with `--chaos`) at least one
//! chaos-only finding from the composed fault plan. Knobs:
//! `RDDR_FUZZ_CASES` (cases per target), `RDDR_FUZZ_ITEMS` (max items per
//! case), `RDDR_FUZZ_SHRINK` (shrink eval budget).

use std::path::PathBuf;
use std::time::Instant;

use rddr_bench::report::{num, obj, s};
use rddr_bench::{env_usize, json_path_from_args, write_report};
use rddr_fuzz::{corpus, fuzz, FuzzConfig, TargetId, Verdict};
use rddr_protocols::JsonValue;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let chaos = std::env::args().any(|a| a == "--chaos");
    let json = json_path_from_args();
    let seed = arg_value("--seed")
        .map(|v| v.parse::<u64>().expect("--seed takes a u64"))
        .unwrap_or(42);
    let targets: Vec<TargetId> = match arg_value("--targets") {
        Some(list) => list
            .split(',')
            .map(|t| TargetId::parse(t.trim()).unwrap_or_else(|| panic!("unknown target {t:?}")))
            .collect(),
        None => TargetId::default_set(),
    };
    let config = FuzzConfig {
        seed,
        targets,
        cases_per_target: env_usize("RDDR_FUZZ_CASES", if smoke { 5 } else { 12 }),
        max_items: env_usize("RDDR_FUZZ_ITEMS", 8),
        shrink_budget: env_usize("RDDR_FUZZ_SHRINK", if smoke { 24 } else { 48 }),
        chaos,
    };
    println!(
        "fuzz_bench: seed={} targets={} cases/target={} max-items={} shrink-budget={} chaos={}",
        config.seed,
        config.targets.len(),
        config.cases_per_target,
        config.max_items,
        config.shrink_budget,
        config.chaos,
    );

    let t0 = Instant::now();
    let report = fuzz(&config).expect("campaign runs");
    let secs = t0.elapsed().as_secs_f64().max(1e-9);

    for st in &report.stats {
        println!(
            "{:>12}  {:>3} cases  {:>4} items  {:>3} divergent  {:>2} findings  \
             {:>4} shrink evals",
            st.target.name(),
            st.cases,
            st.items,
            st.divergent,
            st.findings,
            st.shrink_evals,
        );
    }
    let tp = report.count(Verdict::TruePositive);
    let fp = report.count(Verdict::FalsePositive);
    let co = report.count(Verdict::ChaosOnly);
    let divergent: usize = report.stats.iter().map(|s| s.divergent).sum();
    let items = report.total_items();
    println!(
        "{} items in {secs:.1}s ({:.0} inputs/sec); {divergent} divergent cases -> \
         {} findings: {tp} true-positive, {fp} false-positive, {co} chaos-only; \
         shrink ratio {}‰",
        items,
        items as f64 / secs,
        report.findings.len(),
        report.shrink_ratio_permille(),
    );
    for f in &report.findings {
        println!(
            "  [{}] {} ({} -> {} items, seed {}): {}",
            f.verdict,
            f.target.name(),
            f.original.items.len(),
            f.shrunk.items.len(),
            f.case_seed,
            f.signature,
        );
    }

    if let Some(dir) = arg_value("--corpus") {
        let dir = PathBuf::from(dir);
        corpus::write_dir(&dir, &report.reproducers()).expect("corpus written");
        println!(
            "wrote {} reproducers to {}",
            report.findings.len(),
            dir.display()
        );
    }
    if let Some(path) = arg_value("--findings") {
        std::fs::write(&path, report.findings_json()).expect("findings written");
        println!("wrote {path}");
    }

    if smoke {
        assert_eq!(
            fp, 0,
            "smoke gate: the default target set must triage with zero false positives"
        );
        assert!(
            tp >= 1,
            "smoke gate: the campaign must find, shrink, and triage at least one true positive"
        );
        if chaos {
            assert!(
                co >= 1,
                "smoke gate: fuzz-under-chaos must surface at least one chaos-only finding"
            );
        }
        println!("smoke gates passed");
    }

    if let Some(path) = json {
        let params = obj([
            ("seed", num(seed as f64)),
            ("cases_per_target", num(config.cases_per_target as f64)),
            ("max_items", num(config.max_items as f64)),
            ("shrink_budget", num(config.shrink_budget as f64)),
            ("chaos", s(if chaos { "true" } else { "false" })),
        ]);
        let mut rows: Vec<JsonValue> = vec![obj([
            ("kind", s("summary")),
            ("items", num(items as f64)),
            ("inputs_per_sec", num(items as f64 / secs)),
            ("divergent_cases", num(divergent as f64)),
            ("findings", num(report.findings.len() as f64)),
            ("true_positives", num(tp as f64)),
            ("false_positives", num(fp as f64)),
            ("chaos_only", num(co as f64)),
            (
                "fp_rate",
                num(if report.findings.is_empty() {
                    0.0
                } else {
                    fp as f64 / report.findings.len() as f64
                }),
            ),
            (
                "shrink_ratio",
                num(report.shrink_ratio_permille() as f64 / 1000.0),
            ),
        ])];
        for st in &report.stats {
            rows.push(obj([
                ("kind", s("target")),
                ("target", s(st.target.name())),
                ("cases", num(st.cases as f64)),
                ("items", num(st.items as f64)),
                ("divergent", num(st.divergent as f64)),
                ("findings", num(st.findings as f64)),
                ("shrink_evals", num(st.shrink_evals as f64)),
            ]));
        }
        for f in &report.findings {
            rows.push(obj([
                ("kind", s("finding")),
                ("target", s(f.target.name())),
                ("verdict", s(f.verdict.name())),
                ("signature", s(f.signature.clone())),
                ("case_seed", num(f.case_seed as f64)),
                ("chaos", s(if f.chaos { "true" } else { "false" })),
                ("original_items", num(f.original.items.len() as f64)),
                ("shrunk_items", num(f.shrunk.items.len() as f64)),
                ("shrink_evals", num(f.shrink_evals as f64)),
            ]));
        }
        write_report(&path, "fuzz", params, rows).expect("report written");
        println!("wrote {}", path.display());
    }
}
