//! Storage-engine comparison: the in-memory store vs the `rddr-pgstore`
//! paged engine under a pgbench-shaped workload, on one MiniPg instance
//! (no proxy — this isolates the storage layer itself).
//!
//! Three measurements per engine:
//!
//! * `load` — seeded pgbench dataset generation (`[storage]`-selectable
//!   engines must pay their WAL/heap cost here, the in-memory store only
//!   its vectors).
//! * `select` — point-select transactions/sec over the loaded dataset,
//!   through the key index both engines expose.
//! * `recovery` — the instance is killed (drop + disk crash) and brought
//!   back: the paged engine replays its WAL; the in-memory engine has
//!   nothing durable and must re-run the loader. The gap is the price and
//!   the payoff of the paged engine in one number.
//!
//! ```text
//! pgstore_bench [--smoke] [--json BENCH_pgstore.json]
//! ```
//!
//! Rows carry a `variant` label from `RDDR_BENCH_VARIANT` (default
//! `"current"`). `--smoke` shrinks the dataset and transaction counts for
//! CI and asserts both engines recover to the exact pre-crash state
//! digest. Knobs: `RDDR_BENCH_SCALE` (branches), `RDDR_BENCH_ACCOUNTS`
//! (accounts per branch), `RDDR_BENCH_TXNS` (measured selects).

use std::time::Instant;

use rddr_bench::report::{num, obj, s};
use rddr_bench::{env_usize, json_path_from_args, write_report};
use rddr_pgsim::pgbench::{self, SelectWorkload};
use rddr_pgsim::{Database, DbFlavor, PgVersion, StorageEngine, VDisk};
use rddr_protocols::JsonValue;

#[derive(Clone, Copy)]
struct Knobs {
    scale: usize,
    accounts: usize,
    txns: usize,
}

fn version() -> PgVersion {
    PgVersion::parse("10.7").expect("static version string")
}

fn open(engine: StorageEngine, disk: &VDisk) -> Database {
    Database::with_engine(version(), DbFlavor::Postgres, engine, disk).expect("bench storage opens")
}

/// One engine's full pass: load, select throughput, crash, recover.
fn bench_engine(spec: &'static str, knobs: Knobs, smoke: bool) -> JsonValue {
    let engine = StorageEngine::parse(spec).expect("static engine spec");
    let disk = VDisk::new("bench");
    let mut db = open(engine, &disk);

    let t0 = Instant::now();
    let accounts = pgbench::load_scaled(&mut db, knobs.scale, knobs.accounts).expect("load");
    let load_secs = t0.elapsed().as_secs_f64().max(1e-9);

    let mut session = db.session("app");
    let mut workload = SelectWorkload::new(accounts, 1);
    for _ in 0..(knobs.txns / 10).max(1) {
        db.execute(&mut session, &workload.next_query())
            .expect("warmup select");
    }
    let t0 = Instant::now();
    for _ in 0..knobs.txns {
        db.execute(&mut session, &workload.next_query())
            .expect("measured select");
    }
    let select_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let tps = knobs.txns as f64 / select_secs;

    let bytes = db.storage_bytes();
    let digest = db.state_digest();

    // Kill the instance: the process dies, unsynced writes die with it.
    drop(db);
    disk.crash();

    let t0 = Instant::now();
    let mut db = open(engine, &disk);
    let replayed = db.recovery_stats().map_or(0, |r| r.committed_txns);
    if db.recovery_stats().is_none() {
        // Nothing durable: the in-memory engine's "recovery" is a reload.
        pgbench::load_scaled(&mut db, knobs.scale, knobs.accounts).expect("reload");
    }
    let recovery_secs = t0.elapsed().as_secs_f64().max(1e-9);

    if smoke {
        assert_eq!(
            db.state_digest(),
            digest,
            "{spec}: recovery must reproduce the pre-crash state"
        );
        let mut session = db.session("app");
        let r = db
            .execute(&mut session, "SELECT COUNT(*) FROM pgbench_accounts")
            .expect("post-recovery count");
        assert_eq!(r.rows[0][0].to_string(), accounts.to_string(), "{spec}");
    }

    println!(
        "{spec:>20}  load {load_secs:>7.3}s  select {tps:>9.0} tx/s  \
         recovery {:>7.1}ms ({replayed} txns replayed)  {bytes} bytes",
        recovery_secs * 1e3,
    );
    obj([
        (
            "variant",
            s(std::env::var("RDDR_BENCH_VARIANT").unwrap_or_else(|_| "current".into())),
        ),
        ("engine", s(spec)),
        ("accounts", num(accounts as f64)),
        ("load_secs", num(load_secs)),
        ("load_rows_per_sec", num(accounts as f64 / load_secs)),
        ("select_txns", num(knobs.txns as f64)),
        ("select_tx_per_sec", num(tps)),
        ("storage_bytes", num(bytes as f64)),
        ("recovery_ms", num(recovery_secs * 1e3)),
        ("recovered_txns", num(replayed as f64)),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = json_path_from_args();
    let knobs = Knobs {
        scale: env_usize("RDDR_BENCH_SCALE", if smoke { 2 } else { 5 }),
        accounts: env_usize("RDDR_BENCH_ACCOUNTS", if smoke { 250 } else { 1000 }),
        txns: env_usize("RDDR_BENCH_TXNS", if smoke { 2000 } else { 20000 }),
    };
    println!(
        "pgstore_bench: scale={} accounts/branch={} txns={}",
        knobs.scale, knobs.accounts, knobs.txns
    );
    let rows: Vec<JsonValue> = ["memory", "paged:replay-forward", "paged:shadow-discard"]
        .into_iter()
        .map(|spec| bench_engine(spec, knobs, smoke))
        .collect();
    if let Some(path) = json {
        let params = obj([
            ("scale", num(knobs.scale as f64)),
            ("accounts_per_branch", num(knobs.accounts as f64)),
            ("select_txns", num(knobs.txns as f64)),
        ]);
        write_report(&path, "pgstore", params, rows).expect("report written");
        println!("wrote {}", path.display());
    }
}
