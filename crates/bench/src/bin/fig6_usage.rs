//! Regenerates **Figure 6**: CPU-utilization and memory time series for the
//! three deployments while serving 16 and 128 simultaneous clients.
//!
//! Clients include a small think time, modelling the paper's separate
//! client machine and its network round trip; without it every deployment
//! pins the vCPUs instantly and the 16-client contrast disappears.
//!
//! Expected shapes: memory flat at ≈3× for RDDR throughout; at 16 clients
//! RDDR's CPU ≈3× the baselines; at 128 clients RDDR is pinned near 100%
//! while the baselines sit lower.
//!
//! ```text
//! cargo run --release -p rddr-bench --bin fig6_usage [-- --json BENCH_fig6.json]
//!   RDDR_PGBENCH_SCALE=2  RDDR_PGBENCH_TXNS=150  RDDR_VCPUS=32  RDDR_THINK_MS=10
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rddr_bench::deploy::{
    deploy_pg_baseline, deploy_pg_envoy, deploy_pg_rddr, PgDeployment, PG_COST_MODEL,
};
use rddr_bench::driver::run_pgbench_think;
use rddr_bench::report::{json_path_from_args, num, obj, s, write_report};
use rddr_bench::{env_f64, env_usize};
use rddr_pgsim::{pgbench, Database};
use rddr_protocols::JsonValue;

struct Series {
    label: &'static str,
    /// `(t seconds, cpu utilization 0..1, memory MB)` samples.
    samples: Vec<(f64, f64, f64)>,
}

fn sample_run(
    deployment: PgDeployment,
    accounts: usize,
    clients: usize,
    txns: usize,
    think: Duration,
    vcpus: usize,
) -> Series {
    let label = deployment.label;
    let done = Arc::new(AtomicBool::new(false));
    let sampler_done = Arc::clone(&done);
    let governor = deployment.cluster.governor();
    let usage_cluster = &deployment.cluster;
    let mut samples = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            run_pgbench_think(&deployment, accounts, clients, txns, think);
            sampler_done.store(true, Ordering::Relaxed);
        });
        let interval = Duration::from_millis(100);
        let mut busy_prev = governor.busy_micros();
        let mut t_prev = t0;
        while !done.load(Ordering::Relaxed) {
            std::thread::sleep(interval);
            let now = Instant::now();
            let busy_now = governor.busy_micros();
            let dt = now.duration_since(t_prev).as_secs_f64();
            // Duty-cycle utilization over the sample interval.
            let cpu = ((busy_now - busy_prev) as f64 / 1e6) / (dt * vcpus as f64);
            let usage = usage_cluster.usage("");
            samples.push((
                t0.elapsed().as_secs_f64(),
                cpu.min(1.0),
                usage.mem_bytes as f64 / (1024.0 * 1024.0),
            ));
            busy_prev = busy_now;
            t_prev = now;
        }
        driver.join().expect("driver thread");
    });
    Series { label, samples }
}

fn main() {
    let scale = env_usize("RDDR_PGBENCH_SCALE", 2);
    let txns = env_usize("RDDR_PGBENCH_TXNS", 150);
    let vcpus = env_usize("RDDR_VCPUS", 32);
    let think = Duration::from_millis(env_usize("RDDR_THINK_MS", 10) as u64);
    let time_scale = env_f64("RDDR_TIME_SCALE", 1.0);
    let accounts = scale * pgbench::ACCOUNTS_PER_BRANCH;
    let seed = move |db: &mut Database| {
        pgbench::load(db, scale).expect("pgbench loads");
    };

    println!("RDDR reproduction — Figure 6: CPU and memory usage over time");
    println!("scale {scale}, {txns} txns/client, think {think:?}, {vcpus} vCPUs\n");
    let json_path = json_path_from_args();
    let mut rows: Vec<JsonValue> = Vec::new();
    for clients in [16usize, 128] {
        println!("=== {clients} clients ===");
        println!(
            "{:<8} {:>8} {:>10} {:>12}",
            "deploy", "t(s)", "cpu(%)", "mem(MB)"
        );
        let mut peaks: Vec<(&'static str, f64, f64)> = Vec::new();
        for series in [
            sample_run(
                deploy_pg_rddr(&seed, PG_COST_MODEL, vcpus, time_scale),
                accounts,
                clients,
                txns,
                think,
                vcpus,
            ),
            sample_run(
                deploy_pg_envoy(&seed, PG_COST_MODEL, vcpus, time_scale),
                accounts,
                clients,
                txns,
                think,
                vcpus,
            ),
            sample_run(
                deploy_pg_baseline(&seed, PG_COST_MODEL, vcpus, time_scale),
                accounts,
                clients,
                txns,
                think,
                vcpus,
            ),
        ] {
            for (t, cpu, mem) in &series.samples {
                println!(
                    "{:<8} {:>8.1} {:>10.1} {:>12.2}",
                    series.label,
                    t,
                    cpu * 100.0,
                    mem
                );
            }
            let peak_cpu = series
                .samples
                .iter()
                .map(|(_, c, _)| *c)
                .fold(0.0, f64::max);
            let peak_mem = series
                .samples
                .iter()
                .map(|(_, _, m)| *m)
                .fold(0.0, f64::max);
            rows.push(obj([
                ("clients", num(clients as f64)),
                ("deploy", s(series.label)),
                ("peak_cpu", num(peak_cpu)),
                ("peak_mem_mb", num(peak_mem)),
                (
                    "samples",
                    JsonValue::Array(
                        series
                            .samples
                            .iter()
                            .map(|(t, cpu, mem)| {
                                obj([("t_s", num(*t)), ("cpu", num(*cpu)), ("mem_mb", num(*mem))])
                            })
                            .collect(),
                    ),
                ),
            ]));
            peaks.push((series.label, peak_cpu, peak_mem));
        }
        println!("--- summary ({clients} clients) ---");
        for (label, cpu, mem) in &peaks {
            println!(
                "{label:<8} peak cpu {:>5.1}%  peak mem {mem:.2} MB",
                cpu * 100.0
            );
        }
        println!();
    }
    println!(
        "shape check: rddr memory ~3x the baselines and flat; rddr CPU ~3x the \
         baselines at 16 clients and pinned near 100% at 128 clients."
    );
    if let Some(path) = json_path {
        let params = obj([
            ("scale", num(scale as f64)),
            ("txns_per_client", num(txns as f64)),
            ("vcpus", num(vcpus as f64)),
            ("think_ms", num(think.as_millis() as f64)),
            ("time_scale", num(time_scale)),
        ]);
        write_report(&path, "fig6_usage", params, rows).expect("write --json report");
        println!("wrote {}", path.display());
    }
}
