//! Regenerates **Figure 4**: TPC-H performance of the 3-versioned RDDR
//! deployment normalized to a single-instance baseline, for 1–16 concurrent
//! clients.
//!
//! The paper reports, per client count, box statistics over the per-query
//! normalized values: execution time (top), CPU (middle), and memory
//! (bottom). Expected shapes: memory ≈ 3×; CPU ≈ 3× at one client,
//! dropping as the baseline too saturates the cores; time overhead
//! approaching a constant.
//!
//! ```text
//! cargo run --release -p rddr-bench --bin fig4_tpch [-- --json BENCH_fig4.json]
//!   RDDR_TPCH_SF=0.1        # scale factor (default 0.1)
//!   RDDR_VCPUS=32           # node size (default 32, the paper's m5a.8xlarge)
//!   RDDR_TPCH_ROUNDS=1      # measured repetitions after warmup
//! ```

use rddr_bench::deploy::{deploy_pg_baseline, deploy_pg_rddr, PgDeployment};
use rddr_bench::driver::run_tpch;
use rddr_bench::report::{json_path_from_args, num, obj, summary_json, write_report};
use rddr_bench::{env_f64, env_usize, Summary};
use rddr_pgsim::{tpch, Database, PgServerConfig};
use rddr_protocols::JsonValue;
use std::time::Duration;

/// Runs warmup + measured rounds, returning per-query best-of-rounds times
/// (min filters host-scheduling noise — this harness also runs on small
/// machines, unlike the paper's 32-core testbed) and the peak vCPU
/// utilization observed during the measured window (the paper's "CPU max").
fn measure(deployment: &PgDeployment, clients: usize, rounds: usize) -> (Vec<(u32, f64)>, f64) {
    run_tpch(deployment, clients); // warmup: caches, thread pools, memory
    let governor = deployment.cluster.governor();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler_stop = std::sync::Arc::clone(&stop);
    let sampler_gov = governor.clone();
    let sampler = std::thread::spawn(move || {
        let mut peak = 0.0f64;
        while !sampler_stop.load(std::sync::atomic::Ordering::Relaxed) {
            peak = peak.max(sampler_gov.utilization());
            std::thread::sleep(Duration::from_millis(2));
        }
        peak
    });
    let mut acc: Vec<(u32, f64)> = Vec::new();
    for _ in 0..rounds {
        let times = run_tpch(deployment, clients);
        if acc.is_empty() {
            acc = times;
        } else {
            for (slot, (q, t)) in acc.iter_mut().zip(times) {
                assert_eq!(slot.0, q);
                slot.1 = slot.1.min(t);
            }
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let peak_utilization = sampler.join().expect("sampler thread");
    (acc, peak_utilization)
}

fn main() {
    let sf = env_f64("RDDR_TPCH_SF", 0.1);
    let vcpus = env_usize("RDDR_VCPUS", 32);
    // Simulated cost dominates real execution so the figure's shape does
    // not depend on the host's core count (the paper used 32 real cores).
    let time_scale = env_f64("RDDR_TIME_SCALE", 1.0);
    let rounds = env_usize("RDDR_TPCH_ROUNDS", 1);
    let json_path = json_path_from_args();
    let mut rows: Vec<JsonValue> = Vec::new();
    let cost = PgServerConfig {
        base_cost: Duration::from_millis(2),
        cost_per_row: Duration::from_micros(10),
    };
    let seed = move |db: &mut Database| tpch::load(db, sf).expect("tpch loads");

    println!("RDDR reproduction — Figure 4: TPC-H, 3-version RDDR vs 1x Postgres");
    println!("scale factor {sf}, {vcpus} vCPUs, 21 queries, {rounds} measured rounds\n");
    println!(
        "{:>7}  {:<46}  {:>8}  {:>8}",
        "clients", "normalized time (box over 21 queries)", "CPU util", "peak mem"
    );

    for clients in [1usize, 2, 4, 8, 16] {
        // Fresh deployments per client count so meters start clean.
        let baseline = deploy_pg_baseline(&seed, cost, vcpus, time_scale);
        let rddr = deploy_pg_rddr(&seed, cost, vcpus, time_scale);

        let (base_times, base_util) = measure(&baseline, clients, rounds);
        let (rddr_times, rddr_util) = measure(&rddr, clients, rounds);
        let base_usage = baseline.usage();
        let rddr_usage = rddr.usage();

        let normalized: Vec<f64> = base_times
            .iter()
            .zip(&rddr_times)
            .map(|((qa, base), (qb, ours))| {
                assert_eq!(qa, qb);
                ours / base.max(1e-9)
            })
            .collect();
        let time_summary = Summary::of(&normalized);
        let cpu_ratio = rddr_util / base_util.max(1e-9);
        let mem_ratio = rddr_usage.mem_peak_bytes as f64 / base_usage.mem_peak_bytes.max(1) as f64;
        println!("{clients:>7}  {time_summary:<46}  {cpu_ratio:>7.2}x  {mem_ratio:>7.2}x");
        rows.push(obj([
            ("clients", num(clients as f64)),
            ("normalized_time", summary_json(&time_summary)),
            ("cpu_ratio", num(cpu_ratio)),
            ("mem_ratio", num(mem_ratio)),
            (
                "per_query_normalized",
                JsonValue::Array(
                    base_times
                        .iter()
                        .zip(&normalized)
                        .map(|((q, _), n)| obj([("query", num(*q as f64)), ("ratio", num(*n))]))
                        .collect(),
                ),
            ),
        ]));
        if let Some(stats) = rddr.proxy_stats() {
            assert_eq!(
                stats.divergences, 0,
                "identical instances must not diverge under TPC-H"
            );
        }
    }
    println!(
        "\nshape check: memory ~3x throughout; CPU ~3x at 1 client dropping \
         toward 1x as the baseline saturates too; time overhead approaches \
         a constant rather than growing with clients."
    );
    if let Some(path) = json_path {
        let params = obj([
            ("scale_factor", num(sf)),
            ("vcpus", num(vcpus as f64)),
            ("rounds", num(rounds as f64)),
            ("time_scale", num(time_scale)),
        ]);
        write_report(&path, "fig4_tpch", params, rows).expect("write --json report");
        println!("wrote {}", path.display());
    }
}
