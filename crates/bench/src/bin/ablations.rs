//! Ablation studies for the design choices `DESIGN.md` calls out:
//!
//! 1. **De-noise filter on/off** — false-positive rate on a
//!    nondeterministic service (per-instance session ids).
//! 2. **Response policy** — Block (the paper) vs MajorityVote (classic
//!    N-versioning) availability when one instance misbehaves.
//! 3. **Divergence-signature throttling** — how many times a repeated
//!    exploit gets to execute on the instances with and without it.
//!
//! ```text
//! cargo run -p rddr-bench --bin ablations
//! ```

use rddr_core::protocol::LineProtocol;
use rddr_core::{EngineConfig, NVersionEngine, RddrError, ResponsePolicy, Verdict};

fn session_page(instance: usize, request: usize) -> Vec<u8> {
    // A service that embeds a per-instance random session id: the classic
    // nondeterminism RDDR's filter pair exists to absorb (§IV-B2).
    format!(
        "page {request} sid={instance:04x}{:08x}\n",
        instance * 2654435761 % 997
    )
    .into_bytes()
}

fn ablation_denoise() {
    println!("== 1. de-noise filter (filter pair) ==");
    println!("service output embeds a per-instance session id; 100 benign requests\n");
    for (label, filtered) in [("filter pair ON", true), ("filter pair OFF", false)] {
        let mut builder = EngineConfig::builder(3);
        if filtered {
            builder = builder.filter_pair(0, 1);
        }
        let mut engine = NVersionEngine::new(builder.build().unwrap(), LineProtocol::new());
        let mut false_positives = 0;
        for request in 0..100 {
            let responses: Vec<Vec<u8>> = (0..3).map(|i| session_page(i, request)).collect();
            match engine.evaluate_responses(&responses).unwrap() {
                Verdict::Unanimous(_) => {}
                Verdict::Divergent(_) => false_positives += 1,
            }
        }
        println!("  {label:<16} false positives: {false_positives}/100");
    }
    println!("  => the paper's filter pair eliminates nondeterministic false alarms\n");
}

fn ablation_policy() {
    println!("== 2. response policy: Block vs MajorityVote ==");
    println!("3 instances, instance 2 returns corrupted output on every 5th request\n");
    for policy in [ResponsePolicy::Block, ResponsePolicy::MajorityVote] {
        let mut engine = NVersionEngine::new(
            EngineConfig::builder(3).policy(policy).build().unwrap(),
            LineProtocol::new(),
        );
        let mut answered = 0;
        let mut detected = 0;
        for request in 0..100 {
            let corrupt = request % 5 == 0;
            let responses: Vec<Vec<u8>> = (0..3)
                .map(|i| {
                    if corrupt && i == 2 {
                        format!("CORRUPT {request}\n").into_bytes()
                    } else {
                        format!("ok {request}\n").into_bytes()
                    }
                })
                .collect();
            for (i, r) in responses.iter().enumerate() {
                engine.push_response(i, r).unwrap();
            }
            let outcome = engine.finish_exchange().unwrap();
            if outcome.report.diverged() {
                detected += 1;
            }
            if outcome.forward.is_some() {
                answered += 1;
            }
        }
        println!("  {policy:?}: answered {answered}/100, divergences detected {detected}/100");
    }
    println!(
        "  => Block trades availability for certainty (the paper's choice for \
         data-leak defense); MajorityVote keeps answering\n"
    );
}

fn ablation_throttle() {
    println!("== 3. divergence-signature throttling (§IV-D) ==");
    println!("attacker replays the same diverging input 50 times\n");
    for (label, throttled) in [("throttle ON (budget 0)", true), ("throttle OFF", false)] {
        let mut builder = EngineConfig::builder(2);
        if throttled {
            builder = builder.throttle(0);
        }
        let mut engine = NVersionEngine::new(builder.build().unwrap(), LineProtocol::new());
        let mut executed_on_instances = 0;
        let mut refused = 0;
        for _ in 0..50 {
            match engine.replicate_request(b"exploit-input\n") {
                Ok(_) => {
                    executed_on_instances += 1;
                    engine
                        .evaluate_responses(&[b"a\n".to_vec(), b"b\n".to_vec()])
                        .unwrap();
                }
                Err(RddrError::Throttled) => refused += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        println!(
            "  {label:<22} reached instances: {executed_on_instances}/50, refused: {refused}/50"
        );
    }
    println!("  => throttling caps the work a repeated diverging input can cause\n");
}

fn ablation_n_sweep() {
    println!("== 4. engine cost vs N (instances) ==");
    let payload: Vec<Vec<u8>> = (0..6)
        .map(|_| b"line one\nline two\nline three\n".to_vec())
        .collect();
    for n in 2..=6 {
        let mut engine = NVersionEngine::new(
            EngineConfig::builder(n).build().unwrap(),
            LineProtocol::new(),
        );
        let t0 = std::time::Instant::now();
        let rounds = 2_000;
        for _ in 0..rounds {
            engine.evaluate_responses(&payload[..n]).unwrap();
        }
        let per = t0.elapsed().as_secs_f64() / rounds as f64 * 1e6;
        println!("  N={n}: {per:.1} us/exchange");
    }
    println!("  => diff cost grows roughly linearly in N, as the paper's\n     near-linear overhead claim expects\n");
}

fn main() {
    println!("RDDR reproduction — design ablations\n");
    ablation_denoise();
    ablation_policy();
    ablation_throttle();
    ablation_n_sweep();
}
