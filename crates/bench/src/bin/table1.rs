//! Regenerates **Table I**: the ten vulnerability-mitigation scenarios.
//!
//! ```text
//! cargo run -p rddr-bench --bin table1 [--only <substring>] [--verbose]
//! ```

use rddr_vulns::{render_table, MitigationReport, TableRow, TABLE_I};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let verbose = args.iter().any(|a| a == "--verbose");

    let rows: Vec<&TableRow> = TABLE_I
        .iter()
        .filter(|r| {
            only.as_deref().is_none_or(|needle| {
                r.cve
                    .to_ascii_lowercase()
                    .contains(&needle.to_ascii_lowercase())
            })
        })
        .collect();
    if rows.is_empty() {
        eprintln!("no Table I row matches {only:?}");
        std::process::exit(2);
    }

    println!("RDDR reproduction — Table I: vulnerability mitigations\n");
    let mut results: Vec<(&TableRow, MitigationReport)> = Vec::new();
    for row in rows {
        eprint!("running {:<16} ... ", row.cve);
        let t0 = std::time::Instant::now();
        let report = (row.run)();
        eprintln!(
            "{} ({:.2}s)",
            if report.mitigated() {
                "mitigated"
            } else {
                "NOT MITIGATED"
            },
            t0.elapsed().as_secs_f64()
        );
        results.push((row, report));
    }
    println!("{}", render_table(&results));
    if verbose {
        for (_, report) in &results {
            println!("{report}");
        }
    }
    let failures = results.iter().filter(|(_, r)| !r.mitigated()).count();
    if failures > 0 {
        eprintln!("{failures} scenario(s) NOT mitigated");
        std::process::exit(1);
    }
    println!(
        "all {} scenarios mitigated; benign traffic unaffected in every case",
        results.len()
    );
}
