//! Regenerates the **Figure 1 / §II** micro-versioning arithmetic: on the
//! DeathStarBench-style social network, 3-versioning only "Search" and
//! "Compose Post" costs ~20–33% extra containers instead of the 300% of
//! N-versioning the entire deployment.
//!
//! ```text
//! cargo run -p rddr-bench --bin fig1_social
//! ```

use rddr_bench::social::{deploy_microversioned, deploy_plain, PROTECTED, SERVICES};
use rddr_httpsim::HttpClient;
use rddr_orchestra::Cluster;

fn main() {
    println!("RDDR reproduction — Figure 1: micro-versioning the social network\n");

    let plain = deploy_plain(Cluster::new(8));
    println!(
        "plain deployment: {} services, {} containers",
        SERVICES.len(),
        plain.container_count()
    );

    let n = 3;
    let protected = deploy_microversioned(Cluster::new(8), n);
    let extra = protected.container_count() - plain.container_count();
    println!(
        "micro-versioned ({n} versions of {:?}): {} containers (+{extra})",
        PROTECTED,
        protected.container_count()
    );

    let micro_overhead = 100.0 * extra as f64 / plain.container_count() as f64;
    let full_overhead = 100.0 * (n as f64 - 1.0);
    println!("\ncontainer overhead, assuming equally costly containers (§II):");
    println!("  micro-versioning (RDDR): {micro_overhead:.0}%");
    println!("  whole-deployment {n}-versioning: {full_overhead:.0}%");

    // Every service still answers, protected ones through their RDDR proxy.
    let fabric = protected.cluster.net();
    let mut healthy = 0;
    for (name, addr) in &protected.entrypoints {
        let ok = HttpClient::connect(&fabric, addr)
            .and_then(|mut c| c.get("/"))
            .map(|r| r.status == 200)
            .unwrap_or(false);
        assert!(ok, "{name} must answer through its entry point");
        healthy += 1;
    }
    println!("\nall {healthy} service entry points healthy (protected ones via RDDR).");
}
