use std::fmt;
use std::sync::Arc;

use rddr_telemetry::{Counter, Histogram, Registry};

/// Counters accumulated by an [`crate::NVersionEngine`] over its lifetime.
///
/// Since the telemetry subsystem landed this is a *snapshot view*: the live
/// values are registry-backed counters (see [`EngineCounters`]) shared with
/// the `/metrics` admin endpoint, and [`crate::NVersionEngine::metrics`]
/// reads them into this plain struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Request/response exchanges evaluated.
    pub exchanges: u64,
    /// Exchanges that ended in a divergence verdict.
    pub divergences: u64,
    /// Segment positions masked as filter-pair noise, cumulative.
    pub noise_masked: u64,
    /// Segments excluded by known-variance rules, cumulative.
    pub variance_excluded: u64,
    /// Ephemeral tokens captured, cumulative.
    pub tokens_captured: u64,
    /// Ephemeral token substitutions applied to requests, cumulative.
    pub tokens_substituted: u64,
    /// Requests refused because they matched a known divergence signature.
    pub throttled: u64,
    /// Exchanges settled by the unanimous fast path (byte-identical critical
    /// frames; the de-noise/diff pipeline was skipped).
    pub fastpath_hits: u64,
    /// Exchanges that failed the fast check and paid the full pipeline.
    /// Only counted while the fast path is enabled and eligible.
    pub fastpath_misses: u64,
}

impl EngineMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of exchanges that diverged (0 when no exchanges yet).
    pub fn divergence_rate(&self) -> f64 {
        if self.exchanges == 0 {
            0.0
        } else {
            self.divergences as f64 / self.exchanges as f64
        }
    }
}

impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exchanges={} divergences={} noise_masked={} variance_excluded={} \
             tokens_captured={} tokens_substituted={} throttled={} \
             fastpath_hits={} fastpath_misses={}",
            self.exchanges,
            self.divergences,
            self.noise_masked,
            self.variance_excluded,
            self.tokens_captured,
            self.tokens_substituted,
            self.throttled,
            self.fastpath_hits,
            self.fastpath_misses,
        )
    }
}

/// Registry-backed handles behind an engine's [`EngineMetrics`].
///
/// Every engine owns one. By default the handles live in a private
/// [`Registry`], preserving per-engine counts; a deployment that wants one
/// scrape surface for a whole service builds the counters on a shared
/// registry ([`EngineCounters::on`]) so every session's engine increments
/// the same series.
#[derive(Debug, Clone)]
pub struct EngineCounters {
    registry: Arc<Registry>,
    pub(crate) exchanges: Arc<Counter>,
    pub(crate) divergences: Arc<Counter>,
    pub(crate) noise_masked: Arc<Counter>,
    pub(crate) variance_excluded: Arc<Counter>,
    pub(crate) tokens_captured: Arc<Counter>,
    pub(crate) tokens_substituted: Arc<Counter>,
    pub(crate) throttled: Arc<Counter>,
    pub(crate) fastpath_hits: Arc<Counter>,
    pub(crate) fastpath_misses: Arc<Counter>,
    /// Wall-clock cost of de-noise + diff + respond, microseconds.
    pub(crate) eval_latency_us: Arc<Histogram>,
}

impl EngineCounters {
    /// Counters on a fresh private registry (per-engine semantics).
    pub fn private() -> Self {
        Self::on(Arc::new(Registry::new()), "rddr")
    }

    /// Counters registered on `registry` under `prefix` (e.g. a prefix of
    /// `"rddr_pg"` yields `rddr_pg_exchanges_total`).
    pub fn on(registry: Arc<Registry>, prefix: &str) -> Self {
        let name = |suffix: &str| format!("{prefix}_{suffix}");
        EngineCounters {
            exchanges: registry.counter(&name("exchanges_total")),
            divergences: registry.counter(&name("divergences_total")),
            noise_masked: registry.counter(&name("noise_masked_total")),
            variance_excluded: registry.counter(&name("variance_excluded_total")),
            tokens_captured: registry.counter(&name("tokens_captured_total")),
            tokens_substituted: registry.counter(&name("tokens_substituted_total")),
            throttled: registry.counter(&name("throttled_total")),
            fastpath_hits: registry.counter(&name("fastpath_hits_total")),
            fastpath_misses: registry.counter(&name("fastpath_misses_total")),
            eval_latency_us: registry.histogram(&name("exchange_eval_latency_us")),
            registry,
        }
    }

    /// The registry the counters live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Reads the current counter values into a plain [`EngineMetrics`].
    pub fn snapshot(&self) -> EngineMetrics {
        EngineMetrics {
            exchanges: self.exchanges.get(),
            divergences: self.divergences.get(),
            noise_masked: self.noise_masked.get(),
            variance_excluded: self.variance_excluded.get(),
            tokens_captured: self.tokens_captured.get(),
            tokens_substituted: self.tokens_substituted.get(),
            throttled: self.throttled.get(),
            fastpath_hits: self.fastpath_hits.get(),
            fastpath_misses: self.fastpath_misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_rate_handles_zero() {
        assert_eq!(EngineMetrics::new().divergence_rate(), 0.0);
    }

    #[test]
    fn divergence_rate_computes_fraction() {
        let m = EngineMetrics {
            exchanges: 4,
            divergences: 1,
            ..EngineMetrics::new()
        };
        assert!((m.divergence_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_counters() {
        let s = EngineMetrics::new().to_string();
        for key in [
            "exchanges",
            "divergences",
            "noise_masked",
            "throttled",
            "fastpath_hits",
            "fastpath_misses",
        ] {
            assert!(s.contains(key), "missing {key}");
        }
    }

    #[test]
    fn counters_snapshot_into_metrics() {
        let counters = EngineCounters::private();
        counters.exchanges.add(4);
        counters.divergences.inc();
        let m = counters.snapshot();
        assert_eq!(m.exchanges, 4);
        assert_eq!(m.divergences, 1);
        assert!((m.divergence_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shared_registry_sums_across_engines() {
        let registry = Arc::new(Registry::new());
        let a = EngineCounters::on(registry.clone(), "rddr_pg");
        let b = EngineCounters::on(registry.clone(), "rddr_pg");
        a.exchanges.inc();
        b.exchanges.inc();
        assert_eq!(a.snapshot().exchanges, 2, "sessions share service counters");
        assert!(registry
            .render_prometheus()
            .contains("rddr_pg_exchanges_total 2"));
    }
}
