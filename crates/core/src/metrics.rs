use std::fmt;

/// Counters accumulated by an [`crate::NVersionEngine`] over its lifetime.
///
/// Exposed so deployments can export RDDR health (exchange volume, how often
/// the de-noiser fires, how many connections were severed); serializable
/// for metrics pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineMetrics {
    /// Request/response exchanges evaluated.
    pub exchanges: u64,
    /// Exchanges that ended in a divergence verdict.
    pub divergences: u64,
    /// Segment positions masked as filter-pair noise, cumulative.
    pub noise_masked: u64,
    /// Segments excluded by known-variance rules, cumulative.
    pub variance_excluded: u64,
    /// Ephemeral tokens captured, cumulative.
    pub tokens_captured: u64,
    /// Ephemeral token substitutions applied to requests, cumulative.
    pub tokens_substituted: u64,
    /// Requests refused because they matched a known divergence signature.
    pub throttled: u64,
}

impl EngineMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of exchanges that diverged (0 when no exchanges yet).
    pub fn divergence_rate(&self) -> f64 {
        if self.exchanges == 0 {
            0.0
        } else {
            self.divergences as f64 / self.exchanges as f64
        }
    }
}

impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exchanges={} divergences={} noise_masked={} variance_excluded={} \
             tokens_captured={} tokens_substituted={} throttled={}",
            self.exchanges,
            self.divergences,
            self.noise_masked,
            self.variance_excluded,
            self.tokens_captured,
            self.tokens_substituted,
            self.throttled,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_rate_handles_zero() {
        assert_eq!(EngineMetrics::new().divergence_rate(), 0.0);
    }

    #[test]
    fn divergence_rate_computes_fraction() {
        let m = EngineMetrics { exchanges: 4, divergences: 1, ..EngineMetrics::new() };
        assert!((m.divergence_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_counters() {
        let s = EngineMetrics::new().to_string();
        for key in ["exchanges", "divergences", "noise_masked", "throttled"] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
