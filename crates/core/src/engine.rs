//! The N-versioning engine: one instance per protected microservice
//! connection, orchestrating Replicate → De-noise → Diff → Respond.

use std::sync::Arc;
use std::time::Instant;

use bytes::BytesMut;
use rddr_telemetry::{AuditLog, DivergenceRecord, Registry, Span};

use crate::denoise::{common_prefix, common_suffix};
use crate::metrics::EngineCounters;
use crate::{
    diff_segments, Direction, DivergenceReport, EngineConfig, EngineMetrics, EphemeralStore, Frame,
    NoiseMask, PolicyDecision, Protocol, RddrError, Result, Segment, SegmentMask,
    SignatureThrottle,
};

/// Per-connection mutable state: live ephemeral tokens and the divergence
/// signature throttle.
#[derive(Debug, Default)]
pub struct SessionState {
    /// Captured ephemeral (CSRF-like) tokens awaiting substitution.
    pub ephemeral: EphemeralStore,
    /// Divergence-signature throttle, when configured.
    pub throttle: Option<SignatureThrottle>,
}

impl SessionState {
    /// Whether the signature throttle is configured *and* has recorded at
    /// least one divergence signature. Callers that batch requests ahead of
    /// the throttle check (pipelined fan-out) use this to fall back to
    /// frame-at-a-time processing, so the throttle state can no longer lag
    /// behind frames already committed to a batch.
    pub fn throttle_engaged(&self) -> bool {
        self.throttle.as_ref().is_some_and(|t| !t.is_empty())
    }
}

/// The verdict for one exchange.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// All instances agreed (after de-noising); the payload is the response
    /// to forward — the first instance's bytes, per the paper.
    Unanimous(Vec<u8>),
    /// Instances disagreed; the report describes how.
    Divergent(DivergenceReport),
}

/// One instance's share of a replicated request.
///
/// The overwhelmingly common case is `Shared`: every instance reads the same
/// single allocation. A private `Rewritten` copy exists only when
/// ephemeral-token substitution actually rewrote the bytes for that instance
/// (copy-on-write). Derefs to `[u8]`, so writers consume it like a plain
/// byte slice.
#[derive(Debug, Clone)]
pub enum RequestCopy {
    /// Untouched request bytes, shared across all instances.
    Shared(Arc<[u8]>),
    /// Bytes rewritten for this instance by ephemeral-token substitution.
    Rewritten(Vec<u8>),
}

impl RequestCopy {
    /// Whether this copy shares the original allocation (no rewrite fired).
    pub fn is_shared(&self) -> bool {
        matches!(self, RequestCopy::Shared(_))
    }

    /// The request bytes to send to the instance.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            RequestCopy::Shared(bytes) => bytes,
            RequestCopy::Rewritten(bytes) => bytes,
        }
    }
}

impl std::ops::Deref for RequestCopy {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for RequestCopy {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// Everything the proxy needs to act on one completed exchange.
#[derive(Debug, Clone)]
pub struct ExchangeOutcome {
    /// The divergence report (empty details when unanimous). Instance
    /// indices are in the engine's original 0..N numbering even when some
    /// instances were ejected before the diff.
    pub report: DivergenceReport,
    /// What the response policy decided.
    pub decision: PolicyDecision,
    /// Bytes to forward to the client, when the decision is `Forward`.
    pub forward: Option<Vec<u8>>,
    /// Instances (original indices) outvoted by a majority forward: they
    /// diverged but the exchange was answered anyway, so the proxy should
    /// quarantine them rather than sever. Empty when unanimous or severed.
    pub quarantined: Vec<usize>,
}

impl ExchangeOutcome {
    /// Whether the connection should be severed.
    pub fn severed(&self) -> bool {
        matches!(self.decision, PolicyDecision::Sever { .. })
    }
}

/// The RDDR engine for one protected microservice connection.
///
/// The engine is synchronous and transport-free: the proxy feeds it request
/// bytes and per-instance response bytes; the engine renders verdicts. See
/// the crate-level docs for the phase pipeline.
pub struct NVersionEngine {
    config: EngineConfig,
    protocol: Box<dyn Protocol>,
    state: SessionState,
    counters: EngineCounters,
    audit: Option<Arc<AuditLog>>,
    service: String,
    span: Option<Arc<Span>>,
    // Token totals already folded into the (possibly shared) counters; the
    // ephemeral store reports running totals, so deltas are added.
    tokens_captured_reported: u64,
    tokens_substituted_reported: u64,
    response_bufs: Vec<BytesMut>,
    pending_frames: Vec<Vec<Frame>>,
    active: Vec<bool>,
    // Captured only when the throttle or audit path will read it back.
    last_request: Option<Arc<[u8]>>,
    direction: Direction,
}

impl std::fmt::Debug for NVersionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NVersionEngine")
            .field("instances", &self.config.instances())
            .field("protocol", &self.protocol.name())
            .field("metrics", &self.counters.snapshot())
            .finish()
    }
}

impl NVersionEngine {
    /// Creates an engine from a validated configuration and protocol module.
    pub fn new(config: EngineConfig, protocol: impl Protocol + 'static) -> Self {
        Self::from_boxed(config, Box::new(protocol))
    }

    /// Like [`NVersionEngine::new`] but accepting an already-boxed protocol
    /// (the proxies build protocols from runtime configuration).
    pub fn from_boxed(config: EngineConfig, protocol: Box<dyn Protocol>) -> Self {
        let n = config.instances();
        let throttle = config.throttle_budget().map(SignatureThrottle::new);
        Self {
            config,
            protocol,
            state: SessionState {
                ephemeral: EphemeralStore::new(),
                throttle,
            },
            counters: EngineCounters::private(),
            audit: None,
            service: String::new(),
            span: None,
            tokens_captured_reported: 0,
            tokens_substituted_reported: 0,
            response_bufs: (0..n).map(|_| BytesMut::new()).collect(),
            pending_frames: (0..n).map(|_| Vec::new()).collect(),
            active: vec![true; n],
            last_request: None,
            direction: Direction::Response,
        }
    }

    /// Attaches this engine to a shared telemetry surface: its counters move
    /// onto `registry` under `prefix` (so every session of a service feeds
    /// one set of series, scraped via the admin endpoint) and divergences are
    /// appended to `audit` when provided.
    ///
    /// Call before the first exchange — counts accumulated on the private
    /// registry are not carried over.
    pub fn with_telemetry(
        mut self,
        registry: Arc<Registry>,
        prefix: &str,
        audit: Option<Arc<AuditLog>>,
    ) -> Self {
        self.counters = EngineCounters::on(registry, prefix);
        self.service = prefix.to_string();
        self.audit = audit;
        self
    }

    /// Associates the current exchange with a span; the engine records
    /// `replicate`/`diff`/`respond:*` events on it and attaches its timeline
    /// to any divergence audit record.
    pub fn set_span(&mut self, span: Arc<Span>) {
        self.span = Some(span);
    }

    /// Detaches and returns the current span, if any.
    pub fn take_span(&mut self) -> Option<Arc<Span>> {
        self.span.take()
    }

    /// Configures which traffic direction this engine diffs. The incoming
    /// proxy diffs instance *responses* (the default); the outgoing proxy
    /// diffs instance *requests* to a shared backend (§IV-B).
    pub fn diff_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Accumulated metrics — a snapshot of the engine's registry counters.
    /// With shared telemetry attached, values cover every engine on the same
    /// registry prefix, not just this one.
    pub fn metrics(&self) -> EngineMetrics {
        self.counters.snapshot()
    }

    /// The registry-backed counter handles (shared with `/metrics`).
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// The per-connection session state (ephemeral tokens, throttle).
    pub fn session(&self) -> &SessionState {
        &self.state
    }

    /// **Replicate**: produces the per-instance request copies, applying
    /// ephemeral-token substitution (§IV-B3) and the divergence-signature
    /// throttle (§IV-D).
    ///
    /// # Errors
    ///
    /// Returns [`RddrError::Throttled`] if the request matches a recorded
    /// divergence signature beyond its budget.
    pub fn replicate_request(&mut self, request: &[u8]) -> Result<Vec<RequestCopy>> {
        if let Some(throttle) = &self.state.throttle {
            if throttle.should_refuse(request) {
                self.counters.throttled.inc();
                if let Some(span) = &self.span {
                    span.event("throttle:refused");
                }
                return Err(RddrError::Throttled);
            }
        }
        if let Some(span) = &self.span {
            span.event("replicate");
        }
        // One shared allocation serves every instance that needs no rewrite.
        let shared: Arc<[u8]> = Arc::from(request);
        self.last_request =
            (self.state.throttle.is_some() || self.audit.is_some()).then(|| Arc::clone(&shared));
        let n = self.config.instances();
        let copies = if self.protocol.supports_ephemeral() && !self.state.ephemeral.is_empty() {
            let out: Vec<RequestCopy> = (0..n)
                .map(|i| {
                    match self.state.ephemeral.substitute_rewritten(request, i) {
                        // Copy-on-write: only a fired substitution pays for
                        // a private copy.
                        Some(rewritten) => RequestCopy::Rewritten(rewritten),
                        None => RequestCopy::Shared(Arc::clone(&shared)),
                    }
                })
                .collect();
            self.state.ephemeral.purge_consumed();
            let total = self.state.ephemeral.substituted_total();
            self.counters
                .tokens_substituted
                .add(total - self.tokens_substituted_reported);
            self.tokens_substituted_reported = total;
            out
        } else {
            (0..n)
                .map(|_| RequestCopy::Shared(Arc::clone(&shared)))
                .collect()
        };
        Ok(copies)
    }

    /// Feeds raw response bytes from one instance, splitting complete frames.
    ///
    /// # Errors
    ///
    /// Returns [`RddrError::InstanceCountMismatch`] for an out-of-range
    /// instance index, or a protocol error on malformed traffic.
    pub fn push_response(&mut self, instance: usize, bytes: &[u8]) -> Result<()> {
        let n = self.config.instances();
        if instance >= n {
            return Err(RddrError::InstanceCountMismatch {
                expected: n,
                got: instance + 1,
            });
        }
        if !self.active[instance] {
            // Ejected instances may still have a reader thread racing; their
            // bytes are dropped rather than corrupting the next diff.
            return Ok(());
        }
        self.response_bufs[instance].extend_from_slice(bytes);
        let frames = self
            .protocol
            .split_frames(&mut self.response_bufs[instance], self.direction)?;
        self.pending_frames[instance].extend(frames);
        Ok(())
    }

    /// Whether every *active* instance has produced one complete exchange
    /// unit (ejected instances are not waited for).
    pub fn exchange_ready(&self) -> bool {
        self.pending_frames
            .iter()
            .zip(&self.active)
            .filter(|&(_, active)| *active)
            .all(|(frames, _)| self.protocol.exchange_complete(frames, self.direction))
    }

    /// Whether one specific instance has produced a complete exchange unit.
    pub fn instance_complete(&self, instance: usize) -> bool {
        self.pending_frames
            .get(instance)
            .is_some_and(|frames| self.protocol.exchange_complete(frames, self.direction))
    }

    /// Marks an instance as failed (timed out or disconnected). The instance
    /// contributes an empty output, which registers as structural divergence
    /// unless every instance failed identically.
    pub fn mark_failed(&mut self, instance: usize) {
        if instance < self.pending_frames.len() && self.active[instance] {
            self.pending_frames[instance].clear();
            self.pending_frames[instance].push(Frame::new("failed", Vec::new()));
        }
    }

    /// Ejects an instance from the session: its buffered bytes are dropped
    /// and subsequent exchanges diff over the survivors only. Idempotent;
    /// out-of-range indices are ignored.
    pub fn eject(&mut self, instance: usize) {
        if let Some(slot) = self.active.get_mut(instance) {
            *slot = false;
        }
        if let Some(buf) = self.response_bufs.get_mut(instance) {
            buf.clear();
        }
        if let Some(frames) = self.pending_frames.get_mut(instance) {
            frames.clear();
        }
    }

    /// Readmits a previously ejected instance with fresh buffers (the rejoin
    /// step after a respawn + warm-up probe). Idempotent.
    pub fn readmit(&mut self, instance: usize) {
        if let Some(slot) = self.active.get_mut(instance) {
            *slot = true;
        }
        if let Some(buf) = self.response_bufs.get_mut(instance) {
            buf.clear();
        }
        if let Some(frames) = self.pending_frames.get_mut(instance) {
            frames.clear();
        }
    }

    /// Whether an instance is currently part of the diff set.
    pub fn is_active(&self, instance: usize) -> bool {
        self.active.get(instance).copied().unwrap_or(false)
    }

    /// How many instances are currently part of the diff set.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// The original indices of the instances currently in the diff set.
    pub fn active_instances(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&i| self.active[i]).collect()
    }

    /// **De-noise + Diff + Respond**: evaluates the buffered exchange.
    ///
    /// Consumes the pending frames and returns the outcome. On divergence,
    /// the triggering request's signature is recorded for throttling.
    ///
    /// # Errors
    ///
    /// Returns [`RddrError::Protocol`] if called before any instance
    /// produced a complete exchange (`exchange_ready` is false and no frames
    /// are buffered at all).
    pub fn finish_exchange(&mut self) -> Result<ExchangeOutcome> {
        self.finish_exchange_impl(false)
    }

    /// Like [`NVersionEngine::finish_exchange`], but consumes exactly one
    /// exchange *unit* per instance (per [`Protocol::exchange_take`]) instead
    /// of everything buffered. The proxies use this when evaluating pipelined
    /// exchanges, where responses pair 1:1 with the batched requests; the
    /// take-all variant stays the default so a surplus frame (e.g. a leaked
    /// extra line) diffs against the exchange that provoked it.
    ///
    /// # Errors
    ///
    /// Same as [`NVersionEngine::finish_exchange`].
    pub fn finish_exchange_unit(&mut self) -> Result<ExchangeOutcome> {
        self.finish_exchange_impl(true)
    }

    fn finish_exchange_impl(&mut self, unit: bool) -> Result<ExchangeOutcome> {
        // `live[compact] = original` maps the diff's dense instance numbering
        // back to the engine's 0..N ids once ejections have thinned the set.
        let live = self.active_instances();
        if live.is_empty() {
            return Err(RddrError::Protocol(
                "no active instances in exchange".into(),
            ));
        }
        if live.iter().all(|&i| self.pending_frames[i].is_empty()) {
            return Err(RddrError::Protocol(
                "no frames buffered for any instance".into(),
            ));
        }
        let eval_start = Instant::now();
        if let Some(span) = &self.span {
            span.event("diff");
        }
        let frames: Vec<Vec<Frame>> = live
            .iter()
            .map(|&i| {
                let pending = &mut self.pending_frames[i];
                let take = if unit {
                    self.protocol
                        .exchange_take(pending, self.direction)
                        .unwrap_or(pending.len())
                        .min(pending.len())
                } else {
                    pending.len()
                };
                // drain (not mem::take) keeps the Vec's capacity for the
                // next exchange and, in unit mode, leaves pipelined frames
                // beyond this unit buffered.
                pending.drain(..take).collect()
            })
            .collect();

        // Unanimous fast path: when every live instance produced
        // byte-identical critical frames, neither de-noising nor diffing can
        // change the verdict (identical payloads yield an empty filter-pair
        // mask, no ephemeral capture, and no differing segments), so the
        // canonicalization allocations are skipped outright. Disabled when
        // known-variance rules are configured so `variance_excluded`
        // accounting stays exact.
        if self.config.fast_path() && self.config.variance().is_empty() {
            if frames_unanimous(&frames) {
                self.counters.fastpath_hits.inc();
                self.counters.exchanges.inc();
                let decision = PolicyDecision::Forward { instance: live[0] };
                if let Some(span) = &self.span {
                    span.event(format!("respond:forward:{}", live[0]));
                }
                let forward = Some(concat_frames(&frames[0]));
                self.counters
                    .eval_latency_us
                    .record_duration(eval_start.elapsed());
                return Ok(ExchangeOutcome {
                    report: DivergenceReport::default(),
                    decision,
                    forward,
                    quarantined: Vec::new(),
                });
            }
            self.counters.fastpath_misses.inc();
        }

        // Tokenize critical frames into one aligned segment list per instance.
        let mut segments: Vec<Vec<Segment>> = Vec::with_capacity(frames.len());
        for instance_frames in &frames {
            let mut segs = Vec::new();
            for frame in instance_frames.iter().filter(|f| f.critical) {
                segs.extend(self.protocol.tokenize(frame));
            }
            segments.push(segs);
        }

        // Ephemeral-state capture (§IV-B3), HTTP-style protocols only.
        let mut token_masks: Vec<SegmentMask> = Vec::new();
        let mut tokens_captured = 0;
        if self.protocol.supports_ephemeral() {
            let min_len = segments.iter().map(Vec::len).min().unwrap_or(0);
            for pos in 0..min_len {
                let payloads: Vec<&[u8]> =
                    segments.iter().map(|s| s[pos].payload.as_slice()).collect();
                if self.state.ephemeral.scan_position(&payloads).is_some() {
                    let mut prefix = usize::MAX;
                    let mut suffix = usize::MAX;
                    for p in &payloads[1..] {
                        prefix = prefix.min(common_prefix(payloads[0], p));
                        suffix = suffix.min(common_suffix(payloads[0], p));
                    }
                    token_masks.push(SegmentMask {
                        index: pos,
                        prefix,
                        suffix,
                        whole: false,
                    });
                    tokens_captured += 1;
                }
            }
            let total = self.state.ephemeral.captured_total();
            self.counters
                .tokens_captured
                .add(total - self.tokens_captured_reported);
            self.tokens_captured_reported = total;
        }

        // De-noise (§IV-B2): mask byte ranges on which the filter pair
        // differs. If either member of the pair has been ejected, filtering
        // is disabled for the exchange (the pair's whole point is that both
        // run identical versions).
        let mut mask = match self.config.filter_pair() {
            Some((a, b)) => {
                let ca = live.iter().position(|&i| i == a);
                let cb = live.iter().position(|&i| i == b);
                match (ca, cb) {
                    (Some(ca), Some(cb)) if ca < segments.len() && cb < segments.len() => {
                        NoiseMask::from_filter_pair(&segments[ca], &segments[cb])
                    }
                    _ => NoiseMask::none(),
                }
            }
            None => NoiseMask::none(),
        };
        for m in token_masks {
            if mask.mask_for(m.index).is_none() {
                mask.add(m);
            }
        }

        // Diff.
        let mut outcome = diff_segments(&segments, &mask, self.config.variance());
        outcome.report.tokens_captured = tokens_captured;
        self.counters.exchanges.inc();
        self.counters
            .noise_masked
            .add(outcome.report.noise_masked as u64);
        self.counters
            .variance_excluded
            .add(outcome.report.variance_excluded as u64);

        // Respond. The decision comes back in compact (diff) numbering; the
        // forward bytes must be looked up before remapping to original ids.
        let compact_decision = self.config.policy().decide(&outcome);
        if outcome.report.diverged() {
            self.counters.divergences.inc();
            if let Some(throttle) = &mut self.state.throttle {
                throttle.record(self.last_request.as_deref().unwrap_or(&[]));
            }
        }
        let forward = match &compact_decision {
            PolicyDecision::Forward { instance } => Some(concat_frames(&frames[*instance])),
            PolicyDecision::Sever { .. } => None,
        };
        // Quorum quarantine: on a majority forward despite divergence, the
        // outvoted instances are handed back for quarantine instead of
        // severing the session.
        let mut quarantined = Vec::new();
        if outcome.report.diverged() {
            if let PolicyDecision::Forward { .. } = &compact_decision {
                if let Some(winner) = outcome.agreement_groups().first() {
                    quarantined = (0..frames.len())
                        .filter(|c| !winner.contains(c))
                        .map(|c| live[c])
                        .collect();
                }
            }
        }
        // Remap every instance index in the outcome to original numbering.
        let to_original = |c: usize| live.get(c).copied().unwrap_or(c);
        for d in outcome.report.details.iter_mut() {
            d.instance = to_original(d.instance);
        }
        for s in outcome.report.structural.iter_mut() {
            *s = to_original(*s);
        }
        let decision = match compact_decision {
            PolicyDecision::Forward { instance } => PolicyDecision::Forward {
                instance: to_original(instance),
            },
            PolicyDecision::Sever { implicated } => PolicyDecision::Sever {
                implicated: implicated.into_iter().map(to_original).collect(),
            },
        };
        if let Some(span) = &self.span {
            span.event(match &decision {
                PolicyDecision::Forward { instance } => format!("respond:forward:{instance}"),
                PolicyDecision::Sever { .. } => "respond:sever".to_string(),
            });
        }
        if outcome.report.diverged() {
            if let Some(audit) = &self.audit {
                audit.record(self.divergence_record(&outcome.report));
            }
        }
        self.counters
            .eval_latency_us
            .record_duration(eval_start.elapsed());
        Ok(ExchangeOutcome {
            report: outcome.report,
            decision,
            forward,
            quarantined,
        })
    }

    /// Builds the audit-log record for a diverged exchange.
    fn divergence_record(&self, report: &DivergenceReport) -> DivergenceRecord {
        let implicated = report.implicated_instances();
        let detail = report
            .details
            .first()
            .map(|d| {
                format!(
                    "[{}#{}] instance {}: {:?} != reference {:?}",
                    d.label, d.segment_index, d.instance, d.instance_excerpt, d.reference_excerpt
                )
            })
            .unwrap_or_else(|| format!("structural mismatch: instances {:?}", report.structural));
        DivergenceRecord {
            exchange_id: self.span.as_ref().map_or(0, |s| s.id()),
            service: self.service.clone(),
            offending_instance: (implicated.len() == 1).then(|| implicated[0]),
            signature: crate::report::excerpt(self.last_request.as_deref().unwrap_or(&[])),
            diff_positions: report.details.iter().map(|d| d.segment_index).collect(),
            detail,
            structural: !report.structural.is_empty(),
            timeline: self.span.as_ref().map(|s| s.timeline()).unwrap_or_default(),
        }
    }

    /// Convenience: evaluates one complete response per instance in a single
    /// call (used by tests and non-streaming callers).
    ///
    /// # Errors
    ///
    /// Returns [`RddrError::InstanceCountMismatch`] if `responses.len()`
    /// differs from N, or a protocol error on malformed traffic.
    pub fn evaluate_responses(&mut self, responses: &[Vec<u8>]) -> Result<Verdict> {
        let n = self.config.instances();
        if responses.len() != n {
            return Err(RddrError::InstanceCountMismatch {
                expected: n,
                got: responses.len(),
            });
        }
        for (i, bytes) in responses.iter().enumerate() {
            self.push_response(i, bytes)?;
        }
        let outcome = self.finish_exchange()?;
        Ok(match outcome.forward {
            Some(bytes) if !outcome.report.diverged() => Verdict::Unanimous(bytes),
            Some(bytes) => {
                // Majority vote forwarded despite divergence; still report it.
                let _ = bytes;
                Verdict::Divergent(outcome.report)
            }
            None => Verdict::Divergent(outcome.report),
        })
    }
}

fn concat_frames(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::with_capacity(frames.iter().map(Frame::len).sum());
    for f in frames {
        out.extend_from_slice(&f.bytes);
    }
    out
}

/// FNV-1a over a frame's label and payload — the cheap reject before the
/// exact comparison in [`frames_unanimous`].
fn frame_hash(frame: &Frame) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in frame.label.as_bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash = (hash ^ 0xff).wrapping_mul(FNV_PRIME);
    for &b in &frame.bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Whether every instance's *critical* frames are byte-identical to the
/// first instance's (same count, labels, and payloads). Reference hashes are
/// computed once and reused across instances; a hash match is confirmed with
/// an exact comparison, so a collision can never fake unanimity.
fn frames_unanimous(frames: &[Vec<Frame>]) -> bool {
    let Some((first, rest)) = frames.split_first() else {
        return false;
    };
    if rest.is_empty() {
        return true;
    }
    let reference: Vec<&Frame> = first.iter().filter(|f| f.critical).collect();
    let mut ref_hashes: Vec<u64> = Vec::with_capacity(reference.len());
    for other in rest {
        let mut matched = 0usize;
        for frame in other.iter().filter(|f| f.critical) {
            let Some(reference_frame) = reference.get(matched) else {
                return false; // surplus critical frame
            };
            if ref_hashes.len() <= matched {
                ref_hashes.push(frame_hash(reference_frame));
            }
            let hash_matches = ref_hashes.get(matched) == Some(&frame_hash(frame));
            if !hash_matches
                || reference_frame.label != frame.label
                || reference_frame.bytes != frame.bytes
            {
                return false;
            }
            matched += 1;
        }
        if matched != reference.len() {
            return false; // missing critical frame
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LineProtocol;
    use crate::{EngineConfig, ResponsePolicy, VarianceRule, VarianceRules};

    fn engine(n: usize) -> NVersionEngine {
        NVersionEngine::new(
            EngineConfig::builder(n).build().unwrap(),
            LineProtocol::new(),
        )
    }

    #[test]
    fn unanimous_exchange_forwards_first_instance() {
        let mut e = engine(3);
        let v = e
            .evaluate_responses(&[b"ok\n".to_vec(), b"ok\n".to_vec(), b"ok\n".to_vec()])
            .unwrap();
        match v {
            Verdict::Unanimous(bytes) => assert_eq!(bytes, b"ok\n"),
            Verdict::Divergent(r) => panic!("unexpected divergence: {r}"),
        }
        assert_eq!(e.metrics().exchanges, 1);
        assert_eq!(e.metrics().divergences, 0);
    }

    #[test]
    fn leaking_instance_diverges() {
        let mut e = engine(2);
        let v = e
            .evaluate_responses(&[b"row\n".to_vec(), b"row\nSECRET\n".to_vec()])
            .unwrap();
        assert!(matches!(v, Verdict::Divergent(_)));
        assert_eq!(e.metrics().divergences, 1);
    }

    #[test]
    fn filter_pair_masks_nondeterminism() {
        let config = EngineConfig::builder(3).filter_pair(0, 1).build().unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        let v = e
            .evaluate_responses(&[
                b"session=abc123 welcome\n".to_vec(),
                b"session=xyz789 welcome\n".to_vec(),
                b"session=qqq555 welcome\n".to_vec(),
            ])
            .unwrap();
        assert!(matches!(v, Verdict::Unanimous(_)), "noise must be filtered");
    }

    #[test]
    fn divergence_beyond_noise_is_caught() {
        let config = EngineConfig::builder(3).filter_pair(0, 1).build().unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        let v = e
            .evaluate_responses(&[
                b"session=abc123 welcome\n".to_vec(),
                b"session=xyz789 welcome\n".to_vec(),
                b"session=qqq555 LEAKED-PTR\n".to_vec(),
            ])
            .unwrap();
        assert!(matches!(v, Verdict::Divergent(_)));
    }

    #[test]
    fn variance_rules_suppress_known_differences() {
        let mut rules = VarianceRules::new();
        rules.push(VarianceRule::any_label("version *").unwrap());
        let config = EngineConfig::builder(2).variance(rules).build().unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        let v = e
            .evaluate_responses(&[b"version 10.7\n".to_vec(), b"version 10.9\n".to_vec()])
            .unwrap();
        assert!(matches!(v, Verdict::Unanimous(_)));
    }

    #[test]
    fn throttle_refuses_repeated_diverging_request() {
        let config = EngineConfig::builder(2).throttle(0).build().unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        let req = b"GET /exploit\n";
        let copies = e.replicate_request(req).unwrap();
        assert_eq!(copies.len(), 2);
        e.evaluate_responses(&[b"a\n".to_vec(), b"b\n".to_vec()])
            .unwrap();
        assert!(matches!(
            e.replicate_request(req),
            Err(RddrError::Throttled)
        ));
        assert!(e.replicate_request(b"GET /fine\n").is_ok());
        assert_eq!(e.metrics().throttled, 1);
    }

    #[test]
    fn replication_count_matches_n() {
        let mut e = engine(5);
        assert_eq!(e.replicate_request(b"hi\n").unwrap().len(), 5);
    }

    #[test]
    fn replication_shares_one_allocation() {
        let mut e = engine(3);
        let copies = e.replicate_request(b"hello\n").unwrap();
        assert!(copies.iter().all(RequestCopy::is_shared));
        assert!(copies.iter().all(|c| &c[..] == b"hello\n"));
        let ptrs: Vec<*const u8> = copies.iter().map(|c| c.as_bytes().as_ptr()).collect();
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "all shared copies must alias the same buffer"
        );
    }

    #[test]
    fn last_request_is_not_captured_without_consumers() {
        // No throttle and no audit: nothing reads the request back, so the
        // engine must not retain a copy.
        let mut e = engine(2);
        e.replicate_request(b"GET /big\n").unwrap();
        assert!(e.last_request.is_none());

        let throttled = EngineConfig::builder(2).throttle(1).build().unwrap();
        let mut e = NVersionEngine::new(throttled, LineProtocol::new());
        e.replicate_request(b"GET /big\n").unwrap();
        assert_eq!(e.last_request.as_deref(), Some(b"GET /big\n".as_slice()));
    }

    #[test]
    fn fast_path_counts_hits_and_misses() {
        let mut e = engine(2);
        e.evaluate_responses(&[b"same\n".to_vec(), b"same\n".to_vec()])
            .unwrap();
        e.evaluate_responses(&[b"one\n".to_vec(), b"two\n".to_vec()])
            .unwrap();
        let m = e.metrics();
        assert_eq!(m.fastpath_hits, 1);
        assert_eq!(m.fastpath_misses, 1);
        assert_eq!(m.exchanges, 2);
        assert_eq!(m.divergences, 1);
    }

    #[test]
    fn fast_path_disabled_runs_full_pipeline() {
        let config = EngineConfig::builder(2).fast_path(false).build().unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        let v = e
            .evaluate_responses(&[b"same\n".to_vec(), b"same\n".to_vec()])
            .unwrap();
        assert!(matches!(v, Verdict::Unanimous(_)));
        let m = e.metrics();
        assert_eq!(m.fastpath_hits, 0);
        assert_eq!(m.fastpath_misses, 0);
    }

    #[test]
    fn fast_path_skipped_when_variance_rules_configured() {
        let mut rules = VarianceRules::new();
        rules.push(VarianceRule::any_label("version *").unwrap());
        let config = EngineConfig::builder(2).variance(rules).build().unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        e.evaluate_responses(&[b"version 1\n".to_vec(), b"version 1\n".to_vec()])
            .unwrap();
        let m = e.metrics();
        assert_eq!(m.fastpath_hits, 0, "variance rules force the full path");
        assert!(m.variance_excluded > 0);
    }

    #[test]
    fn pipelined_lines_are_consumed_one_exchange_at_a_time() {
        let mut e = engine(2);
        e.push_response(0, b"a\nb\n").unwrap();
        e.push_response(1, b"a\nb\n").unwrap();
        let first = e.finish_exchange_unit().unwrap();
        assert_eq!(first.forward.unwrap(), b"a\n");
        assert!(e.exchange_ready(), "second pipelined line still buffered");
        let second = e.finish_exchange_unit().unwrap();
        assert_eq!(second.forward.unwrap(), b"b\n");
        assert_eq!(e.metrics().exchanges, 2);
    }

    #[test]
    fn take_all_finish_still_catches_surplus_lines() {
        // The default finish must keep diffing a leaked extra line against
        // the exchange that provoked it, not defer it to the next one.
        let mut e = engine(2);
        e.push_response(0, b"row\n").unwrap();
        e.push_response(1, b"row\nSECRET\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(outcome.report.diverged());
    }

    #[test]
    fn frames_unanimous_checks_bytes_labels_and_count() {
        let line = |b: &[u8]| Frame::new("line", b.to_vec());
        assert!(frames_unanimous(&[
            vec![line(b"x\n")],
            vec![line(b"x\n")],
            vec![line(b"x\n")]
        ]));
        assert!(!frames_unanimous(&[vec![line(b"x\n")], vec![line(b"y\n")]]));
        assert!(!frames_unanimous(&[
            vec![line(b"x\n")],
            vec![line(b"x\n"), line(b"extra\n")]
        ]));
        assert!(!frames_unanimous(&[
            vec![line(b"x\n"), line(b"extra\n")],
            vec![line(b"x\n")]
        ]));
        assert!(!frames_unanimous(&[
            vec![line(b"x\n")],
            vec![Frame::new("other", b"x\n".to_vec())]
        ]));
        // Single instance (degraded mode lone survivor) is trivially unanimous.
        assert!(frames_unanimous(&[vec![line(b"x\n")]]));
    }

    #[test]
    fn streaming_exchange_via_push_response() {
        let mut e = engine(2);
        e.push_response(0, b"par").unwrap();
        assert!(!e.exchange_ready());
        e.push_response(0, b"tial\n").unwrap();
        assert!(!e.exchange_ready(), "instance 1 still pending");
        e.push_response(1, b"partial\n").unwrap();
        assert!(e.exchange_ready());
        let outcome = e.finish_exchange().unwrap();
        assert!(!outcome.severed());
        assert_eq!(outcome.forward.unwrap(), b"partial\n");
    }

    #[test]
    fn mark_failed_instance_causes_divergence() {
        let mut e = engine(2);
        e.push_response(0, b"data\n").unwrap();
        e.mark_failed(1);
        let outcome = e.finish_exchange().unwrap();
        assert!(outcome.severed());
    }

    #[test]
    fn majority_vote_forwards_winning_group() {
        let config = EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .build()
            .unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        e.push_response(0, b"good\n").unwrap();
        e.push_response(1, b"evil\n").unwrap();
        e.push_response(2, b"good\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(!outcome.severed());
        assert_eq!(outcome.forward.unwrap(), b"good\n");
        assert!(outcome.report.diverged(), "divergence still reported");
    }

    #[test]
    fn majority_forward_quarantines_the_outlier() {
        let config = EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .build()
            .unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        e.push_response(0, b"good\n").unwrap();
        e.push_response(1, b"evil\n").unwrap();
        e.push_response(2, b"good\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert_eq!(outcome.quarantined, vec![1]);
        assert!(!outcome.severed());
    }

    #[test]
    fn unanimous_exchange_quarantines_nobody() {
        let mut e = engine(3);
        e.push_response(0, b"ok\n").unwrap();
        e.push_response(1, b"ok\n").unwrap();
        e.push_response(2, b"ok\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(outcome.quarantined.is_empty());
    }

    #[test]
    fn ejected_instance_is_not_waited_for() {
        let mut e = engine(3);
        e.eject(1);
        assert_eq!(e.active_count(), 2);
        assert_eq!(e.active_instances(), vec![0, 2]);
        e.push_response(0, b"ok\n").unwrap();
        assert!(!e.exchange_ready());
        e.push_response(2, b"ok\n").unwrap();
        assert!(e.exchange_ready(), "ejected instance 1 must not block");
        let outcome = e.finish_exchange().unwrap();
        assert!(!outcome.severed());
        assert_eq!(outcome.forward.unwrap(), b"ok\n");
    }

    #[test]
    fn pushes_to_ejected_instance_are_dropped() {
        let mut e = engine(2);
        e.eject(1);
        e.push_response(1, b"stale\n").unwrap();
        e.push_response(0, b"ok\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(!outcome.report.diverged(), "stale bytes must not diff");
        assert_eq!(outcome.forward.unwrap(), b"ok\n");
    }

    #[test]
    fn outcome_indices_stay_original_after_ejection() {
        // Eject instance 0; a divergence between 1 and 2 must implicate
        // instance 2 in original numbering, not compact index 1.
        let mut e = engine(3);
        e.eject(0);
        e.push_response(1, b"good\n").unwrap();
        e.push_response(2, b"evil\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(outcome.severed());
        match &outcome.decision {
            PolicyDecision::Sever { implicated } => assert_eq!(implicated, &vec![2]),
            other => panic!("expected sever, got {other:?}"),
        }
        assert_eq!(outcome.report.implicated_instances(), vec![2]);
    }

    #[test]
    fn forwarded_instance_index_is_original_after_ejection() {
        let config = EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .build()
            .unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        e.eject(0);
        e.push_response(1, b"a\n").unwrap();
        e.push_response(2, b"a\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert_eq!(
            outcome.decision,
            PolicyDecision::Forward { instance: 1 },
            "compact index 0 must map back to original instance 1"
        );
    }

    #[test]
    fn readmit_restores_full_diff_set() {
        let mut e = engine(2);
        e.eject(1);
        e.push_response(0, b"solo\n").unwrap();
        e.finish_exchange().unwrap();
        e.readmit(1);
        assert_eq!(e.active_count(), 2);
        e.push_response(0, b"x\n").unwrap();
        e.push_response(1, b"y\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(outcome.report.diverged(), "readmitted instance diffs again");
    }

    #[test]
    fn single_survivor_forwards_without_divergence() {
        let mut e = engine(3);
        e.eject(1);
        e.eject(2);
        e.push_response(0, b"alone\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(!outcome.severed());
        assert_eq!(outcome.forward.unwrap(), b"alone\n");
        assert!(outcome.quarantined.is_empty());
    }

    #[test]
    fn all_ejected_errors() {
        let mut e = engine(2);
        e.eject(0);
        e.eject(1);
        assert!(e.finish_exchange().is_err());
    }

    #[test]
    fn filter_pair_disabled_when_member_ejected() {
        let config = EngineConfig::builder(3).filter_pair(0, 1).build().unwrap();
        let mut e = NVersionEngine::new(config, LineProtocol::new());
        e.eject(0);
        // Without the pair, the session noise is no longer masked, so the
        // differing tokens now register as divergence.
        e.push_response(1, b"session=abc ok\n").unwrap();
        e.push_response(2, b"session=xyz ok\n").unwrap();
        let outcome = e.finish_exchange().unwrap();
        assert!(outcome.report.diverged());
    }

    #[test]
    fn wrong_response_count_is_rejected() {
        let mut e = engine(3);
        let err = e.evaluate_responses(&[b"a\n".to_vec()]).unwrap_err();
        assert!(matches!(
            err,
            RddrError::InstanceCountMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn finish_without_frames_errors() {
        let mut e = engine(2);
        assert!(e.finish_exchange().is_err());
    }

    #[test]
    fn shared_telemetry_feeds_registry_and_audit() {
        let registry = Arc::new(rddr_telemetry::Registry::new());
        let audit = Arc::new(AuditLog::new(8));
        let mut e = engine(2).with_telemetry(registry.clone(), "rddr_test", Some(audit.clone()));
        let span = Arc::new(Span::start("exchange"));
        e.set_span(span.clone());
        e.replicate_request(b"GET /secret\n").unwrap();
        e.evaluate_responses(&[b"row\n".to_vec(), b"row\nLEAK\n".to_vec()])
            .unwrap();

        let text = registry.render_prometheus();
        assert!(text.contains("rddr_test_exchanges_total 1"), "{text}");
        assert!(text.contains("rddr_test_divergences_total 1"), "{text}");
        assert!(
            text.contains("rddr_test_exchange_eval_latency_us_count 1"),
            "{text}"
        );

        let records = audit.recent();
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        assert_eq!(rec.exchange_id, span.id());
        assert_eq!(rec.service, "rddr_test");
        assert_eq!(rec.offending_instance, Some(1));
        assert!(rec.signature.contains("GET /secret"));
        assert!(
            rec.timeline.iter().any(|ev| ev.label == "replicate"),
            "span timeline attached: {:?}",
            rec.timeline
        );
    }

    #[test]
    fn unanimous_exchanges_leave_audit_empty() {
        let registry = Arc::new(rddr_telemetry::Registry::new());
        let audit = Arc::new(AuditLog::new(8));
        let mut e = engine(2).with_telemetry(registry, "rddr_quiet", Some(audit.clone()));
        e.evaluate_responses(&[b"ok\n".to_vec(), b"ok\n".to_vec()])
            .unwrap();
        assert!(audit.is_empty());
    }

    #[test]
    fn metrics_accumulate_across_exchanges() {
        let mut e = engine(2);
        for _ in 0..3 {
            e.evaluate_responses(&[b"x\n".to_vec(), b"x\n".to_vec()])
                .unwrap();
        }
        e.evaluate_responses(&[b"x\n".to_vec(), b"y\n".to_vec()])
            .unwrap();
        let m = e.metrics();
        assert_eq!(m.exchanges, 4);
        assert_eq!(m.divergences, 1);
        assert!((m.divergence_rate() - 0.25).abs() < 1e-12);
    }
}
