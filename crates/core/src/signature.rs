//! Divergence-signature throttling.
//!
//! The paper's §IV-D notes that "an attacker who repetitively triggers
//! divergence by entering the diverging input repeatedly" can mount a DoS,
//! and suggests automated signature generation to defeat it. This module
//! implements that extension: the engine records a signature (a stable hash)
//! of each request that caused a divergence; repeats beyond a budget are
//! refused before being replicated at all.

use std::collections::BTreeMap;

/// Tracks requests that previously caused divergence and refuses repeats.
///
/// # Examples
///
/// ```
/// use rddr_core::SignatureThrottle;
///
/// let mut throttle = SignatureThrottle::new(0);
/// throttle.record(b"' OR 1=1 --");
/// assert!(throttle.should_refuse(b"' OR 1=1 --"));
/// assert!(!throttle.should_refuse(b"SELECT name FROM users WHERE id = 7"));
/// ```
#[derive(Debug, Clone)]
pub struct SignatureThrottle {
    // BTreeMap so signature reports iterate in one byte-stable order across
    // runs and instances (HashMap order would itself be a divergence source).
    counts: BTreeMap<u64, u32>,
    budget: u32,
}

impl SignatureThrottle {
    /// Creates a throttle that allows each diverging request `budget` more
    /// appearances before refusing it. A budget of 0 refuses immediately on
    /// the second appearance.
    pub fn new(budget: u32) -> Self {
        Self {
            counts: BTreeMap::new(),
            budget,
        }
    }

    /// Stable FNV-1a hash of request bytes — the divergence signature.
    pub fn signature(request: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in request {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// Records that `request` caused a divergence.
    pub fn record(&mut self, request: &[u8]) {
        *self.counts.entry(Self::signature(request)).or_insert(0) += 1;
    }

    /// Whether `request` should be refused without replication.
    pub fn should_refuse(&self, request: &[u8]) -> bool {
        self.counts
            .get(&Self::signature(request))
            .is_some_and(|&n| n > self.budget)
    }

    /// Number of distinct divergence signatures recorded.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no signatures have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Clears all recorded signatures.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

impl Default for SignatureThrottle {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_request_is_not_refused() {
        let t = SignatureThrottle::new(0);
        assert!(!t.should_refuse(b"GET / HTTP/1.1"));
    }

    #[test]
    fn recorded_request_is_refused_after_budget() {
        let mut t = SignatureThrottle::new(1);
        let req = b"' OR 1=1 --";
        t.record(req);
        assert!(!t.should_refuse(req), "first repeat allowed under budget 1");
        t.record(req);
        assert!(t.should_refuse(req), "second repeat refused");
    }

    #[test]
    fn zero_budget_refuses_immediately() {
        let mut t = SignatureThrottle::new(0);
        t.record(b"evil");
        assert!(t.should_refuse(b"evil"));
        assert!(!t.should_refuse(b"evil2"));
    }

    #[test]
    fn clear_resets() {
        let mut t = SignatureThrottle::new(0);
        t.record(b"evil");
        t.clear();
        assert!(!t.should_refuse(b"evil"));
        assert!(t.is_empty());
    }

    #[test]
    fn signature_is_stable_and_discriminating() {
        assert_eq!(
            SignatureThrottle::signature(b"abc"),
            SignatureThrottle::signature(b"abc")
        );
        assert_ne!(
            SignatureThrottle::signature(b"abc"),
            SignatureThrottle::signature(b"abd")
        );
    }
}
