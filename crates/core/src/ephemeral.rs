//! Ephemeral-state handling (§IV-B3): CSRF tokens and similar server-minted
//! secrets that clients must echo back.
//!
//! Each instance mints its *own* token, so the N responses differ — but the
//! difference is not noise to be ignored: when the client later submits the
//! token, each instance must receive the token *it* minted or it will reject
//! the request. RDDR therefore (1) detects candidate tokens in responses —
//! "lines that differ across all instances" whose differing character range
//! is "alphanumeric and at least ten characters long" (criteria the authors
//! determined empirically), (2) forwards the first instance's token to the
//! client, (3) substitutes the matching per-instance token into subsequent
//! requests, and (4) deletes the mapping after use (tokens are ephemeral).

use std::collections::BTreeMap;

use crate::denoise::{common_prefix, common_suffix};
use crate::Segment;

/// Minimum length of a differing alphanumeric run for it to be treated as an
/// ephemeral token (the paper's empirically chosen threshold).
pub const MIN_TOKEN_LEN: usize = 10;

/// One captured ephemeral token: the canonical value sent to the client and
/// the per-instance values to substitute on the way back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EphemeralToken {
    /// The value the client saw (instance 0's token).
    pub canonical: Vec<u8>,
    /// One value per instance, indexed by instance id.
    pub per_instance: Vec<Vec<u8>>,
}

impl EphemeralToken {
    /// The token each instance expects to receive.
    pub fn token_for(&self, instance: usize) -> &[u8] {
        &self.per_instance[instance]
    }
}

/// The per-session store of live ephemeral tokens.
///
/// Keys are the canonical token bytes (what the client echoes back).
#[derive(Debug, Clone, Default)]
pub struct EphemeralStore {
    // BTreeMap: `substitute` iterates the live tokens, so rewritten request
    // bytes (and token reports) must be order-stable across runs/instances.
    tokens: BTreeMap<Vec<u8>, EphemeralToken>,
    pending_consumed: Vec<Vec<u8>>,
    captured_total: u64,
    substituted_total: u64,
}

impl EphemeralStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (captured, not yet consumed) tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether no tokens are live.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Total tokens ever captured in this session.
    pub fn captured_total(&self) -> u64 {
        self.captured_total
    }

    /// Total substitutions ever performed in this session.
    pub fn substituted_total(&self) -> u64 {
        self.substituted_total
    }

    /// Scans aligned segments (one per instance, same position in the frame)
    /// for an ephemeral token and captures it if found.
    ///
    /// Returns the captured token when the paper's criteria hold: all
    /// instances' payloads mutually differ in a range that is alphanumeric
    /// and at least [`MIN_TOKEN_LEN`] bytes long in every instance.
    pub fn scan_position(&mut self, payloads: &[&[u8]]) -> Option<EphemeralToken> {
        if payloads.len() < 2 {
            return None;
        }
        // "Lines that differ across all instances": every pair must differ.
        for i in 0..payloads.len() {
            for j in (i + 1)..payloads.len() {
                if payloads[i] == payloads[j] {
                    return None;
                }
            }
        }
        // The differing character range: common prefix/suffix over all.
        let mut prefix = common_prefix(payloads[0], payloads[1]);
        let mut suffix = common_suffix(payloads[0], payloads[1]);
        for p in &payloads[2..] {
            prefix = prefix.min(common_prefix(payloads[0], p));
            suffix = suffix.min(common_suffix(payloads[0], p));
        }
        let mut candidates = Vec::with_capacity(payloads.len());
        for p in payloads {
            if prefix + suffix > p.len() {
                return None;
            }
            let middle = &p[prefix..p.len() - suffix];
            if middle.len() < MIN_TOKEN_LEN || !middle.iter().all(|b| b.is_ascii_alphanumeric()) {
                return None;
            }
            candidates.push(middle.to_vec());
        }
        let token = EphemeralToken {
            canonical: candidates[0].clone(),
            per_instance: candidates,
        };
        self.captured_total += 1;
        self.tokens.insert(token.canonical.clone(), token.clone());
        Some(token)
    }

    /// Scans a whole frame's worth of aligned segment lists, capturing every
    /// token position. Returns how many tokens were captured.
    pub fn scan_segments(&mut self, instance_segments: &[Vec<Segment>]) -> usize {
        if instance_segments.is_empty() {
            return 0;
        }
        let min_len = instance_segments.iter().map(Vec::len).min().unwrap_or(0);
        let mut captured = 0;
        for pos in 0..min_len {
            let payloads: Vec<&[u8]> = instance_segments
                .iter()
                .map(|segs| segs[pos].payload.as_slice())
                .collect();
            if self.scan_position(&payloads).is_some() {
                captured += 1;
            }
        }
        captured
    }

    /// Rewrites a client request for one instance, substituting each live
    /// canonical token with that instance's own token. Consumed tokens are
    /// recorded; call [`EphemeralStore::purge_consumed`] once the request has
    /// been rewritten for *all* instances.
    pub fn substitute(&mut self, request: &[u8], instance: usize) -> Vec<u8> {
        self.substitute_rewritten(request, instance)
            .unwrap_or_else(|| request.to_vec())
    }

    /// Copy-on-write variant of [`EphemeralStore::substitute`]: returns
    /// `None` when no live token occurs in `request` (the caller keeps using
    /// its original bytes), and the rewritten copy only when a substitution
    /// actually fired.
    pub fn substitute_rewritten(&mut self, request: &[u8], instance: usize) -> Option<Vec<u8>> {
        let mut out: Option<Vec<u8>> = None;
        let mut consumed = Vec::new();
        for (canonical, token) in &self.tokens {
            if instance >= token.per_instance.len() {
                continue;
            }
            let replacement = token.token_for(instance);
            let rewritten = replace_all(out.as_deref().unwrap_or(request), canonical, replacement);
            if rewritten.1 > 0 {
                out = Some(rewritten.0);
                self.substituted_total += rewritten.1;
                consumed.push(canonical.clone());
            }
        }
        self.pending_consumed.extend(consumed);
        out
    }

    /// Deletes tokens consumed by the preceding round of
    /// [`EphemeralStore::substitute`] calls ("because they are ephemeral,
    /// tokens are deleted after forwarding").
    pub fn purge_consumed(&mut self) {
        let pending = std::mem::take(&mut self.pending_consumed);
        for key in pending {
            self.tokens.remove(&key);
        }
    }

    /// Looks up a live token by its canonical bytes.
    pub fn get(&self, canonical: &[u8]) -> Option<&EphemeralToken> {
        self.tokens.get(canonical)
    }
}

/// Replaces all occurrences of `needle` in `haystack`, returning the result
/// and the number of replacements.
fn replace_all(haystack: &[u8], needle: &[u8], replacement: &[u8]) -> (Vec<u8>, u64) {
    if needle.is_empty() {
        return (haystack.to_vec(), 0);
    }
    let mut out = Vec::with_capacity(haystack.len());
    let mut i = 0;
    let mut count = 0;
    while i < haystack.len() {
        if haystack[i..].starts_with(needle) {
            out.extend_from_slice(replacement);
            i += needle.len();
            count += 1;
        } else {
            out.push(haystack[i]);
            i += 1;
        }
    }
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_csrf_like_token() {
        let mut store = EphemeralStore::new();
        let a = b"<input name='csrf' value='AAAAAAAAAA'>".as_slice();
        let b = b"<input name='csrf' value='BBBBBBBBBB'>".as_slice();
        let c = b"<input name='csrf' value='CCCCCCCCCC'>".as_slice();
        let token = store.scan_position(&[a, b, c]).expect("token captured");
        assert_eq!(token.canonical, b"AAAAAAAAAA");
        assert_eq!(token.token_for(2), b"CCCCCCCCCC");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn short_tokens_are_not_captured() {
        let mut store = EphemeralStore::new();
        let a = b"id=AAAA".as_slice();
        let b = b"id=BBBB".as_slice();
        assert!(store.scan_position(&[a, b]).is_none());
    }

    #[test]
    fn non_alphanumeric_ranges_are_not_captured() {
        let mut store = EphemeralStore::new();
        let a = b"x=AAAA-AAAA-AAAA".as_slice();
        let b = b"x=BBBB-BBBB-BBBB".as_slice();
        assert!(store.scan_position(&[a, b]).is_none());
    }

    #[test]
    fn identical_pair_blocks_capture() {
        // "Lines that differ across ALL instances" — if any two agree, no token.
        let mut store = EphemeralStore::new();
        let a = b"tok=AAAAAAAAAA".as_slice();
        let b = b"tok=AAAAAAAAAA".as_slice();
        let c = b"tok=CCCCCCCCCC".as_slice();
        assert!(store.scan_position(&[a, b, c]).is_none());
    }

    #[test]
    fn substitution_rewrites_per_instance_then_purges() {
        let mut store = EphemeralStore::new();
        store.scan_position(&[
            b"v=ALPHAALPHA1".as_slice(),
            b"v=BRAVOBRAVO2".as_slice(),
            b"v=CHARLIECHA3".as_slice(),
        ]);
        let req = b"POST /submit csrf=ALPHAALPHA1 end";
        assert_eq!(
            store.substitute(req, 0),
            b"POST /submit csrf=ALPHAALPHA1 end"
        );
        assert_eq!(
            store.substitute(req, 1),
            b"POST /submit csrf=BRAVOBRAVO2 end"
        );
        assert_eq!(
            store.substitute(req, 2),
            b"POST /submit csrf=CHARLIECHA3 end"
        );
        assert_eq!(store.substituted_total(), 3);
        store.purge_consumed();
        assert!(store.is_empty(), "tokens are deleted after forwarding");
    }

    #[test]
    fn substitution_order_is_byte_stable() {
        // Two live tokens where one canonical is a prefix of the other: the
        // rewrite result depends on iteration order, which must be the
        // sorted order (shortest canonical first) — not HashMap order,
        // which varies per store instance and would itself diverge.
        let mut store = EphemeralStore::new();
        store.scan_position(&[b"t=AAAAAAAAAA;".as_slice(), b"t=BBBBBBBBBB;".as_slice()]);
        store.scan_position(&[b"u=AAAAAAAAAAB;".as_slice(), b"u=CCCCCCCCCCC;".as_slice()]);
        assert_eq!(store.len(), 2);
        let out = store.substitute(b"x AAAAAAAAAAB y", 1);
        assert_eq!(out, b"x BBBBBBBBBBB y");
    }

    #[test]
    fn substitute_rewritten_is_copy_on_write() {
        let mut store = EphemeralStore::new();
        store.scan_position(&[b"v=ALPHAALPHA1".as_slice(), b"v=BRAVOBRAVO2".as_slice()]);
        assert_eq!(
            store.substitute_rewritten(b"GET / no token here", 1),
            None,
            "untouched requests are not copied"
        );
        assert_eq!(
            store
                .substitute_rewritten(b"csrf=ALPHAALPHA1", 1)
                .as_deref(),
            Some(b"csrf=BRAVOBRAVO2".as_slice())
        );
    }

    #[test]
    fn untouched_tokens_survive_purge() {
        let mut store = EphemeralStore::new();
        store.scan_position(&[b"v=ALPHAALPHA1".as_slice(), b"v=BRAVOBRAVO2".as_slice()]);
        let _ = store.substitute(b"GET / no token here", 0);
        store.purge_consumed();
        assert_eq!(store.len(), 1, "unused token remains live");
    }

    #[test]
    fn scan_segments_captures_multiple_positions() {
        let mut store = EphemeralStore::new();
        let mk = |t1: &str, t2: &str| {
            vec![
                Segment::new("line", format!("a={t1}").into_bytes()),
                Segment::new("line", b"static".to_vec()),
                Segment::new("line", format!("b={t2}").into_bytes()),
            ]
        };
        let captured = store.scan_segments(&[
            mk("AAAAAAAAAA", "XXXXXXXXXX"),
            mk("BBBBBBBBBB", "YYYYYYYYYY"),
        ]);
        assert_eq!(captured, 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn variable_length_tokens_capture() {
        let mut store = EphemeralStore::new();
        let a = b"t=AAAAAAAAAAAAAA;".as_slice(); // 14 chars
        let b = b"t=BBBBBBBBBB;".as_slice(); // 10 chars
        let token = store.scan_position(&[a, b]).expect("captured");
        assert_eq!(token.per_instance[0].len(), 14);
        assert_eq!(token.per_instance[1].len(), 10);
    }

    #[test]
    fn replace_all_handles_adjacent_matches() {
        let (out, n) = replace_all(b"abab", b"ab", b"X");
        assert_eq!(out, b"XX");
        assert_eq!(n, 2);
    }
}
