use std::time::Duration;

use crate::{DegradePolicy, RddrError, ResponsePolicy, Result, VarianceRules};

/// Configuration for one [`crate::NVersionEngine`] (one protected
/// microservice).
///
/// Built with [`EngineConfig::builder`]; validated on
/// [`EngineConfigBuilder::build`].
///
/// # Examples
///
/// ```
/// use rddr_core::{EngineConfig, ResponsePolicy};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), rddr_core::RddrError> {
/// let config = EngineConfig::builder(3)
///     .filter_pair(0, 1)
///     .policy(ResponsePolicy::Block)
///     .response_deadline(Duration::from_secs(5))
///     .build()?;
/// assert_eq!(config.instances(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    instances: usize,
    filter_pair: Option<(usize, usize)>,
    policy: ResponsePolicy,
    degrade: DegradePolicy,
    variance: VarianceRules,
    response_deadline: Duration,
    instance_deadline: Option<Duration>,
    throttle_budget: Option<u32>,
    fast_path: bool,
}

impl EngineConfig {
    /// Starts building a configuration for `instances` protected instances.
    pub fn builder(instances: usize) -> EngineConfigBuilder {
        EngineConfigBuilder {
            instances,
            filter_pair: None,
            policy: ResponsePolicy::default(),
            degrade: DegradePolicy::default(),
            variance: VarianceRules::new(),
            response_deadline: Duration::from_secs(10),
            instance_deadline: None,
            throttle_budget: None,
            fast_path: true,
        }
    }

    /// Number of protected instances (N).
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// The filter pair's instance indices, if nondeterminism filtering is on.
    pub fn filter_pair(&self) -> Option<(usize, usize)> {
        self.filter_pair
    }

    /// The response policy.
    pub fn policy(&self) -> ResponsePolicy {
        self.policy
    }

    /// How the proxies react to instance-level faults.
    pub fn degrade(&self) -> DegradePolicy {
        self.degrade
    }

    /// Per-instance straggler deadline, if set: an instance that has not
    /// completed its exchange this long after the *first* instance finished
    /// is treated as faulted (ejected or severed per [`DegradePolicy`]).
    pub fn instance_deadline(&self) -> Option<Duration> {
        self.instance_deadline
    }

    /// Known-variance rules.
    pub fn variance(&self) -> &VarianceRules {
        &self.variance
    }

    /// How long the proxy waits for all instances to answer before treating
    /// the laggards as divergent (the paper's suggested DoS timeout, §IV-D).
    pub fn response_deadline(&self) -> Duration {
        self.response_deadline
    }

    /// Divergence-signature throttle budget, if enabled.
    pub fn throttle_budget(&self) -> Option<u32> {
        self.throttle_budget
    }

    /// Whether the unanimous fast path (byte-equality short-circuit before
    /// canonicalization) is enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    instances: usize,
    filter_pair: Option<(usize, usize)>,
    policy: ResponsePolicy,
    degrade: DegradePolicy,
    variance: VarianceRules,
    response_deadline: Duration,
    instance_deadline: Option<Duration>,
    throttle_budget: Option<u32>,
    fast_path: bool,
}

impl EngineConfigBuilder {
    /// Designates two instances as the identical *filter pair* used for
    /// nondeterminism filtering (§IV-B2).
    pub fn filter_pair(mut self, a: usize, b: usize) -> Self {
        self.filter_pair = Some((a, b));
        self
    }

    /// Sets the response policy (default: [`ResponsePolicy::Block`]).
    pub fn policy(mut self, policy: ResponsePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the known-variance rule set.
    pub fn variance(mut self, rules: VarianceRules) -> Self {
        self.variance = rules;
        self
    }

    /// Sets the degraded-mode policy (default: [`DegradePolicy::Sever`]).
    pub fn degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Sets the all-instances response deadline (default: 10 s).
    pub fn response_deadline(mut self, deadline: Duration) -> Self {
        self.response_deadline = deadline;
        self
    }

    /// Sets the per-instance straggler deadline (default: none).
    pub fn instance_deadline(mut self, deadline: Duration) -> Self {
        self.instance_deadline = Some(deadline);
        self
    }

    /// Enables divergence-signature throttling with the given repeat budget.
    pub fn throttle(mut self, budget: u32) -> Self {
        self.throttle_budget = Some(budget);
        self
    }

    /// Enables or disables the unanimous fast path (default: enabled). The
    /// engine only takes it when no known-variance rules are configured, so
    /// `variance_excluded` accounting stays exact where it matters.
    pub fn fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = enabled;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RddrError::InvalidConfig`] if `instances < 2`, a filter-pair
    /// index is out of range, the pair indices are equal, or the deadline is
    /// zero.
    pub fn build(self) -> Result<EngineConfig> {
        if self.instances < 2 {
            return Err(RddrError::InvalidConfig(format!(
                "n-versioning needs at least 2 instances, got {}",
                self.instances
            )));
        }
        if let Some((a, b)) = self.filter_pair {
            if a == b {
                return Err(RddrError::InvalidConfig(
                    "filter pair must be two distinct instances".into(),
                ));
            }
            if a >= self.instances || b >= self.instances {
                return Err(RddrError::InvalidConfig(format!(
                    "filter pair ({a}, {b}) out of range for {} instances",
                    self.instances
                )));
            }
        }
        if self.response_deadline.is_zero() {
            return Err(RddrError::InvalidConfig(
                "response deadline must be non-zero".into(),
            ));
        }
        if self.instance_deadline.is_some_and(|d| d.is_zero()) {
            return Err(RddrError::InvalidConfig(
                "instance deadline must be non-zero".into(),
            ));
        }
        Ok(EngineConfig {
            instances: self.instances,
            filter_pair: self.filter_pair,
            policy: self.policy,
            degrade: self.degrade,
            variance: self.variance,
            response_deadline: self.response_deadline,
            instance_deadline: self.instance_deadline,
            throttle_budget: self.throttle_budget,
            fast_path: self.fast_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_config_builds() {
        let c = EngineConfig::builder(2).build().unwrap();
        assert_eq!(c.instances(), 2);
        assert_eq!(c.filter_pair(), None);
        assert_eq!(c.policy(), ResponsePolicy::Block);
    }

    #[test]
    fn single_instance_is_rejected() {
        assert!(EngineConfig::builder(1).build().is_err());
    }

    #[test]
    fn filter_pair_out_of_range_is_rejected() {
        assert!(EngineConfig::builder(3).filter_pair(0, 3).build().is_err());
    }

    #[test]
    fn filter_pair_must_be_distinct() {
        assert!(EngineConfig::builder(3).filter_pair(1, 1).build().is_err());
    }

    #[test]
    fn zero_deadline_is_rejected() {
        assert!(EngineConfig::builder(2)
            .response_deadline(Duration::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn zero_instance_deadline_is_rejected() {
        assert!(EngineConfig::builder(2)
            .instance_deadline(Duration::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn degrade_and_instance_deadline_round_trip() {
        use crate::{DegradePolicy, SurvivorPolicy};
        let c = EngineConfig::builder(3)
            .degrade(DegradePolicy::eject_with_pass_through())
            .instance_deadline(Duration::from_millis(200))
            .build()
            .unwrap();
        assert_eq!(
            c.degrade(),
            DegradePolicy::Eject(SurvivorPolicy::PassThrough)
        );
        assert_eq!(c.instance_deadline(), Some(Duration::from_millis(200)));
        let d = EngineConfig::builder(2).build().unwrap();
        assert_eq!(d.degrade(), DegradePolicy::Sever);
        assert_eq!(d.instance_deadline(), None);
    }

    #[test]
    fn fast_path_defaults_on_and_round_trips() {
        assert!(EngineConfig::builder(2).build().unwrap().fast_path());
        assert!(!EngineConfig::builder(2)
            .fast_path(false)
            .build()
            .unwrap()
            .fast_path());
    }

    #[test]
    fn full_builder_round_trip() {
        let c = EngineConfig::builder(4)
            .filter_pair(2, 3)
            .policy(ResponsePolicy::MajorityVote)
            .response_deadline(Duration::from_millis(500))
            .throttle(2)
            .build()
            .unwrap();
        assert_eq!(c.filter_pair(), Some((2, 3)));
        assert_eq!(c.policy(), ResponsePolicy::MajorityVote);
        assert_eq!(c.response_deadline(), Duration::from_millis(500));
        assert_eq!(c.throttle_budget(), Some(2));
    }
}
