use std::fmt;
use std::str::FromStr;

use crate::RddrError;

/// A minimal glob pattern: `*` matches any run of bytes (including empty),
/// `?` matches exactly one byte, everything else matches literally.
///
/// Used by known-variance rules (§IV-B4) to describe application-specific
/// benign divergence, e.g. `server_version*` for differing Postgres version
/// strings. A hand-rolled matcher keeps the dependency set to the sanctioned
/// offline crates (no `regex`).
///
/// # Examples
///
/// ```
/// use rddr_core::GlobPattern;
///
/// let g: GlobPattern = "server_version*".parse().unwrap();
/// assert!(g.matches(b"server_version 10.7"));
/// assert!(!g.matches(b"client_version 10.7"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobPattern {
    source: String,
    parts: Vec<Part>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Part {
    Literal(Vec<u8>),
    AnyRun,
    AnyOne,
}

impl GlobPattern {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`RddrError::InvalidConfig`] for an empty pattern.
    pub fn new(pattern: &str) -> Result<Self, RddrError> {
        if pattern.is_empty() {
            return Err(RddrError::InvalidConfig("empty glob pattern".into()));
        }
        let mut parts = Vec::new();
        let mut literal = Vec::new();
        for &b in pattern.as_bytes() {
            match b {
                b'*' => {
                    if !literal.is_empty() {
                        parts.push(Part::Literal(std::mem::take(&mut literal)));
                    }
                    // Collapse consecutive stars.
                    if parts.last() != Some(&Part::AnyRun) {
                        parts.push(Part::AnyRun);
                    }
                }
                b'?' => {
                    if !literal.is_empty() {
                        parts.push(Part::Literal(std::mem::take(&mut literal)));
                    }
                    parts.push(Part::AnyOne);
                }
                other => literal.push(other),
            }
        }
        if !literal.is_empty() {
            parts.push(Part::Literal(literal));
        }
        Ok(Self {
            source: pattern.to_string(),
            parts,
        })
    }

    /// The pattern text this glob was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Tests whether `input` matches the whole pattern.
    pub fn matches(&self, input: &[u8]) -> bool {
        Self::match_parts(&self.parts, input)
    }

    fn match_parts(parts: &[Part], input: &[u8]) -> bool {
        match parts.first() {
            None => input.is_empty(),
            Some(Part::Literal(lit)) => input
                .strip_prefix(lit.as_slice())
                .is_some_and(|rest| Self::match_parts(&parts[1..], rest)),
            Some(Part::AnyOne) => !input.is_empty() && Self::match_parts(&parts[1..], &input[1..]),
            Some(Part::AnyRun) => {
                (0..=input.len()).any(|skip| Self::match_parts(&parts[1..], &input[skip..]))
            }
        }
    }
}

impl fmt::Display for GlobPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl FromStr for GlobPattern {
    type Err = RddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, input: &str) -> bool {
        GlobPattern::new(pat).unwrap().matches(input.as_bytes())
    }

    #[test]
    fn literal_exact_match() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abcd"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn star_matches_any_run() {
        assert!(m("a*c", "ac"));
        assert!(m("a*c", "abbbc"));
        assert!(!m("a*c", "ab"));
    }

    #[test]
    fn leading_and_trailing_star() {
        assert!(m("*version*", "server_version 10.7"));
        assert!(m("*", ""));
        assert!(m("*", "anything"));
    }

    #[test]
    fn question_matches_exactly_one() {
        assert!(m("a?c", "abc"));
        assert!(!m("a?c", "ac"));
        assert!(!m("a?c", "abbc"));
    }

    #[test]
    fn consecutive_stars_collapse() {
        let g = GlobPattern::new("a**b").unwrap();
        assert_eq!(g.parts.len(), 3);
        assert!(g.matches(b"ab"));
        assert!(g.matches(b"axyzb"));
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(GlobPattern::new("").is_err());
    }

    #[test]
    fn multiple_stars_backtrack() {
        assert!(m("*a*b*", "xxaxxbxx"));
        assert!(!m("*a*b*", "xxbxxaxx"));
    }

    #[test]
    fn non_utf8_input_is_fine() {
        let g = GlobPattern::new("x*y").unwrap();
        assert!(g.matches(&[b'x', 0xff, 0xfe, b'y']));
    }
}
