//! The RDDR N-versioning engine — the primary contribution of
//! *"Back to the future: N-Versioning of Microservices"* (DSN 2022).
//!
//! RDDR protects a microservice by running N diverse instances of it and
//! treating any post-filter divergence in their outputs as a potential data
//! leak. One exchange flows through four phases (§IV-B of the paper):
//!
//! 1. **Replicate** — a client request is rewritten per instance (ephemeral
//!    state such as CSRF tokens is re-inserted) and fanned out to all N
//!    instances ([`NVersionEngine::replicate_request`]).
//! 2. **De-noise** — a designated *filter pair* of identical instances
//!    identifies nondeterministic output (session ids, ASLR'd pointers);
//!    byte ranges on which the pair disagrees are masked ([`NoiseMask`]).
//! 3. **Diff** — responses are tokenized by a protocol module and compared
//!    after masking, known-variance exclusion (§IV-B4) and ephemeral-state
//!    capture (§IV-B3) ([`NVersionEngine::evaluate_responses`]).
//! 4. **Respond** — under the paper's policy, a unanimous response is
//!    forwarded and a divergence severs the connection; classic majority
//!    voting is available as an ablation ([`ResponsePolicy`]).
//!
//! The engine is transport-agnostic and synchronous: it consumes the bytes
//! each instance produced and renders verdicts. The `rddr-proxy` crate wires
//! it to real connections.
//!
//! # Examples
//!
//! Detecting a data leak between two diverse instances:
//!
//! ```
//! use rddr_core::{EngineConfig, NVersionEngine, Verdict};
//! use rddr_core::protocol::LineProtocol;
//!
//! # fn main() -> Result<(), rddr_core::RddrError> {
//! let config = EngineConfig::builder(2).build()?;
//! let mut engine = NVersionEngine::new(config, LineProtocol::new());
//!
//! // Both instances answer a benign request identically: forwarded.
//! let verdict = engine.evaluate_responses(&[b"ok\n".to_vec(), b"ok\n".to_vec()])?;
//! assert!(matches!(verdict, Verdict::Unanimous(_)));
//!
//! // One instance leaks extra data: blocked.
//! let verdict = engine.evaluate_responses(&[
//!     b"ok\n".to_vec(),
//!     b"ok\nSECRET ROW 42\n".to_vec(),
//! ])?;
//! assert!(matches!(verdict, Verdict::Divergent(_)));
//! # Ok(())
//! # }
//! ```

mod config;
mod configfile;
mod denoise;
mod diff;
mod engine;
mod ephemeral;
mod error;
mod frame;
mod glob;
mod metrics;
mod policy;
pub mod protocol;
mod report;
mod signature;
mod variance;

pub use config::{EngineConfig, EngineConfigBuilder};
pub use configfile::{ConfigFile, StorageConfig};
pub use denoise::{NoiseMask, SegmentMask};
pub use diff::{diff_segments, DiffOutcome};
pub use engine::{ExchangeOutcome, NVersionEngine, RequestCopy, SessionState, Verdict};
pub use ephemeral::{EphemeralStore, EphemeralToken, MIN_TOKEN_LEN};
pub use error::RddrError;
pub use frame::{Direction, Frame, Segment};
pub use glob::GlobPattern;
pub use metrics::{EngineCounters, EngineMetrics};
pub use policy::{
    DegradePolicy, PolicyDecision, ResponsePolicy, SurvivorPolicy, INTERVENTION_PAGE,
};
pub use protocol::Protocol;
pub use report::{DivergenceDetail, DivergenceReport};
pub use signature::SignatureThrottle;
pub use variance::{VarianceRule, VarianceRules};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RddrError>;
