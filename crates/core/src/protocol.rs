//! Protocol modules (§IV-B1).
//!
//! "Support for application layer protocols is implemented by Python modules
//! that comply with a standard interface, allowing developers to extend RDDR
//! to support other protocols. These modules handle all protocol-specific
//! tasks such as tokenizing, differencing traffic, and traffic modification."
//!
//! This module defines that standard interface as the [`Protocol`] trait,
//! plus two protocol-agnostic implementations ([`LineProtocol`], and
//! [`RawProtocol`]). Richer modules (HTTP, PostgreSQL, JSON) live in the
//! `rddr-protocols` crate. The trait is deliberately *not* sealed — the
//! paper invites third parties to add protocol modules.

use bytes::BytesMut;

use crate::{Direction, Frame, Result, Segment};

/// The standard interface every protocol module implements.
///
/// A protocol module is consulted by the engine and proxies for four tasks:
/// framing (where does one application message end?), tokenizing (what are
/// the comparable units inside a frame?), criticality (does this frame
/// participate in diffing at all?), and ephemeral-state support (should the
/// engine run CSRF-token capture on this protocol?).
pub trait Protocol: Send + Sync {
    /// A short name, e.g. `"http"`, `"postgres"`.
    fn name(&self) -> &str;

    /// Extracts complete frames from `buf`, leaving any trailing partial
    /// frame in place. Called repeatedly as bytes arrive.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RddrError::Protocol`] on malformed traffic.
    fn split_frames(&self, buf: &mut BytesMut, direction: Direction) -> Result<Vec<Frame>>;

    /// Tokenizes a frame into ordered, diffable segments.
    fn tokenize(&self, frame: &Frame) -> Vec<Segment>;

    /// Whether the engine should run ephemeral-state (CSRF token) capture
    /// and substitution for this protocol. Only the HTTP module enables it,
    /// mirroring the paper ("only the HTTP extension implements this").
    fn supports_ephemeral(&self) -> bool {
        false
    }

    /// Whether the frames collected so far form one complete exchange unit
    /// (e.g. a full HTTP response, or a PostgreSQL message sequence ending
    /// in `ReadyForQuery`). The proxy diffs once every instance is complete.
    fn exchange_complete(&self, frames: &[Frame], direction: Direction) -> bool {
        let _ = direction;
        !frames.is_empty()
    }

    /// How many leading frames form one complete exchange unit, or `None`
    /// while the unit is still incomplete. The default consumes everything
    /// buffered once [`Protocol::exchange_complete`] holds — exactly the
    /// pre-pipelining behavior. Protocols with strict 1:1 request/response
    /// framing (e.g. [`LineProtocol`]) override this so pipelined exchanges
    /// are consumed and diffed one unit at a time.
    fn exchange_take(&self, frames: &[Frame], direction: Direction) -> Option<usize> {
        self.exchange_complete(frames, direction)
            .then_some(frames.len())
    }

    /// Whether the proxy may batch several buffered request frames into one
    /// fan-out write per instance and evaluate the responses unit by unit
    /// (via [`Protocol::exchange_take`]). Requires strict 1:1
    /// request/response framing and no ephemeral-state capture, since
    /// capture/substitution assumes sequential exchanges. Default: false.
    fn supports_pipelining(&self) -> bool {
        false
    }
}

/// Newline-delimited framing: each complete line is a frame of one segment.
///
/// This is the protocol the paper's simplest services (echo servers, the
/// ASLR proof-of-concept) speak.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineProtocol;

impl LineProtocol {
    /// Creates the line protocol.
    pub fn new() -> Self {
        LineProtocol
    }
}

impl Protocol for LineProtocol {
    fn name(&self) -> &str {
        "line"
    }

    fn split_frames(&self, buf: &mut BytesMut, _direction: Direction) -> Result<Vec<Frame>> {
        let mut frames = Vec::new();
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            // `split_to` already copied the line out; `freeze` hands over
            // that allocation instead of copying a second time.
            let line = buf.split_to(pos + 1);
            frames.push(Frame::new("line", line.freeze()));
        }
        Ok(frames)
    }

    fn tokenize(&self, frame: &Frame) -> Vec<Segment> {
        let payload = frame
            .bytes
            .strip_suffix(b"\n")
            .map(|b| b.strip_suffix(b"\r").unwrap_or(b))
            .unwrap_or(&frame.bytes);
        vec![Segment::new("line", payload.to_vec())]
    }

    fn exchange_take(&self, frames: &[Frame], _direction: Direction) -> Option<usize> {
        // One line in, one line out: pipelined exchanges diff unit by unit.
        (!frames.is_empty()).then_some(1)
    }

    fn supports_pipelining(&self) -> bool {
        true
    }
}

/// Opaque framing: whatever bytes have arrived form one frame, compared
/// wholesale. The fallback for unknown TCP protocols.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawProtocol;

impl RawProtocol {
    /// Creates the raw protocol.
    pub fn new() -> Self {
        RawProtocol
    }
}

impl Protocol for RawProtocol {
    fn name(&self) -> &str {
        "raw"
    }

    fn split_frames(&self, buf: &mut BytesMut, _direction: Direction) -> Result<Vec<Frame>> {
        if buf.is_empty() {
            return Ok(Vec::new());
        }
        let all = buf.split_to(buf.len());
        Ok(vec![Frame::new("raw", all.freeze())])
    }

    fn tokenize(&self, frame: &Frame) -> Vec<Segment> {
        vec![Segment::new("raw", frame.bytes.clone())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_protocol_frames_complete_lines_only() {
        let p = LineProtocol::new();
        let mut buf = BytesMut::from(&b"one\ntwo\npart"[..]);
        let frames = p.split_frames(&mut buf, Direction::Response).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].bytes, b"one\n");
        assert_eq!(&buf[..], b"part", "partial line stays buffered");
    }

    #[test]
    fn line_tokenize_strips_crlf() {
        let p = LineProtocol::new();
        let segs = p.tokenize(&Frame::new("line", b"hello\r\n".to_vec()));
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].payload, b"hello");
    }

    #[test]
    fn raw_protocol_consumes_everything() {
        let p = RawProtocol::new();
        let mut buf = BytesMut::from(&b"\x00\x01\x02"[..]);
        let frames = p.split_frames(&mut buf, Direction::Request).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].bytes, vec![0, 1, 2]);
        assert!(buf.is_empty());
    }

    #[test]
    fn raw_protocol_empty_buffer_yields_no_frames() {
        let p = RawProtocol::new();
        let mut buf = BytesMut::new();
        assert!(p
            .split_frames(&mut buf, Direction::Request)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn neither_basic_protocol_supports_ephemeral() {
        assert!(!LineProtocol::new().supports_ephemeral());
        assert!(!RawProtocol::new().supports_ephemeral());
    }

    #[test]
    fn line_exchange_take_is_one_frame() {
        let p = LineProtocol::new();
        let frames = vec![
            Frame::new("line", b"a\n".to_vec()),
            Frame::new("line", b"b\n".to_vec()),
        ];
        assert_eq!(p.exchange_take(&frames, Direction::Response), Some(1));
        assert_eq!(p.exchange_take(&[], Direction::Response), None);
    }

    #[test]
    fn default_exchange_take_consumes_everything_when_complete() {
        let p = RawProtocol::new();
        let frames = vec![
            Frame::new("raw", b"a".to_vec()),
            Frame::new("raw", b"b".to_vec()),
        ];
        assert_eq!(p.exchange_take(&frames, Direction::Response), Some(2));
        assert_eq!(p.exchange_take(&[], Direction::Response), None);
    }

    #[test]
    fn protocols_are_object_safe() {
        let protocols: Vec<Box<dyn Protocol>> =
            vec![Box::new(LineProtocol::new()), Box::new(RawProtocol::new())];
        assert_eq!(protocols[0].name(), "line");
        assert_eq!(protocols[1].name(), "raw");
    }
}
