use crate::{GlobPattern, Result, Segment};

/// One known-variance rule (§IV-B4): segments whose label matches
/// `label_glob` and whose payload matches `payload_glob` are excluded from
/// divergence detection.
///
/// The paper supports this "through RDDR's configuration file", e.g. to
/// ignore differing `server_version` strings when Postgres 10.7 and 10.9 are
/// deployed together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarianceRule {
    label_glob: GlobPattern,
    payload_glob: GlobPattern,
}

impl VarianceRule {
    /// Creates a rule from two glob patterns.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RddrError::InvalidConfig`] if either pattern is empty.
    pub fn new(label_glob: &str, payload_glob: &str) -> Result<Self> {
        Ok(Self {
            label_glob: GlobPattern::new(label_glob)?,
            payload_glob: GlobPattern::new(payload_glob)?,
        })
    }

    /// Shorthand for a rule that applies to every segment label.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RddrError::InvalidConfig`] if the pattern is empty.
    pub fn any_label(payload_glob: &str) -> Result<Self> {
        Self::new("*", payload_glob)
    }

    /// Whether `segment` is covered by this rule.
    pub fn matches(&self, segment: &Segment) -> bool {
        self.label_glob.matches(segment.label.as_bytes())
            && self.payload_glob.matches(&segment.payload)
    }
}

/// An ordered collection of known-variance rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarianceRules {
    rules: Vec<VarianceRule>,
}

impl VarianceRules {
    /// Creates an empty rule set (the default: everything is compared).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: VarianceRule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> std::slice::Iter<'_, VarianceRule> {
        self.rules.iter()
    }

    /// Whether any rule excludes `segment` from diffing.
    pub fn excludes(&self, segment: &Segment) -> bool {
        self.rules.iter().any(|r| r.matches(segment))
    }
}

impl FromIterator<VarianceRule> for VarianceRules {
    fn from_iter<T: IntoIterator<Item = VarianceRule>>(iter: T) -> Self {
        Self {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<VarianceRule> for VarianceRules {
    fn extend<T: IntoIterator<Item = VarianceRule>>(&mut self, iter: T) {
        self.rules.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(label: &str, payload: &str) -> Segment {
        Segment::new(label, payload.as_bytes().to_vec())
    }

    #[test]
    fn rule_matches_label_and_payload() {
        let r = VarianceRule::new("pg:ParameterStatus", "server_version*").unwrap();
        assert!(r.matches(&seg("pg:ParameterStatus", "server_version 10.7")));
        assert!(!r.matches(&seg("pg:DataRow", "server_version 10.7")));
        assert!(!r.matches(&seg("pg:ParameterStatus", "TimeZone UTC")));
    }

    #[test]
    fn any_label_rule() {
        let r = VarianceRule::any_label("*nginx/1.13.*").unwrap();
        assert!(r.matches(&seg("line", "Server: nginx/1.13.2")));
        assert!(r.matches(&seg("header", "Server: nginx/1.13.4")));
    }

    #[test]
    fn empty_set_excludes_nothing() {
        let rules = VarianceRules::new();
        assert!(!rules.excludes(&seg("line", "anything")));
        assert!(rules.is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut rules: VarianceRules = [VarianceRule::any_label("a*").unwrap()]
            .into_iter()
            .collect();
        rules.extend([VarianceRule::any_label("b*").unwrap()]);
        assert_eq!(rules.len(), 2);
        assert!(rules.excludes(&seg("x", "alpha")));
        assert!(rules.excludes(&seg("x", "beta")));
        assert!(!rules.excludes(&seg("x", "gamma")));
    }
}
