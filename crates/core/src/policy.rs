//! The Respond phase: what to do with a verdict.

use crate::DiffOutcome;

/// How RDDR answers the client after diffing.
///
/// The paper's deployment always uses [`ResponsePolicy::Block`]: "the proxy
/// closes the connection to the client and halts communication". Classic
/// N-version systems instead vote; [`ResponsePolicy::MajorityVote`] is
/// provided as an ablation (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponsePolicy {
    /// Sever the connection on any divergence (the paper's behaviour).
    #[default]
    Block,
    /// Forward the response of the largest agreeing group if it reaches a
    /// strict majority; block otherwise.
    MajorityVote,
}

/// How the proxies react to an *instance-level* fault (read timeout,
/// mid-stream reset, failed dial) during a session — orthogonal to
/// [`ResponsePolicy`], which governs what happens on a *divergence*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Any instance fault severs the whole session (the paper's behaviour:
    /// availability is sacrificed for containment).
    #[default]
    Sever,
    /// The faulted instance is ejected and the exchange continues over the
    /// surviving k-of-N: k ≥ 2 keeps diffing, k = 1 falls to the embedded
    /// [`SurvivorPolicy`], k = 0 severs.
    Eject(SurvivorPolicy),
}

impl DegradePolicy {
    /// Eject faulted instances; sever once diversity is exhausted (k = 1).
    pub fn eject() -> Self {
        DegradePolicy::Eject(SurvivorPolicy::Sever)
    }

    /// Eject faulted instances; keep serving the lone survivor with a
    /// pass-through warning when diversity is exhausted.
    pub fn eject_with_pass_through() -> Self {
        DegradePolicy::Eject(SurvivorPolicy::PassThrough)
    }

    /// Whether instance faults eject rather than sever.
    pub fn ejects(&self) -> bool {
        matches!(self, DegradePolicy::Eject(_))
    }

    /// The single-survivor sub-policy, when ejection is enabled.
    pub fn survivor(&self) -> Option<SurvivorPolicy> {
        match self {
            DegradePolicy::Sever => None,
            DegradePolicy::Eject(s) => Some(*s),
        }
    }
}

/// What a proxy does when ejections leave only one live instance — diffing
/// is impossible, so this is a policy question, not a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SurvivorPolicy {
    /// Sever: no diversity means no leak detection, so stop serving.
    #[default]
    Sever,
    /// Forward the survivor's bytes unchecked, counting a pass-through
    /// warning per exchange (availability over containment).
    PassThrough,
}

/// The action the proxy should take for one exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Forward this instance's response to the client.
    Forward {
        /// Index of the instance whose bytes are forwarded.
        instance: usize,
    },
    /// Sever the connection, optionally after sending an intervention notice.
    Sever {
        /// Instances implicated in the divergence.
        implicated: Vec<usize>,
    },
}

impl ResponsePolicy {
    /// Decides the action for a diffed exchange.
    ///
    /// When unanimous, all policies forward instance 0's response (the paper
    /// forwards "the page sent by the first instance").
    pub fn decide(&self, outcome: &DiffOutcome) -> PolicyDecision {
        if !outcome.report.diverged() {
            return PolicyDecision::Forward { instance: 0 };
        }
        match self {
            ResponsePolicy::Block => PolicyDecision::Sever {
                implicated: outcome.report.implicated_instances(),
            },
            ResponsePolicy::MajorityVote => {
                let groups = outcome.agreement_groups();
                let total: usize = groups.iter().map(Vec::len).sum();
                let winner = &groups[0];
                if winner.len() * 2 > total {
                    PolicyDecision::Forward {
                        instance: winner[0],
                    }
                } else {
                    PolicyDecision::Sever {
                        implicated: outcome.report.implicated_instances(),
                    }
                }
            }
        }
    }
}

/// The HTML intervention page returned to HTTP clients when RDDR severs a
/// connection ("a web page indicating that RDDR intervened", §IV-B).
pub const INTERVENTION_PAGE: &str = "HTTP/1.1 403 Forbidden\r\n\
Content-Type: text/html\r\n\
Connection: close\r\n\
Content-Length: 114\r\n\
\r\n\
<html><body><h1>RDDR intervened</h1><p>Divergent instance behaviour detected; \
connection closed.</p></body></html>";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diff_segments, NoiseMask, Segment, VarianceRules};

    fn outcome(payloads: &[&str]) -> DiffOutcome {
        let segs: Vec<Vec<Segment>> = payloads
            .iter()
            .map(|p| vec![Segment::new("line", p.as_bytes().to_vec())])
            .collect();
        diff_segments(&segs, &NoiseMask::none(), &VarianceRules::new())
    }

    #[test]
    fn unanimous_forwards_first_instance() {
        let o = outcome(&["same", "same", "same"]);
        assert_eq!(
            ResponsePolicy::Block.decide(&o),
            PolicyDecision::Forward { instance: 0 }
        );
        assert_eq!(
            ResponsePolicy::MajorityVote.decide(&o),
            PolicyDecision::Forward { instance: 0 }
        );
    }

    #[test]
    fn block_severs_on_any_divergence() {
        let o = outcome(&["good", "good", "evil"]);
        assert_eq!(
            ResponsePolicy::Block.decide(&o),
            PolicyDecision::Sever {
                implicated: vec![2]
            }
        );
    }

    #[test]
    fn majority_vote_forwards_winner() {
        let o = outcome(&["good", "evil", "good"]);
        assert_eq!(
            ResponsePolicy::MajorityVote.decide(&o),
            PolicyDecision::Forward { instance: 0 }
        );
    }

    #[test]
    fn majority_vote_severs_on_tie() {
        let o = outcome(&["a", "b"]);
        assert!(matches!(
            ResponsePolicy::MajorityVote.decide(&o),
            PolicyDecision::Sever { .. }
        ));
    }

    #[test]
    fn majority_winner_may_not_be_instance_zero() {
        let o = outcome(&["evil", "good", "good"]);
        assert_eq!(
            ResponsePolicy::MajorityVote.decide(&o),
            PolicyDecision::Forward { instance: 1 }
        );
    }

    #[test]
    fn intervention_page_is_valid_http() {
        assert!(INTERVENTION_PAGE.starts_with("HTTP/1.1 403"));
        let body = INTERVENTION_PAGE.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body.len(), 114, "Content-Length header must match body");
    }
}
