use std::fmt;

/// Why two instances' outputs were considered divergent at one position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceDetail {
    /// Position of the differing segment within the frame.
    pub segment_index: usize,
    /// Tokenizer label of the segment (e.g. `"line"`, `"pg:DataRow"`).
    pub label: String,
    /// The instance that disagreed with the reference instance.
    pub instance: usize,
    /// Canonicalized (post-mask) payload of the reference instance, truncated.
    pub reference_excerpt: String,
    /// Canonicalized payload of the disagreeing instance, truncated.
    pub instance_excerpt: String,
}

/// The outcome of diffing one frame across N instances — serializable so
/// deployments can ship divergence events to their alerting pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Every detected disagreement (empty when unanimous).
    pub details: Vec<DivergenceDetail>,
    /// Positions excluded by the filter pair's noise mask.
    pub noise_masked: usize,
    /// Segments excluded by known-variance rules.
    pub variance_excluded: usize,
    /// Ephemeral tokens captured while scanning this frame.
    pub tokens_captured: usize,
    /// Instances whose output structurally disagreed (different segment
    /// count than the reference after masking).
    pub structural: Vec<usize>,
}

impl DivergenceReport {
    /// Whether the frame diverged.
    pub fn diverged(&self) -> bool {
        !self.details.is_empty() || !self.structural.is_empty()
    }

    /// The distinct instances implicated in the divergence.
    pub fn implicated_instances(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .details
            .iter()
            .map(|d| d.instance)
            .chain(self.structural.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.diverged() {
            return write!(
                f,
                "unanimous ({} noise-masked, {} variance-excluded)",
                self.noise_masked, self.variance_excluded
            );
        }
        writeln!(
            f,
            "DIVERGENCE: {} detail(s), instances {:?}",
            self.details.len(),
            self.implicated_instances()
        )?;
        for d in &self.details {
            writeln!(
                f,
                "  [{}#{}] instance {}: {:?} != reference {:?}",
                d.label, d.segment_index, d.instance, d.instance_excerpt, d.reference_excerpt
            )?;
        }
        for s in &self.structural {
            writeln!(f, "  instance {s}: structural mismatch")?;
        }
        Ok(())
    }
}

/// Truncates a canonicalized payload for inclusion in a report.
pub(crate) fn excerpt(payload: &[u8]) -> String {
    const MAX: usize = 120;
    let s = String::from_utf8_lossy(payload);
    if s.len() <= MAX {
        s.into_owned()
    } else {
        let cut: String = s.chars().take(MAX).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_unanimous() {
        let r = DivergenceReport::default();
        assert!(!r.diverged());
        assert!(r.to_string().contains("unanimous"));
    }

    #[test]
    fn implicated_instances_dedup_and_sort() {
        let mut r = DivergenceReport::default();
        r.structural.push(2);
        r.details.push(DivergenceDetail {
            segment_index: 0,
            label: "line".into(),
            instance: 2,
            reference_excerpt: "a".into(),
            instance_excerpt: "b".into(),
        });
        r.details.push(DivergenceDetail {
            segment_index: 1,
            label: "line".into(),
            instance: 1,
            reference_excerpt: "a".into(),
            instance_excerpt: "c".into(),
        });
        assert!(r.diverged());
        assert_eq!(r.implicated_instances(), vec![1, 2]);
    }

    #[test]
    fn excerpt_truncates_long_payloads() {
        let long = vec![b'x'; 500];
        let e = excerpt(&long);
        assert!(e.ends_with('…'));
        assert!(e.chars().count() <= 121);
    }
}
