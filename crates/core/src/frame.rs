use std::fmt;

/// Direction of traffic relative to the protected microservice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → protected instances (a request being replicated).
    Request,
    /// Protected instances → client (responses being diffed).
    Response,
}

/// One complete application-layer message, as delimited by a protocol module.
///
/// The incoming proxy accumulates raw bytes per instance and asks the
/// protocol module to split them into frames; the engine then diffs frames
/// position-by-position across instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-assigned label (e.g. `"http:response"`, `"pg:DataRow"`).
    pub label: String,
    /// The raw frame bytes, exactly as they appeared on the wire.
    pub bytes: Vec<u8>,
    /// Whether this frame participates in divergence detection. Protocol
    /// modules mark e.g. PostgreSQL `ParameterStatus` frames non-critical.
    pub critical: bool,
}

impl Frame {
    /// Creates a critical frame with the given label.
    pub fn new(label: impl Into<String>, bytes: impl Into<Vec<u8>>) -> Self {
        Self {
            label: label.into(),
            bytes: bytes.into(),
            critical: true,
        }
    }

    /// Creates a frame excluded from diffing.
    pub fn non_critical(label: impl Into<String>, bytes: impl Into<Vec<u8>>) -> Self {
        Self {
            label: label.into(),
            bytes: bytes.into(),
            critical: false,
        }
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the frame carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bytes)", self.label, self.bytes.len())
    }
}

/// A diffable unit inside a frame, produced by a protocol module's tokenizer.
///
/// For HTTP this is a line (the paper's HTTP module "tokenizes at the newline
/// boundary and compares lines", §IV-B1); for PostgreSQL a wire message; for
/// JSON a path/value pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Tokenizer-assigned label (e.g. `"line"`, `"json:/user/name"`).
    pub label: String,
    /// The segment payload compared across instances.
    pub payload: Vec<u8>,
}

impl Segment {
    /// Creates a segment.
    pub fn new(label: impl Into<String>, payload: impl Into<Vec<u8>>) -> Self {
        Self {
            label: label.into(),
            payload: payload.into(),
        }
    }

    /// The payload interpreted as lossy UTF-8, for reports.
    pub fn payload_lossy(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.label, self.payload_lossy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_constructors_set_criticality() {
        assert!(Frame::new("a", b"x".to_vec()).critical);
        assert!(!Frame::non_critical("a", b"x".to_vec()).critical);
    }

    #[test]
    fn frame_len_and_empty() {
        let f = Frame::new("a", Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(Frame::new("a", b"abc".to_vec()).len(), 3);
    }

    #[test]
    fn segment_display_includes_label_and_payload() {
        let s = Segment::new("line", b"hello".to_vec());
        assert_eq!(s.to_string(), "[line] hello");
    }

    #[test]
    fn lossy_payload_handles_invalid_utf8() {
        let s = Segment::new("raw", vec![0xff, 0xfe]);
        assert!(!s.payload_lossy().is_empty());
    }
}
