//! The De-noise phase (§IV-B2): distinguishing nondeterministic noise from
//! relevant divergence using a *filter pair*.
//!
//! RDDR deploys two identical instances of the protected microservice — the
//! filter pair — alongside the diverse instances. Any output position on
//! which the pair disagrees must be nondeterminism (session ids, timestamps,
//! ASLR'd pointers) because the pair runs the same code. Those positions are
//! masked before the Diff phase, so "RDDR identifies a divergence if any
//! instances except the filter pair produce non-identical output".

use crate::Segment;

/// The byte range of one segment to ignore during comparison.
///
/// Expressed as a prefix length and suffix length that *are* compared; the
/// middle is masked. Lengths are clamped per instance so the same mask can
/// apply to segments of different lengths (e.g. variable-width session ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMask {
    /// Index of the segment within the frame's segment list.
    pub index: usize,
    /// Number of leading bytes still compared.
    pub prefix: usize,
    /// Number of trailing bytes still compared.
    pub suffix: usize,
    /// When `true` the whole segment is ignored (structural noise: the pair
    /// produced different segment counts at this position).
    pub whole: bool,
}

/// The set of masks derived from one frame's filter-pair comparison.
///
/// # Examples
///
/// ```
/// use rddr_core::{NoiseMask, Segment};
///
/// let pair_a = vec![Segment::new("line", b"sid=AAAA ok".to_vec())];
/// let pair_b = vec![Segment::new("line", b"sid=BBBB ok".to_vec())];
/// let mask = NoiseMask::from_filter_pair(&pair_a, &pair_b);
/// // A third, diverse instance's own session id is masked away:
/// assert_eq!(mask.apply(0, b"sid=CCCC ok"), b"sid=<noise> ok");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NoiseMask {
    masks: Vec<SegmentMask>,
}

impl NoiseMask {
    /// An empty mask (nothing filtered).
    pub fn none() -> Self {
        Self::default()
    }

    /// Derives the mask by comparing the filter pair's segment lists.
    ///
    /// For each position where the pair's payloads differ, the differing
    /// byte range (computed as the common prefix/suffix) is masked. If the
    /// pair produced different segment *counts*, the surplus positions are
    /// masked wholesale.
    pub fn from_filter_pair(a: &[Segment], b: &[Segment]) -> Self {
        let mut masks = Vec::new();
        let common = a.len().min(b.len());
        for i in 0..common {
            let (pa, pb) = (&a[i].payload, &b[i].payload);
            if pa == pb {
                continue;
            }
            let prefix = common_prefix(pa, pb);
            let suffix = common_suffix(&pa[prefix..], &pb[prefix..]);
            masks.push(SegmentMask {
                index: i,
                prefix,
                suffix,
                whole: false,
            });
        }
        for i in common..a.len().max(b.len()) {
            masks.push(SegmentMask {
                index: i,
                prefix: 0,
                suffix: 0,
                whole: true,
            });
        }
        Self { masks }
    }

    /// Number of masked positions.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no positions are masked.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Iterates over the per-segment masks.
    pub fn iter(&self) -> std::slice::Iter<'_, SegmentMask> {
        self.masks.iter()
    }

    /// Returns the mask covering segment `index`, if any.
    pub fn mask_for(&self, index: usize) -> Option<&SegmentMask> {
        self.masks.iter().find(|m| m.index == index)
    }

    /// Adds an explicit mask (used for captured ephemeral-token ranges when
    /// no filter pair is deployed).
    pub fn add(&mut self, mask: SegmentMask) {
        self.masks.push(mask);
    }

    /// Applies the mask to a segment payload, replacing the masked middle
    /// with a fixed placeholder so equal-structure outputs compare equal.
    pub fn apply(&self, index: usize, payload: &[u8]) -> Vec<u8> {
        let Some(mask) = self.mask_for(index) else {
            return payload.to_vec();
        };
        mask.canonicalize(payload)
    }
}

impl SegmentMask {
    /// Rewrites `payload` with the masked range replaced by a placeholder.
    pub fn canonicalize(&self, payload: &[u8]) -> Vec<u8> {
        if self.whole {
            return b"<noise>".to_vec();
        }
        let prefix = self.prefix.min(payload.len());
        let suffix = self.suffix.min(payload.len() - prefix);
        let mut out = Vec::with_capacity(prefix + suffix + 7);
        out.extend_from_slice(&payload[..prefix]);
        out.extend_from_slice(b"<noise>");
        out.extend_from_slice(&payload[payload.len() - suffix..]);
        out
    }
}

/// Length of the common prefix of two byte slices.
pub(crate) fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Length of the common suffix of two byte slices.
pub(crate) fn common_suffix(a: &[u8], b: &[u8]) -> usize {
    a.iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(lines: &[&str]) -> Vec<Segment> {
        lines
            .iter()
            .map(|l| Segment::new("line", l.as_bytes().to_vec()))
            .collect()
    }

    #[test]
    fn identical_pair_yields_empty_mask() {
        let a = segs(&["hello", "world"]);
        let mask = NoiseMask::from_filter_pair(&a, &a);
        assert!(mask.is_empty());
    }

    #[test]
    fn differing_middle_is_masked() {
        let a = segs(&["sid=AAAA; path=/"]);
        let b = segs(&["sid=BBBB; path=/"]);
        let mask = NoiseMask::from_filter_pair(&a, &b);
        assert_eq!(mask.len(), 1);
        let m = mask.mask_for(0).unwrap();
        assert_eq!(m.prefix, 4);
        assert_eq!(m.suffix, 8);
        // Applying to a third, diverse instance with its own session id:
        let canon = mask.apply(0, b"sid=CCCC; path=/");
        assert_eq!(canon, b"sid=<noise>; path=/");
    }

    #[test]
    fn variable_length_noise_masks_by_affix() {
        let a = segs(&["ptr=0x7fff12345678"]);
        let b = segs(&["ptr=0x7ffe9abcdef0"]);
        let mask = NoiseMask::from_filter_pair(&a, &b);
        let canon_a = mask.apply(0, &a[0].payload);
        let canon_b = mask.apply(0, &b[0].payload);
        assert_eq!(canon_a, canon_b, "pair canonicalizes identically");
    }

    #[test]
    fn structural_difference_masks_extra_segments() {
        let a = segs(&["x", "y"]);
        let b = segs(&["x"]);
        let mask = NoiseMask::from_filter_pair(&a, &b);
        assert_eq!(mask.len(), 1);
        assert!(mask.mask_for(1).unwrap().whole);
        assert_eq!(mask.apply(1, b"anything"), b"<noise>");
    }

    #[test]
    fn unmasked_positions_pass_through() {
        let mask = NoiseMask::none();
        assert_eq!(mask.apply(3, b"data"), b"data");
    }

    #[test]
    fn mask_clamps_on_short_third_instance() {
        let a = segs(&["token=0123456789"]);
        let b = segs(&["token=abcdefghij"]);
        let mask = NoiseMask::from_filter_pair(&a, &b);
        // A diverse instance returning a shorter value must not panic.
        let canon = mask.apply(0, b"tok");
        assert_eq!(canon, b"tok<noise>");
    }

    #[test]
    fn prefix_suffix_helpers() {
        assert_eq!(common_prefix(b"abcd", b"abxd"), 2);
        assert_eq!(common_suffix(b"cd", b"xd"), 1);
        assert_eq!(common_prefix(b"", b"a"), 0);
        assert_eq!(common_suffix(b"same", b"same"), 4);
    }
}
