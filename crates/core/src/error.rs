use std::fmt;

/// Errors produced by the RDDR engine.
#[derive(Debug)]
pub enum RddrError {
    /// An [`crate::EngineConfig`] was inconsistent (e.g. filter-pair index out
    /// of range, or fewer than two instances).
    InvalidConfig(String),
    /// The number of responses handed to the engine does not match N.
    InstanceCountMismatch {
        /// Configured number of instances.
        expected: usize,
        /// Number of responses actually provided.
        got: usize,
    },
    /// A protocol module failed to parse traffic.
    Protocol(String),
    /// A request matched a known divergence signature and was refused
    /// (DoS throttling, paper §IV-D).
    Throttled,
}

impl fmt::Display for RddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RddrError::InvalidConfig(s) => write!(f, "invalid engine configuration: {s}"),
            RddrError::InstanceCountMismatch { expected, got } => {
                write!(f, "expected {expected} instance responses, got {got}")
            }
            RddrError::Protocol(s) => write!(f, "protocol error: {s}"),
            RddrError::Throttled => write!(f, "request matches a known divergence signature"),
        }
    }
}

impl std::error::Error for RddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<RddrError>();
    }

    #[test]
    fn display_messages_are_lowercase() {
        for e in [
            RddrError::InvalidConfig("x".into()),
            RddrError::InstanceCountMismatch {
                expected: 3,
                got: 2,
            },
            RddrError::Protocol("y".into()),
            RddrError::Throttled,
        ] {
            let s = e.to_string();
            assert!(s.starts_with(char::is_lowercase), "{s}");
        }
    }
}
