//! The Diff phase: position-wise comparison of N tokenized outputs after
//! noise masking and known-variance exclusion.

use crate::report::excerpt;
use crate::{DivergenceDetail, DivergenceReport, NoiseMask, Segment, VarianceRules};

/// The result of diffing, bundling the report with the canonicalized
/// (post-mask) segment forms used for majority grouping.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The divergence report.
    pub report: DivergenceReport,
    /// For each instance, the canonical byte form of its diffable output
    /// (used by the majority-vote policy to group agreeing instances).
    pub canonical_forms: Vec<Vec<u8>>,
}

impl DiffOutcome {
    /// Groups instances by identical canonical form, largest group first.
    pub fn agreement_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<(Vec<u8>, Vec<usize>)> = Vec::new();
        for (idx, form) in self.canonical_forms.iter().enumerate() {
            match groups.iter_mut().find(|(f, _)| f == form) {
                Some((_, members)) => members.push(idx),
                None => groups.push((form.clone(), vec![idx])),
            }
        }
        groups.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.1[0].cmp(&b.1[0])));
        groups.into_iter().map(|(_, members)| members).collect()
    }
}

/// Diffs the tokenized output of N instances.
///
/// `segments[i]` is instance *i*'s segment list for the frame being compared.
/// `mask` carries the filter pair's noise ranges; `rules` the operator's
/// known-variance exclusions. Instance 0 serves as the reference: with
/// unanimity required, "all equal" is equivalent to "all equal to the first".
///
/// # Panics
///
/// Panics if `segments` is empty.
pub fn diff_segments(
    segments: &[Vec<Segment>],
    mask: &NoiseMask,
    rules: &VarianceRules,
) -> DiffOutcome {
    assert!(!segments.is_empty(), "diff requires at least one instance");
    let mut report = DivergenceReport {
        noise_masked: mask.len(),
        ..DivergenceReport::default()
    };
    let reference = &segments[0];

    // Canonicalize every instance's segments once.
    let mut canon: Vec<Vec<Option<Vec<u8>>>> = Vec::with_capacity(segments.len());
    for list in segments {
        let mut c = Vec::with_capacity(list.len());
        for (pos, seg) in list.iter().enumerate() {
            if rules.excludes(seg) {
                c.push(None);
            } else {
                c.push(Some(mask.apply(pos, &seg.payload)));
            }
        }
        canon.push(c);
    }
    report.variance_excluded = canon
        .iter()
        .map(|c| c.iter().filter(|s| s.is_none()).count())
        .sum();

    let canonical_forms: Vec<Vec<u8>> = canon
        .iter()
        .map(|c| {
            let mut flat = Vec::new();
            for s in c.iter().flatten() {
                flat.extend_from_slice(s);
                flat.push(0x1e); // record separator
            }
            flat
        })
        .collect();

    for (inst, list) in canon.iter().enumerate().skip(1) {
        let compared = reference.len().min(list.len());
        for pos in 0..compared {
            let (Some(ref_c), Some(inst_c)) = (&canon[0][pos], &list[pos]) else {
                continue;
            };
            if ref_c != inst_c {
                report.details.push(DivergenceDetail {
                    segment_index: pos,
                    label: segments[inst][pos].label.clone(),
                    instance: inst,
                    reference_excerpt: excerpt(ref_c),
                    instance_excerpt: excerpt(inst_c),
                });
            }
        }
        // Structural mismatch: differing diffable segment counts, unless the
        // surplus positions are wholly masked.
        if reference.len() != list.len() {
            let longer = reference.len().max(list.len());
            let surplus_masked =
                (compared..longer).all(|pos| mask.mask_for(pos).is_some_and(|m| m.whole));
            if !surplus_masked {
                report.structural.push(inst);
            }
        }
    }

    DiffOutcome {
        report,
        canonical_forms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarianceRule;

    fn lines(ls: &[&str]) -> Vec<Segment> {
        ls.iter()
            .map(|l| Segment::new("line", l.as_bytes().to_vec()))
            .collect()
    }

    #[test]
    fn unanimous_outputs_do_not_diverge() {
        let s = vec![lines(&["a", "b"]), lines(&["a", "b"]), lines(&["a", "b"])];
        let out = diff_segments(&s, &NoiseMask::none(), &VarianceRules::new());
        assert!(!out.report.diverged());
        assert_eq!(out.agreement_groups(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn content_difference_diverges() {
        let s = vec![lines(&["a", "b"]), lines(&["a", "LEAK"])];
        let out = diff_segments(&s, &NoiseMask::none(), &VarianceRules::new());
        assert!(out.report.diverged());
        assert_eq!(out.report.details.len(), 1);
        assert_eq!(out.report.details[0].segment_index, 1);
        assert_eq!(out.report.details[0].instance, 1);
    }

    #[test]
    fn extra_segments_are_structural_divergence() {
        let s = vec![lines(&["a"]), lines(&["a", "EXTRA ROW"])];
        let out = diff_segments(&s, &NoiseMask::none(), &VarianceRules::new());
        assert!(out.report.diverged());
        assert_eq!(out.report.structural, vec![1]);
    }

    #[test]
    fn masked_noise_does_not_diverge() {
        let pair_a = lines(&["sid=AAAA ok"]);
        let pair_b = lines(&["sid=BBBB ok"]);
        let mask = NoiseMask::from_filter_pair(&pair_a, &pair_b);
        let s = vec![pair_a.clone(), pair_b.clone(), lines(&["sid=CCCC ok"])];
        let out = diff_segments(&s, &mask, &VarianceRules::new());
        assert!(!out.report.diverged(), "{}", out.report);
        assert_eq!(out.report.noise_masked, 1);
    }

    #[test]
    fn divergence_outside_masked_range_is_still_caught() {
        let pair_a = lines(&["sid=AAAA ok"]);
        let pair_b = lines(&["sid=BBBB ok"]);
        let mask = NoiseMask::from_filter_pair(&pair_a, &pair_b);
        let s = vec![pair_a, pair_b, lines(&["sid=CCCC PWNED"])];
        let out = diff_segments(&s, &mask, &VarianceRules::new());
        assert!(out.report.diverged());
        assert_eq!(out.report.implicated_instances(), vec![2]);
    }

    #[test]
    fn variance_rule_excludes_version_banner() {
        let mut rules = VarianceRules::new();
        rules.push(VarianceRule::any_label("Server: nginx/*").unwrap());
        let s = vec![
            lines(&["Server: nginx/1.13.2", "body"]),
            lines(&["Server: nginx/1.13.4", "body"]),
        ];
        let out = diff_segments(&s, &NoiseMask::none(), &rules);
        assert!(!out.report.diverged());
        assert_eq!(out.report.variance_excluded, 2);
    }

    #[test]
    fn majority_grouping_orders_largest_first() {
        let s = vec![lines(&["x"]), lines(&["y"]), lines(&["x"])];
        let out = diff_segments(&s, &NoiseMask::none(), &VarianceRules::new());
        let groups = out.agreement_groups();
        assert_eq!(groups[0], vec![0, 2]);
        assert_eq!(groups[1], vec![1]);
    }

    #[test]
    fn wholly_masked_surplus_is_not_structural() {
        // Filter pair itself had different segment counts => whole-masked tail.
        let pair_a = lines(&["a", "noise1"]);
        let pair_b = lines(&["a"]);
        let mask = NoiseMask::from_filter_pair(&pair_a, &pair_b);
        let s = vec![pair_a, pair_b];
        let out = diff_segments(&s, &mask, &VarianceRules::new());
        assert!(!out.report.diverged(), "{}", out.report);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_input_panics() {
        diff_segments(&[], &NoiseMask::none(), &VarianceRules::new());
    }
}
