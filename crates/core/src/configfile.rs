//! RDDR's configuration-file format.
//!
//! The paper configures known variance "through RDDR's configuration file"
//! (§IV-B4) and selects protocol modules per deployment (§IV-B1). This
//! module parses a minimal INI-flavoured format into an
//! [`EngineConfig`](crate::EngineConfig) plus the protocol-module name:
//!
//! ```text
//! # one protected microservice
//! instances = 3
//! filter_pair = 0 1
//! protocol = postgres
//! policy = block            # or: majority
//! response_deadline_ms = 5000
//! throttle_budget = 0       # omit to disable signature throttling
//!
//! [variance]
//! # label-glob <whitespace> payload-glob
//! pg:ParameterStatus server_version*
//! http:header:server *
//!
//! [storage]
//! # per-instance storage engine (opaque spec strings; the database
//! # layer parses them). `default` covers instances with no override.
//! default = paged:replay-forward
//! 2 = paged:shadow-discard
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use crate::{EngineConfig, RddrError, ResponsePolicy, Result, VarianceRule, VarianceRules};

/// A parsed configuration file.
///
/// # Examples
///
/// ```
/// use rddr_core::ConfigFile;
///
/// # fn main() -> Result<(), rddr_core::RddrError> {
/// let cfg = ConfigFile::parse(
///     "instances = 3\nfilter_pair = 0 1\nprotocol = http\n\n[variance]\nhttp:header:server *",
/// )?;
/// assert_eq!(cfg.engine.instances(), 3);
/// assert_eq!(cfg.protocol, "http");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConfigFile {
    /// The validated engine configuration.
    pub engine: EngineConfig,
    /// The protocol-module name (`"http"`, `"postgres"`, `"json"`,
    /// `"line"`, `"raw"`). The proxy crate resolves it to a factory.
    pub protocol: String,
    /// Per-instance storage-engine selection (`[storage]` section).
    pub storage: StorageConfig,
}

/// Per-instance storage-engine specs from the `[storage]` section.
///
/// The specs are opaque strings here — core knows nothing about storage
/// engines; the database layer parses them (e.g. `rddr_pgsim`'s
/// `StorageEngine::parse`). Diversifying *recovery policy* across
/// instances (one `paged:replay-forward`, one `paged:shadow-discard`)
/// turns crash-recovery behaviour itself into a diversity axis the
/// divergence detector can observe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageConfig {
    default: Option<String>,
    overrides: BTreeMap<usize, String>,
}

impl StorageConfig {
    /// The engine spec for instance `index`: its override if present,
    /// else the section's `default`, else `None` (caller picks its own
    /// default, conventionally in-memory).
    pub fn engine_spec(&self, index: usize) -> Option<&str> {
        self.overrides
            .get(&index)
            .map(String::as_str)
            .or(self.default.as_deref())
    }

    /// Whether the configuration file had no `[storage]` entries at all.
    pub fn is_empty(&self) -> bool {
        self.default.is_none() && self.overrides.is_empty()
    }
}

/// Which configuration section the parser is inside.
enum Section {
    Top,
    Variance,
    Storage,
}

impl ConfigFile {
    /// Parses the configuration text.
    ///
    /// # Errors
    ///
    /// Returns [`RddrError::InvalidConfig`] on unknown keys, malformed
    /// values, or an engine configuration that fails validation.
    pub fn parse(text: &str) -> Result<ConfigFile> {
        let mut instances: Option<usize> = None;
        let mut filter_pair: Option<(usize, usize)> = None;
        let mut protocol = "raw".to_string();
        let mut policy = ResponsePolicy::Block;
        let mut deadline: Option<Duration> = None;
        let mut throttle: Option<u32> = None;
        let mut variance = VarianceRules::new();
        let mut storage = StorageConfig::default();
        let mut section = Section::Top;

        for (lineno, raw_line) in text.lines().enumerate() {
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if line.eq_ignore_ascii_case("[variance]") {
                section = Section::Variance;
                continue;
            }
            if line.eq_ignore_ascii_case("[storage]") {
                section = Section::Storage;
                continue;
            }
            if line.starts_with('[') {
                return Err(RddrError::InvalidConfig(format!(
                    "unknown section {line:?} on line {}",
                    lineno + 1
                )));
            }
            if let Section::Variance = section {
                let (label, payload) = line.split_once(char::is_whitespace).ok_or_else(|| {
                    RddrError::InvalidConfig(format!(
                        "variance rule needs `label-glob payload-glob` on line {}",
                        lineno + 1
                    ))
                })?;
                variance.push(VarianceRule::new(label.trim(), payload.trim())?);
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                RddrError::InvalidConfig(format!("expected `key = value` on line {}", lineno + 1))
            })?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            if let Section::Storage = section {
                if value.is_empty() {
                    return Err(RddrError::InvalidConfig(format!(
                        "storage: empty engine spec on line {}",
                        lineno + 1
                    )));
                }
                if key == "default" {
                    storage.default = Some(value.to_string());
                } else {
                    let index: usize = key.parse().map_err(|_| {
                        RddrError::InvalidConfig(format!(
                            "storage: key must be `default` or an instance index, got {key:?} on line {}",
                            lineno + 1
                        ))
                    })?;
                    storage.overrides.insert(index, value.to_string());
                }
                continue;
            }
            match key.as_str() {
                "instances" => {
                    instances = Some(parse_num(&key, value)?);
                }
                "filter_pair" => {
                    let mut parts = value.split_whitespace();
                    let a = parse_num(&key, parts.next().unwrap_or(""))?;
                    let b = parse_num(&key, parts.next().unwrap_or(""))?;
                    filter_pair = Some((a, b));
                }
                "protocol" => protocol = value.to_ascii_lowercase(),
                "policy" => {
                    policy = match value.to_ascii_lowercase().as_str() {
                        "block" => ResponsePolicy::Block,
                        "majority" | "majority_vote" => ResponsePolicy::MajorityVote,
                        other => {
                            return Err(RddrError::InvalidConfig(format!(
                                "unknown policy {other:?}"
                            )))
                        }
                    };
                }
                "response_deadline_ms" => {
                    deadline = Some(Duration::from_millis(parse_num(&key, value)? as u64));
                }
                "throttle_budget" => {
                    throttle = Some(parse_num(&key, value)? as u32);
                }
                other => {
                    return Err(RddrError::InvalidConfig(format!(
                        "unknown key {other:?} on line {}",
                        lineno + 1
                    )))
                }
            }
        }

        let instances = instances
            .ok_or_else(|| RddrError::InvalidConfig("missing required key `instances`".into()))?;
        if let Some(&bad) = storage.overrides.keys().find(|&&i| i >= instances) {
            return Err(RddrError::InvalidConfig(format!(
                "storage: instance index {bad} out of range (instances = {instances})"
            )));
        }
        let mut builder = EngineConfig::builder(instances)
            .policy(policy)
            .variance(variance);
        if let Some((a, b)) = filter_pair {
            builder = builder.filter_pair(a, b);
        }
        if let Some(d) = deadline {
            builder = builder.response_deadline(d);
        }
        if let Some(budget) = throttle {
            builder = builder.throttle(budget);
        }
        Ok(ConfigFile {
            engine: builder.build()?,
            protocol,
            storage,
        })
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_num(key: &str, value: &str) -> Result<usize> {
    value
        .parse()
        .map_err(|_| RddrError::InvalidConfig(format!("{key}: bad number {value:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "
        # The GitLab Postgres deployment of Figure 3
        instances = 3
        filter_pair = 0 1
        protocol = postgres
        policy = block
        response_deadline_ms = 5000
        throttle_budget = 2

        [variance]
        pg:ParameterStatus server_version*
        http:header:server *
    ";

    #[test]
    fn full_config_parses() {
        let cfg = ConfigFile::parse(FULL).unwrap();
        assert_eq!(cfg.engine.instances(), 3);
        assert_eq!(cfg.engine.filter_pair(), Some((0, 1)));
        assert_eq!(cfg.protocol, "postgres");
        assert_eq!(cfg.engine.policy(), ResponsePolicy::Block);
        assert_eq!(cfg.engine.response_deadline(), Duration::from_millis(5000));
        assert_eq!(cfg.engine.throttle_budget(), Some(2));
        assert_eq!(cfg.engine.variance().len(), 2);
    }

    #[test]
    fn minimal_config_defaults() {
        let cfg = ConfigFile::parse("instances = 2").unwrap();
        assert_eq!(cfg.engine.instances(), 2);
        assert_eq!(cfg.engine.filter_pair(), None);
        assert_eq!(cfg.protocol, "raw");
        assert_eq!(cfg.engine.throttle_budget(), None);
    }

    #[test]
    fn majority_policy_parses() {
        let cfg = ConfigFile::parse("instances = 3\npolicy = majority").unwrap();
        assert_eq!(cfg.engine.policy(), ResponsePolicy::MajorityVote);
    }

    #[test]
    fn missing_instances_is_rejected() {
        assert!(ConfigFile::parse("protocol = http").is_err());
    }

    #[test]
    fn unknown_key_is_rejected() {
        assert!(ConfigFile::parse("instances = 2\nturbo = yes").is_err());
    }

    #[test]
    fn invalid_engine_config_surfaces() {
        // filter pair out of range fails EngineConfig validation.
        assert!(ConfigFile::parse("instances = 2\nfilter_pair = 0 5").is_err());
    }

    #[test]
    fn malformed_variance_rule_is_rejected() {
        assert!(ConfigFile::parse("instances = 2\n[variance]\njustonefield").is_err());
    }

    #[test]
    fn storage_section_selects_engines_per_instance() {
        let cfg = ConfigFile::parse(
            "instances = 3\n[storage]\ndefault = paged:replay-forward\n2 = paged:shadow-discard",
        )
        .unwrap();
        assert_eq!(cfg.storage.engine_spec(0), Some("paged:replay-forward"));
        assert_eq!(cfg.storage.engine_spec(1), Some("paged:replay-forward"));
        assert_eq!(cfg.storage.engine_spec(2), Some("paged:shadow-discard"));
        assert!(!cfg.storage.is_empty());
    }

    #[test]
    fn storage_section_is_optional_and_defaults_to_none() {
        let cfg = ConfigFile::parse("instances = 2").unwrap();
        assert!(cfg.storage.is_empty());
        assert_eq!(cfg.storage.engine_spec(0), None);
    }

    #[test]
    fn storage_override_without_default_leaves_others_unset() {
        let cfg = ConfigFile::parse("instances = 2\n[storage]\n1 = memory").unwrap();
        assert_eq!(cfg.storage.engine_spec(0), None);
        assert_eq!(cfg.storage.engine_spec(1), Some("memory"));
    }

    #[test]
    fn storage_index_out_of_range_is_rejected() {
        assert!(ConfigFile::parse("instances = 2\n[storage]\n5 = memory").is_err());
    }

    #[test]
    fn storage_bad_key_or_empty_spec_is_rejected() {
        assert!(ConfigFile::parse("instances = 2\n[storage]\nfirst = memory").is_err());
        assert!(ConfigFile::parse("instances = 2\n[storage]\n0 =").is_err());
    }

    #[test]
    fn variance_rules_apply() {
        let cfg = ConfigFile::parse("instances = 2\n[variance]\nline sid=*").unwrap();
        let seg = crate::Segment::new("line", b"sid=abc".to_vec());
        assert!(cfg.engine.variance().excludes(&seg));
    }
}
