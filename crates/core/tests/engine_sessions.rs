//! Session-level engine tests: multi-exchange sequences, ephemeral-token
//! lifecycles across exchanges, metric accumulation, and the interaction of
//! masking layers — the stateful behaviour unit tests don't reach.

use rddr_core::protocol::LineProtocol;
use rddr_core::{
    EngineConfig, NVersionEngine, ResponsePolicy, VarianceRule, VarianceRules, Verdict,
};
use rddr_protocols::HttpProtocol;

fn http_page(token: &str, body: &str) -> Vec<u8> {
    let content = format!("<form token=\"{token}\">\n{body}\n</form>");
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n{content}",
        content.len()
    )
    .into_bytes()
}

#[test]
fn ephemeral_lifecycle_across_exchanges() {
    let mut engine = NVersionEngine::new(
        EngineConfig::builder(3).build().unwrap(),
        HttpProtocol::new(),
    );

    // Exchange 1: each instance mints a token; capture keeps it unanimous.
    let verdict = engine
        .evaluate_responses(&[
            http_page("AAAAAAAAAAA1", "welcome"),
            http_page("BBBBBBBBBBB2", "welcome"),
            http_page("CCCCCCCCCCC3", "welcome"),
        ])
        .unwrap();
    match verdict {
        Verdict::Unanimous(bytes) => {
            let text = String::from_utf8_lossy(&bytes);
            assert!(
                text.contains("AAAAAAAAAAA1"),
                "client sees instance 0's token"
            );
        }
        Verdict::Divergent(r) => panic!("token minting must not diverge: {r}"),
    }
    assert_eq!(engine.session().ephemeral.len(), 1);

    // Exchange 2 (request): the echo of the canonical token is rewritten
    // per instance, then deleted.
    let copies = engine
        .replicate_request(b"POST /submit?token=AAAAAAAAAAA1 HTTP/1.1\r\n\r\n")
        .unwrap();
    assert!(String::from_utf8_lossy(&copies[0]).contains("AAAAAAAAAAA1"));
    assert!(String::from_utf8_lossy(&copies[1]).contains("BBBBBBBBBBB2"));
    assert!(String::from_utf8_lossy(&copies[2]).contains("CCCCCCCCCCC3"));
    assert!(engine.session().ephemeral.is_empty(), "consumed tokens die");

    // Exchange 2 (responses): identical accepts are unanimous.
    let ok = http_page("na", "accepted");
    let verdict = engine
        .evaluate_responses(&[ok.clone(), ok.clone(), ok])
        .unwrap();
    assert!(matches!(verdict, Verdict::Unanimous(_)));
    assert_eq!(engine.metrics().tokens_captured, 1);
    assert_eq!(engine.metrics().tokens_substituted, 3);
}

#[test]
fn variance_and_filter_pair_layers_compose() {
    // Filter pair masks a session id; a variance rule covers a version
    // banner; a real divergence elsewhere must still be caught.
    let mut rules = VarianceRules::new();
    rules.push(VarianceRule::new("line", "version *").unwrap());
    let config = EngineConfig::builder(3)
        .filter_pair(0, 1)
        .variance(rules)
        .build()
        .unwrap();
    let mut engine = NVersionEngine::new(config, LineProtocol::new());

    let page = |sid: &str, version: &str, row: &str| {
        format!("sid={sid}\nversion {version}\n{row}\n").into_bytes()
    };
    // Benign: session ids noisy (pair differs), versions differ (variance),
    // data row identical.
    let verdict = engine
        .evaluate_responses(&[
            page("aaa111", "1.0", "row=42"),
            page("bbb222", "1.0", "row=42"),
            page("ccc333", "2.0", "row=42"),
        ])
        .unwrap();
    assert!(matches!(verdict, Verdict::Unanimous(_)), "{verdict:?}");

    // Malicious: the data row diverges on the diverse instance.
    let verdict = engine
        .evaluate_responses(&[
            page("ddd444", "1.0", "row=42"),
            page("eee555", "1.0", "row=42"),
            page("fff666", "2.0", "row=42 LEAKED-COLUMN"),
        ])
        .unwrap();
    match verdict {
        Verdict::Divergent(report) => {
            assert_eq!(report.implicated_instances(), vec![2]);
        }
        Verdict::Unanimous(_) => panic!("masking layers must not hide real leaks"),
    }
}

#[test]
fn long_session_metrics_are_exact() {
    let mut engine = NVersionEngine::new(
        EngineConfig::builder(2).build().unwrap(),
        LineProtocol::new(),
    );
    let mut expected_divergences = 0;
    for i in 0..200 {
        let a = format!("value {i}\n").into_bytes();
        let b = if i % 7 == 0 {
            expected_divergences += 1;
            format!("value {i} tampered\n").into_bytes()
        } else {
            a.clone()
        };
        engine.evaluate_responses(&[a, b]).unwrap();
    }
    let m = engine.metrics();
    assert_eq!(m.exchanges, 200);
    assert_eq!(m.divergences, expected_divergences);
}

#[test]
fn majority_vote_keeps_sessions_alive_through_faults() {
    let mut engine = NVersionEngine::new(
        EngineConfig::builder(3)
            .policy(ResponsePolicy::MajorityVote)
            .build()
            .unwrap(),
        LineProtocol::new(),
    );
    // Instance 1 garbles every response; the majority still answers, and
    // the forwarded bytes always come from the agreeing group.
    for i in 0..50 {
        let good = format!("ok {i}\n").into_bytes();
        for (idx, response) in [
            good.clone(),
            format!("GARBAGE {i}\n").into_bytes(),
            good.clone(),
        ]
        .iter()
        .enumerate()
        {
            engine.push_response(idx, response).unwrap();
        }
        let outcome = engine.finish_exchange().unwrap();
        assert_eq!(outcome.forward.as_deref(), Some(good.as_slice()));
    }
    assert_eq!(engine.metrics().divergences, 50);
}
