use std::fmt;

use crate::report::MitigationReport;

/// An OWASP Top-10 (2021) category number with its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwaspCategory(pub u8, pub &'static str);

impl fmt::Display for OwaspCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{:02}", self.0)
    }
}

/// OWASP A01: Broken Access Control.
pub const A01_BROKEN_ACCESS: OwaspCategory = OwaspCategory(1, "Broken Access Control");
/// OWASP A02: Cryptographic Failures.
pub const A02_CRYPTO: OwaspCategory = OwaspCategory(2, "Cryptographic Failures");
/// OWASP A03: Injection.
pub const A03_INJECTION: OwaspCategory = OwaspCategory(3, "Injection");
/// OWASP A04: Insecure Design.
pub const A04_INSECURE_DESIGN: OwaspCategory = OwaspCategory(4, "Insecure Design");
/// OWASP A05: Security Misconfiguration.
pub const A05_MISCONFIG: OwaspCategory = OwaspCategory(5, "Security Misconfiguration");

/// The diversity source a scenario exercises (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiversitySource {
    /// Independent implementations of the same interface (e.g. Postgres +
    /// CockroachDB, HAProxy + nginx).
    IndependentImplementations,
    /// Different versions of the same codebase (e.g. 10.7 vs 10.9).
    VersionNumbers,
    /// Compatible libraries behind identical APIs.
    CompatibleLibraries,
    /// A library written in a different language.
    LibraryInDifferentLanguage,
    /// OS-generated diversity (ASLR).
    RandomMemoryLayout,
    /// Mixed application configurations (the DVWA security levels).
    MultiProgramming,
}

impl DiversitySource {
    /// Table I's wording for this source.
    pub fn describe(&self) -> &'static str {
        match self {
            DiversitySource::IndependentImplementations => "Identical API, different program",
            DiversitySource::VersionNumbers => "Version number",
            DiversitySource::CompatibleLibraries => "Compatible libraries",
            DiversitySource::LibraryInDifferentLanguage => "Library in different language",
            DiversitySource::RandomMemoryLayout => "Random memory layout",
            DiversitySource::MultiProgramming => "Multi-programming",
        }
    }
}

/// One row of Table I: the metadata plus the runnable scenario.
pub struct TableRow {
    /// CVE identifier, or an unofficial name for the last two rows.
    pub cve: &'static str,
    /// The protected microservice/program.
    pub target: &'static str,
    /// The exploit description from the paper.
    pub exploit: &'static str,
    /// CWE number(s) as printed in the table.
    pub cwe: &'static str,
    /// OWASP category (`None` for the table's "N/A" rows).
    pub owasp: Option<OwaspCategory>,
    /// Diversity source.
    pub diversity: DiversitySource,
    /// Runs the deployment + benign probe + exploit.
    pub run: fn() -> MitigationReport,
}

impl fmt::Debug for TableRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TableRow")
            .field("cve", &self.cve)
            .field("target", &self.target)
            .finish()
    }
}

/// The ten rows of Table I, in the paper's order.
pub static TABLE_I: &[TableRow] = &[
    TableRow {
        cve: "CVE-2017-7484",
        target: "PostgreSQL",
        exploit: "Exposure of sensitive information to an unauthorized actor",
        cwe: "200,285",
        owasp: Some(A01_BROKEN_ACCESS),
        diversity: DiversitySource::IndependentImplementations,
        run: crate::scenarios::pg_7484::run,
    },
    TableRow {
        cve: "CVE-2017-7529",
        target: "Nginx",
        exploit: "Integer overflow",
        cwe: "190",
        owasp: None,
        diversity: DiversitySource::VersionNumbers,
        run: crate::scenarios::nginx_7529::run,
    },
    TableRow {
        cve: "CVE-2019-10130",
        target: "PostgreSQL",
        exploit: "Improper access control",
        cwe: "284",
        owasp: Some(A01_BROKEN_ACCESS),
        diversity: DiversitySource::VersionNumbers,
        run: crate::scenarios::pg_10130::run,
    },
    TableRow {
        cve: "CVE-2019-18277",
        target: "HAProxy",
        exploit: "HTTP Request Smuggling",
        cwe: "444",
        owasp: Some(A04_INSECURE_DESIGN),
        diversity: DiversitySource::IndependentImplementations,
        run: crate::scenarios::haproxy_18277::run,
    },
    TableRow {
        cve: "CVE-2014-3146",
        target: "lxml lib/RESTful",
        exploit: "Cross site scripting",
        cwe: "Other",
        owasp: Some(A03_INJECTION),
        diversity: DiversitySource::LibraryInDifferentLanguage,
        run: crate::scenarios::lxml_3146::run,
    },
    TableRow {
        cve: "CVE-2020-10799",
        target: "svglib lib/RESTful",
        exploit: "Improper restriction of XML external entity reference",
        cwe: "611",
        owasp: Some(A05_MISCONFIG),
        diversity: DiversitySource::CompatibleLibraries,
        run: crate::scenarios::svg_10799::run,
    },
    TableRow {
        cve: "CVE-2020-13757",
        target: "rsa lib/RESTful",
        exploit: "Use of risky crypto",
        cwe: "327",
        owasp: Some(A02_CRYPTO),
        diversity: DiversitySource::CompatibleLibraries,
        run: crate::scenarios::rsa_13757::run,
    },
    TableRow {
        cve: "CVE-2020-11888",
        target: "markdown2 lib/RESTful",
        exploit: "Cross site scripting",
        cwe: "79",
        owasp: Some(A03_INJECTION),
        diversity: DiversitySource::CompatibleLibraries,
        run: crate::scenarios::markdown_11888::run,
    },
    TableRow {
        cve: "DVWA-SQLI",
        target: "DVWA",
        exploit: "SQL injection",
        cwe: "89*",
        owasp: Some(A03_INJECTION),
        diversity: DiversitySource::MultiProgramming,
        run: crate::scenarios::dvwa_sqli::run,
    },
    TableRow {
        cve: "ASLR-POC",
        target: "ASLR POC",
        exploit: "Heap overflow",
        cwe: "122*",
        owasp: None,
        diversity: DiversitySource::RandomMemoryLayout,
        run: crate::scenarios::aslr_poc::run,
    },
];
