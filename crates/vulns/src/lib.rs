//! The Table I vulnerability-mitigation scenarios.
//!
//! The paper's headline result (Table I) is a matrix of ten real-world
//! vulnerabilities, each mitigated by deploying diversity behind RDDR:
//!
//! | # | CVE | service | diversity |
//! |---|-----|---------|-----------|
//! | 1 | CVE-2017-7484 | PostgreSQL | identical API, different program (Postgres + CockroachDB) |
//! | 2 | CVE-2017-7529 | nginx | version number (1.13.2 vs 1.13.4) |
//! | 3 | CVE-2019-10130 | PostgreSQL | version number (10.7 vs 10.9, inside GitLab) |
//! | 4 | CVE-2019-18277 | HAProxy | multi-program (HAProxy vs nginx) |
//! | 5 | CVE-2014-3146 | lxml / RESTful | library in a different language |
//! | 6 | CVE-2020-10799 | svglib / RESTful | compatible libraries |
//! | 7 | CVE-2020-13757 | rsa / RESTful | compatible libraries |
//! | 8 | CVE-2020-11888 | markdown2 / RESTful | compatible libraries |
//! | 9 | (unofficial) | DVWA SQL injection | multi-programming |
//! | 10 | (unofficial) | ASLR POC | random memory layout |
//!
//! Each scenario in [`scenarios`] builds the full deployment on a
//! simulated cluster (instances + RDDR proxies), sends **benign traffic
//! first** (it must pass unmodified), then fires the exploit (the leak
//! must never reach the client), and returns a [`MitigationReport`].
//! [`run_all`] regenerates the whole table.

pub mod catalog;
pub mod report;
pub mod scenarios;

pub use catalog::{DiversitySource, OwaspCategory, TableRow, TABLE_I};
pub use report::MitigationReport;

/// Runs every Table I scenario, returning `(row, report)` pairs in table
/// order.
pub fn run_all() -> Vec<(&'static TableRow, MitigationReport)> {
    TABLE_I.iter().map(|row| (row, (row.run)())).collect()
}

/// Renders the mitigation matrix as the paper's Table I (plus outcome
/// columns measured by this reproduction).
pub fn render_table(results: &[(&TableRow, MitigationReport)]) -> String {
    let mut out = String::new();
    out.push_str(
        "CVE             Microservice/program    CWE    OWASP  Diversity                          Benign  Mitigated\n",
    );
    out.push_str(
        "--------------- ----------------------- ------ ------ ---------------------------------- ------- ---------\n",
    );
    for (row, report) in results {
        out.push_str(&format!(
            "{:<15} {:<23} {:<6} {:<6} {:<34} {:<7} {}\n",
            row.cve,
            row.target,
            row.cwe,
            row.owasp
                .map(|o| o.to_string())
                .unwrap_or_else(|| "N/A".into()),
            row.diversity.describe(),
            if report.benign_ok { "pass" } else { "FAIL" },
            if report.mitigated() { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_ten_rows() {
        assert_eq!(TABLE_I.len(), 10);
    }

    #[test]
    fn table_covers_five_owasp_categories() {
        let mut categories: Vec<u8> = TABLE_I
            .iter()
            .filter_map(|r| r.owasp.map(|o| o.0))
            .collect();
        categories.sort_unstable();
        categories.dedup();
        assert_eq!(categories, vec![1, 2, 3, 4, 5], "top five OWASP classes");
    }
}
