//! Table I row 7 — CVE-2020-13757: risky RSA decryption in `python-rsa`,
//! mitigated by pairing it with a strict `Crypto` implementation (§V-A).

use std::sync::Arc;

use rddr_httpsim::rest::{decrypt_service, hex_encode};
use rddr_libsim::{craft_forged_ciphertext, CryptoLib, RsaKeyPair, RsaLib};

use crate::report::MitigationReport;
use crate::scenarios::restful::run_rest_pair;

/// Runs the scenario.
pub fn run() -> MitigationReport {
    let key = RsaKeyPair::demo();
    let benign_ct = key
        .encrypt(b"ok!")
        .expect("fits the toy modulus")
        .to_string();
    let forged_ct = craft_forged_ciphertext(&key).to_string();
    let forged_plain_hex = hex_encode(b"pw");
    let benign_ct: &'static str = Box::leak(benign_ct.into_boxed_str());
    let forged_ct: &'static str = Box::leak(forged_ct.into_boxed_str());
    let forged_plain_hex: &'static str = Box::leak(forged_plain_hex.into_boxed_str());
    run_rest_pair(
        "CVE-2020-13757",
        [
            (
                "rsa-lib",
                Arc::new(decrypt_service(Arc::new(RsaLib::new()), key)),
            ),
            (
                "crypto-lib",
                Arc::new(decrypt_service(Arc::new(CryptoLib::new()), key)),
            ),
        ],
        ("/decrypt", benign_ct),
        ("/decrypt", forged_ct),
        &[forged_plain_hex],
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2020_13757_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
