//! Shared driver for the four RESTful library-diversity rows (§V-A):
//! deploy two wrapper instances with diverse libraries behind an incoming
//! proxy, check a benign call passes, fire the exploit call, and verify the
//! divergence severs before any leak marker reaches the client.

use std::sync::Arc;

use rddr_httpsim::HttpClient;
use rddr_net::ServiceAddr;
use rddr_orchestra::{Image, Service};
use rddr_proxy::IncomingProxy;

use crate::report::MitigationReport;
use crate::scenarios::{config, http, scenario_cluster};

/// Drives one RESTful pair scenario.
///
/// * `services` — the two diverse instances (vulnerable first, like the
///   paper's deployments).
/// * `benign` — `(path, body)` that must return identical 200s.
/// * `exploit` — `(path, body)` whose responses diverge.
/// * `leak_markers` — substrings that must never reach the client.
pub(crate) fn run_rest_pair(
    id: &str,
    services: [(&str, Arc<dyn Service>); 2],
    benign: (&str, &str),
    exploit: (&str, &str),
    leak_markers: &[&str],
) -> MitigationReport {
    let mut report = MitigationReport::new(id);
    let cluster = scenario_cluster();
    let mut handles = Vec::new();
    for (i, (image, svc)) in services.into_iter().enumerate() {
        handles.push(
            cluster
                .run_container(
                    format!("rest-{i}"),
                    Image::new(image, "v1"),
                    &ServiceAddr::new("rest", 8000 + i as u16),
                    svc,
                )
                .expect("scenario containers start"),
        );
    }
    let proxy_addr = ServiceAddr::new("rddr-rest", 80);
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &proxy_addr,
        vec![
            ServiceAddr::new("rest", 8000),
            ServiceAddr::new("rest", 8001),
        ],
        config(2).build().expect("static config"),
        http(),
    )
    .expect("proxy starts");
    let net = cluster.net();

    // Benign call must pass through with a 200.
    report.benign_ok = (|| {
        let mut client = HttpClient::connect(&net, &proxy_addr).ok()?;
        let resp = client.post(benign.0, benign.1).ok()?;
        (resp.status == 200).then(|| {
            report.note(format!("benign response: {} bytes", resp.body.len()));
        })
    })()
    .is_some();

    // Exploit call must be severed (or answered with the intervention page)
    // with no leak marker in whatever the client received.
    match HttpClient::connect(&net, &proxy_addr) {
        Err(e) => report.note(format!("attacker connect failed: {e}")),
        Ok(mut client) => match client.post(exploit.0, exploit.1) {
            Err(_) => {
                report.exploit_blocked = true;
                report.note("connection severed on divergent response");
            }
            Ok(resp) => {
                report.exploit_blocked = resp.status == 403;
                let text = resp.body_text();
                for marker in leak_markers {
                    if text.contains(marker) {
                        report.leak_reached_client = true;
                        report.note(format!("leak marker {marker:?} reached the client"));
                    }
                }
            }
        },
    }
    report
}
