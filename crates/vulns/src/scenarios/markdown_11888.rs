//! Table I row 8 — CVE-2020-11888: XSS through `markdown2`, mitigated by
//! pairing it with the `markdown` renderer (§V-A).

use std::sync::Arc;

use rddr_httpsim::rest::render_service;
use rddr_libsim::{Markdown2, MarkdownSafe};

use crate::report::MitigationReport;
use crate::scenarios::restful::run_rest_pair;

/// Runs the scenario.
pub fn run() -> MitigationReport {
    run_rest_pair(
        "CVE-2020-11888",
        [
            (
                "markdown2",
                Arc::new(render_service(Arc::new(Markdown2::new()))),
            ),
            (
                "markdown",
                Arc::new(render_service(Arc::new(MarkdownSafe::new()))),
            ),
        ],
        (
            "/render",
            "# Post\n\nA **benign** [link](https://example.com).",
        ),
        ("/render", "[click me](java\tscript:alert(document.cookie))"),
        &["script:alert"],
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2020_11888_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
