//! Table I row 10 — the ASLR proof of concept (§V-E): two instances of the
//! same echo-server binary, diversified only by the OS's address-space
//! randomization. The overflow's pointer leak differs per instance, so the
//! Diff phase catches it.

use std::sync::Arc;

use rddr_httpsim::rest::AslrEchoService;
use rddr_libsim::aslr::BUFFER_SIZE;
use rddr_net::{Network, ServiceAddr, Stream};
use rddr_orchestra::Image;
use rddr_proxy::IncomingProxy;

use crate::report::MitigationReport;
use crate::scenarios::{config, line, scenario_cluster};

fn read_line(conn: &mut rddr_net::BoxStream) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match conn.read(&mut byte) {
            Ok(0) | Err(_) => return if out.is_empty() { None } else { Some(out) },
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Some(out);
                }
                out.push(byte[0]);
            }
        }
    }
}

/// Runs the scenario.
pub fn run() -> MitigationReport {
    let mut report = MitigationReport::new("ASLR-POC");
    let cluster = scenario_cluster();
    // "When two instances of the same binary with ASLR are N-versioned,
    // each has a unique address space." Seeds model the kernel's entropy.
    let mut handles = Vec::new();
    for (i, seed) in [0x0051_eed1_u64, 0x0051_eed2].into_iter().enumerate() {
        handles.push(
            cluster
                .run_container(
                    format!("echo-{i}"),
                    Image::new("echo-poc", "v1"),
                    &ServiceAddr::new("echo", 7000 + i as u16),
                    Arc::new(AslrEchoService::launch(seed)),
                )
                .expect("scenario containers start"),
        );
    }
    let proxy_addr = ServiceAddr::new("rddr-echo", 7);
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &proxy_addr,
        vec![
            ServiceAddr::new("echo", 7000),
            ServiceAddr::new("echo", 7001),
        ],
        config(2).build().expect("static config"),
        line(),
    )
    .expect("proxy starts");
    let net = cluster.net();

    // Benign echo.
    report.benign_ok = (|| {
        let mut conn = net.dial(&proxy_addr).ok()?;
        conn.write_all(b"hello aslr\n").ok()?;
        (read_line(&mut conn)? == b"hello aslr").then_some(())
    })()
    .is_some();

    // Exploit step (1): overflow to leak a pointer.
    match net.dial(&proxy_addr) {
        Err(e) => report.note(format!("attacker connect failed: {e}")),
        Ok(mut conn) => {
            let mut payload = vec![b'A'; BUFFER_SIZE + 8];
            payload.push(b'\n');
            if conn.write_all(&payload).is_err() {
                report.exploit_blocked = true;
            } else {
                match read_line(&mut conn) {
                    None => {
                        report.exploit_blocked = true;
                        report.note("connection severed before the pointer leak");
                    }
                    Some(reply) => {
                        let text = String::from_utf8_lossy(&reply);
                        let tail = &text[text.len().saturating_sub(16)..];
                        if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) {
                            report.leak_reached_client = true;
                            report.note(format!("pointer {tail} reached the attacker"));
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn aslr_poc_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
