//! Table I row 3 — CVE-2019-10130: Postgres row-level-security bypass,
//! mitigated with version diversity inside the GitLab composite (§V-F2,
//! Figure 3: two 10.7 instances as the filter pair, one fixed 10.9).

use std::sync::Arc;

use rddr_httpsim::framework::url_encode;
use rddr_httpsim::gitlab::{deploy_gitlab, seed_gitlab_schema};
use rddr_httpsim::HttpClient;
use rddr_net::ServiceAddr;
use rddr_orchestra::Image;
use rddr_pgsim::{Database, PgServer, PgVersion};
use rddr_proxy::IncomingProxy;

use crate::report::MitigationReport;
use crate::scenarios::{config, pg, scenario_cluster};

/// Runs the scenario.
pub fn run() -> MitigationReport {
    let mut report = MitigationReport::new("CVE-2019-10130");
    let cluster = scenario_cluster();
    let mut handles = Vec::new();

    // "We compose the N-versioned Postgres deployment from three instances
    // of Postgres, two at version 10.7 (buggy filter pair) and a third at
    // version 10.9 (fixed)."
    for (i, version) in ["10.7", "10.7", "10.9"].iter().enumerate() {
        let mut db = Database::new(PgVersion::parse(version).expect("static version"));
        seed_gitlab_schema(&mut db).expect("schema seeds");
        handles.push(
            cluster
                .run_container(
                    format!("gitlab-postgres-{i}"),
                    Image::new("postgres", *version),
                    &ServiceAddr::new("pg", 5432 + i as u16),
                    Arc::new(PgServer::new(db)),
                )
                .expect("scenario containers start"),
        );
    }
    let proxy_addr = ServiceAddr::new("gitlab-postgres", 5432);
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &proxy_addr,
        (0..3).map(|i| ServiceAddr::new("pg", 5432 + i)).collect(),
        config(3).filter_pair(0, 1).build().expect("static config"),
        pg(),
    )
    .expect("proxy starts");

    // GitLab itself talks to Postgres only through RDDR's incoming proxy.
    let gitlab = deploy_gitlab(&cluster, proxy_addr).expect("gitlab deploys");
    let net = cluster.net();

    // ---- benign traffic: "users can log in, create projects, view projects" --
    report.benign_ok = (|| {
        let mut client = HttpClient::connect(&net, &gitlab.addrs.workhorse).ok()?;
        let page = client.get("/users/sign_in").ok()?;
        let token = page
            .body_text()
            .split("value=\"")
            .nth(1)?
            .split('"')
            .next()?
            .to_string();
        let welcome = client
            .post(
                "/users/sign_in",
                &format!("user=dev&password=pw&authenticity_token={token}"),
            )
            .ok()?;
        if !welcome.body_text().contains("Welcome, dev!") {
            return None;
        }
        if client.post("/projects", "name=rddr-demo").ok()?.status != 201 {
            return None;
        }
        let list = client.get("/projects").ok()?;
        (list.status == 200
            && list.body_text().contains("gitlab-ce")
            && list.body_text().contains("rddr-demo"))
        .then_some(())
    })()
    .is_some();

    // ---- exploit (Listing 2), via the assumed frontend SQL injection --------
    let statements = [
        "CREATE FUNCTION op_leak(int, int) RETURNS bool \
         AS 'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' \
         LANGUAGE plpgsql",
        "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, \
         restrict=scalarltsel)",
        "SELECT * FROM user_secrets WHERE secret_level <<< 1000",
    ];
    let mut blocked = false;
    let mut leaked = false;
    for (step, sql) in statements.iter().enumerate() {
        let Ok(mut attacker) = HttpClient::connect(&net, &gitlab.addrs.workhorse) else {
            break;
        };
        attacker.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        match attacker.get(&format!("/api/v4/sql?q={}", url_encode(sql))) {
            Err(_) => {
                blocked = true;
                report.note(format!("severed at exploit step {}", step + 1));
                break;
            }
            Ok(resp) => {
                let text = resp.body_text();
                if text.contains("ROOT-ADMIN") || text.contains("AKIA99") {
                    leaked = true;
                    report.note("protected row contents reached the attacker");
                }
                if resp.status == 500 && text.contains("severed") {
                    blocked = true;
                    report.note(format!(
                        "backend connection severed at step {} (RDDR intervened)",
                        step + 1
                    ));
                    break;
                }
            }
        }
    }
    report.exploit_blocked = blocked;
    report.leak_reached_client = leaked;

    // "All benign GitLab functions remain fully operational" — verify again
    // after the attack.
    if report.benign_ok {
        let still_ok = (|| {
            let mut client = HttpClient::connect(&net, &gitlab.addrs.workhorse).ok()?;
            let list = client.get("/projects").ok()?;
            (list.status == 200 && list.body_text().contains("gitlab-ce")).then_some(())
        })()
        .is_some();
        if !still_ok {
            report.benign_ok = false;
            report.note("benign traffic broken after the attack");
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2019_10130_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
