//! Table I row 2 — CVE-2017-7529: nginx range-filter integer overflow,
//! mitigated with version diversity (1.13.2 filter pair + 1.13.4, §V-D).

use std::sync::Arc;

use rddr_httpsim::{HttpClient, NginxSim, NginxVersion};
use rddr_net::ServiceAddr;
use rddr_orchestra::Image;
use rddr_proxy::IncomingProxy;

use crate::report::MitigationReport;
use crate::scenarios::{config, http, scenario_cluster, server_banner_variance};

/// The paper's crafted header: a suffix range whose size calculation
/// overflows the 1.13.2 bounds check.
pub const OVERFLOW_RANGE: &str = "bytes=-9223372036854775608";

/// Runs the scenario.
pub fn run() -> MitigationReport {
    let mut report = MitigationReport::new("CVE-2017-7529");
    let cluster = scenario_cluster();
    let mut handles = Vec::new();

    // Filter pair on 1.13.2, third instance on the patched 1.13.4 —
    // "the two instances comprising the filter pair running version 1.13.2,
    // and the third instance running 1.13.4 which is not vulnerable".
    for (i, version) in ["1.13.2", "1.13.2", "1.13.4"].iter().enumerate() {
        let server = NginxSim::file_server(NginxVersion::parse(version));
        server.publish(
            "/index.html",
            b"<html>hello world</html>".to_vec(),
            format!("CACHE-SECRET-{i}-other-clients-session").into_bytes(),
        );
        handles.push(
            cluster
                .run_container(
                    format!("nginx-{i}"),
                    Image::new("nginx", *version),
                    &ServiceAddr::new("nginx", 8000 + i as u16),
                    Arc::new(server),
                )
                .expect("scenario containers start"),
        );
    }

    let proxy_addr = ServiceAddr::new("rddr-nginx", 80);
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &proxy_addr,
        (0..3)
            .map(|i| ServiceAddr::new("nginx", 8000 + i))
            .collect(),
        config(3)
            .filter_pair(0, 1)
            .variance(server_banner_variance())
            .build()
            .expect("static config"),
        http(),
    )
    .expect("proxy starts");
    let net = cluster.net();

    // ---- benign traffic: plain GET and a valid range -----------------------
    report.benign_ok = (|| {
        let mut client = HttpClient::connect(&net, &proxy_addr).ok()?;
        let full = client.get("/index.html").ok()?;
        if full.status != 200 || full.body != b"<html>hello world</html>" {
            return None;
        }
        let mut client = HttpClient::connect(&net, &proxy_addr).ok()?;
        client
            .send_raw(b"GET /index.html HTTP/1.1\r\nHost: n\r\nRange: bytes=0-5\r\n\r\n")
            .ok()?;
        let partial = client.read_response().ok()?;
        (partial.status == 206 && partial.body == b"<html>").then_some(())
    })()
    .is_some();

    // ---- exploit: the overflowing Range header ------------------------------
    let mut client = match HttpClient::connect(&net, &proxy_addr) {
        Ok(c) => c,
        Err(e) => {
            report.note(format!("attacker connect failed: {e}"));
            return report;
        }
    };
    let crafted = format!("GET /index.html HTTP/1.1\r\nHost: n\r\nRange: {OVERFLOW_RANGE}\r\n\r\n");
    if client.send_raw(crafted.as_bytes()).is_err() {
        report.exploit_blocked = true;
        return report;
    }
    match client.read_response() {
        Err(_) => {
            report.exploit_blocked = true;
            report.note("connection severed on divergent range response");
        }
        Ok(resp) => {
            // The intervention page itself counts as blocked.
            report.exploit_blocked = resp.status == 403;
            if resp.body_text().contains("CACHE-SECRET") {
                report.leak_reached_client = true;
                report.note("adjacent cache memory reached the client");
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2017_7529_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
