//! One module per Table I row, plus shared deployment helpers.

pub mod aslr_poc;
pub mod dvwa_sqli;
pub mod haproxy_18277;
pub mod lxml_3146;
pub mod markdown_11888;
pub mod nginx_7529;
pub mod pg_10130;
pub mod pg_7484;
pub(crate) mod restful;
pub mod rsa_13757;
pub mod svg_10799;

use std::sync::Arc;
use std::time::Duration;

use rddr_core::protocol::LineProtocol;
use rddr_core::{EngineConfig, VarianceRule, VarianceRules};
use rddr_orchestra::{Cluster, CpuGovernor};
use rddr_protocols::{HttpProtocol, PgProtocol};
use rddr_proxy::ProtocolFactory;

/// A small, fast cluster for scenario runs (simulated work at 1% speed).
pub(crate) fn scenario_cluster() -> Cluster {
    Cluster::with_governor(
        rddr_net::SimNet::new(),
        CpuGovernor::with_time_scale(8, 0.01),
    )
}

/// Protocol factories.
pub(crate) fn http() -> ProtocolFactory {
    Arc::new(|| Box::new(HttpProtocol::new()))
}

pub(crate) fn pg() -> ProtocolFactory {
    Arc::new(|| Box::new(PgProtocol::new()))
}

pub(crate) fn line() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

/// A base engine config with a scenario-friendly response deadline.
pub(crate) fn config(n: usize) -> rddr_core::EngineConfigBuilder {
    EngineConfig::builder(n).response_deadline(Duration::from_millis(1500))
}

/// The standard variance rule set for HTTP deployments that mix software
/// versions: ignore `Server:` banners (§IV-B4's "manual configuration …
/// to ignore application-specific benign divergence").
pub(crate) fn server_banner_variance() -> VarianceRules {
    let mut rules = VarianceRules::new();
    rules.push(VarianceRule::new("http:header:server", "*").expect("static patterns are valid"));
    rules
}
