//! Table I row 5 — CVE-2014-3146: XSS through `lxml.html.clean`, mitigated
//! by pairing it with Node.js `sanitize-html` — "a library in a different
//! language" (§V-A).

use std::sync::Arc;

use rddr_httpsim::rest::sanitize_service;
use rddr_libsim::{LxmlClean, SanitizeHtml};

use crate::report::MitigationReport;
use crate::scenarios::restful::run_rest_pair;

/// Runs the scenario.
pub fn run() -> MitigationReport {
    run_rest_pair(
        "CVE-2014-3146",
        [
            (
                "lxml",
                Arc::new(sanitize_service(Arc::new(LxmlClean::new()))),
            ),
            (
                "sanitize-html",
                Arc::new(sanitize_service(Arc::new(SanitizeHtml::new()))),
            ),
        ],
        (
            "/sanitize",
            "<p>user <b>content</b> with a <a href=\"https://x\">link</a></p>",
        ),
        (
            "/sanitize",
            "<a href=\"java\tscript:alert(document.cookie)\">pwn</a>",
        ),
        &["script:alert"],
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2014_3146_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
