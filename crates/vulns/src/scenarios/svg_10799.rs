//! Table I row 6 — CVE-2020-10799: XXE file disclosure through `svglib`,
//! mitigated by pairing it with `cairosvg` (§V-A).

use std::sync::Arc;

use rddr_httpsim::rest::{hex_encode, svg_service};
use rddr_libsim::{CairoSvg, SvgLib, VirtualFs};

use crate::report::MitigationReport;
use crate::scenarios::restful::run_rest_pair;

/// Runs the scenario.
pub fn run() -> MitigationReport {
    // Leak markers: the secret both raw and as it would appear hex-encoded
    // inside the PNG byte dump.
    let hex_marker: &'static str = Box::leak(hex_encode(b"hunter2").into_boxed_str());
    run_rest_pair(
        "CVE-2020-10799",
        [
            (
                "svglib",
                Arc::new(svg_service(
                    Arc::new(SvgLib::new()),
                    VirtualFs::with_defaults(),
                )),
            ),
            (
                "cairosvg",
                Arc::new(svg_service(
                    Arc::new(CairoSvg::new()),
                    VirtualFs::with_defaults(),
                )),
            ),
        ],
        (
            "/convert",
            r#"<svg width="24" height="24"><rect x="2" y="2" width="8" height="8"/></svg>"#,
        ),
        (
            "/convert",
            "<!DOCTYPE svg [<!ENTITY xxe SYSTEM \"file:///app/secrets.env\">]>\
             <svg><text>&xxe;</text></svg>",
        ),
        &["hunter2", hex_marker],
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2020_10799_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
