//! Table I row 1 — CVE-2017-7484: Postgres information leak through
//! selectivity estimation, mitigated by deploying CockroachDB as a diverse
//! implementation (§V-C2).

use std::sync::Arc;

use rddr_net::{Network, ServiceAddr};
use rddr_orchestra::Image;
use rddr_pgsim::{CockroachFlavor, Database, DbFlavor, PgClient, PgServer, PgVersion};
use rddr_proxy::IncomingProxy;

use crate::report::MitigationReport;
use crate::scenarios::{config, pg, scenario_cluster};

fn seed(db: &mut Database) {
    let mut session = db.session("app");
    for sql in [
        "CREATE TABLE some_table (x INT, col_to_leak INT)",
        "INSERT INTO some_table VALUES (1, 7001), (2, 7002), (3, 7003)",
        "CREATE TABLE public_info (msg TEXT)",
        "INSERT INTO public_info VALUES ('welcome'), ('hours: 9-5')",
        "GRANT SELECT ON public_info TO MALLORY",
    ] {
        db.execute(&mut session, sql).expect("seed SQL is valid");
    }
}

/// Runs the scenario.
pub fn run() -> MitigationReport {
    let mut report = MitigationReport::new("CVE-2017-7484");
    let cluster = scenario_cluster();
    let mut handles = Vec::new();

    // Two vulnerable Postgres 9.2.20 instances (the filter pair) plus one
    // CockroachDB — "two Postgres instances and one CockroachDB instance".
    for (i, flavor) in [
        ("postgres", DbFlavor::Postgres),
        ("postgres", DbFlavor::Postgres),
        ("cockroach", DbFlavor::Cockroach(CockroachFlavor::default())),
    ]
    .into_iter()
    .enumerate()
    {
        let mut db = Database::with_flavor(
            PgVersion::parse("9.2.20").expect("static version"),
            flavor.1,
        );
        seed(&mut db);
        handles.push(
            cluster
                .run_container(
                    format!("db-{i}"),
                    Image::new(flavor.0, "9.2.20"),
                    &ServiceAddr::new("db", 5432 + i as u16),
                    Arc::new(PgServer::new(db)),
                )
                .expect("scenario containers start"),
        );
    }

    let proxy_addr = ServiceAddr::new("rddr-db", 5432);
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &proxy_addr,
        (0..3).map(|i| ServiceAddr::new("db", 5432 + i)).collect(),
        config(3).filter_pair(0, 1).build().expect("static config"),
        pg(),
    )
    .expect("proxy starts");
    let net = cluster.net();

    // ---- benign traffic -----------------------------------------------------
    if let Ok(conn) = net.dial(&proxy_addr) {
        if let Ok(mut client) = PgClient::connect(conn, "mallory") {
            let benign = client.query("SELECT msg FROM public_info ORDER BY msg");
            report.benign_ok = matches!(
                &benign,
                Ok(r) if r.error.is_none() && r.rows.len() == 2
            );
            if !report.benign_ok {
                report.note(format!("benign query failed: {benign:?}"));
            }
        }
    }

    // ---- exploit (Listing 1) --------------------------------------------------
    let mut leaked = false;
    let mut blocked = false;
    if let Ok(conn) = net.dial(&proxy_addr) {
        if let Ok(mut attacker) = PgClient::connect(conn, "mallory") {
            // Step 1: the custom function. Postgres reports success,
            // CockroachDB errors — RDDR severs here, "the exploit fails at
            // the first step".
            let step1 = attacker.query(
                "CREATE FUNCTION leak2(integer,integer) RETURNS boolean \
                 AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; RETURN $1 > $2; END$$ \
                 LANGUAGE plpgsql immutable",
            );
            match step1 {
                Err(_) => {
                    blocked = true;
                    report.note("severed at CREATE FUNCTION (step 1), as in the paper");
                }
                Ok(r) => {
                    report.note(format!("step 1 unexpectedly passed: {r:?}"));
                    // Continue the attack to see whether the leak fires.
                    let _ = attacker.query(
                        "CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, \
                         rightarg=integer, restrict=scalargtsel)",
                    );
                    match attacker.query(
                        "EXPLAIN (COSTS OFF) SELECT x FROM some_table WHERE col_to_leak >>> 0",
                    ) {
                        Err(_) => blocked = true,
                        Ok(resp) => {
                            leaked = resp.notices.iter().any(|n| n.contains("700"));
                        }
                    }
                }
            }
        }
    }
    // If the attacker reconnects "and proceeds with subsequent steps of the
    // attack, the final EXPLAIN query which causes the leak is always
    // blocked".
    if let Ok(conn) = net.dial(&proxy_addr) {
        if let Ok(mut attacker) = PgClient::connect(conn, "mallory") {
            match attacker
                .query("EXPLAIN (COSTS OFF) SELECT x FROM some_table WHERE col_to_leak >>> 0")
            {
                Err(_) => report.note("reconnected EXPLAIN severed too"),
                Ok(resp) => {
                    if resp.notices.iter().any(|n| n.contains("700")) {
                        leaked = true;
                    }
                }
            }
        }
    }

    report.exploit_blocked = blocked;
    report.leak_reached_client = leaked;
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2017_7484_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
