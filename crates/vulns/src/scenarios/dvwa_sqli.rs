//! Table I row 9 — the DVWA SQL injection (§V-B): three frontend instances
//! at mixed sanitization levels over one shared backend database, with
//! RDDR's **outgoing** request proxy merging and verifying the instances'
//! queries, and its CSRF ephemeral-state handling keeping the login form
//! functional.

use std::sync::Arc;

use rddr_httpsim::dvwa::{seed_dvwa_schema, SQLI_PAYLOAD};
use rddr_httpsim::framework::url_encode;
use rddr_httpsim::{DvwaSim, HttpClient, SecurityLevel};
use rddr_net::ServiceAddr;
use rddr_orchestra::Image;
use rddr_pgsim::{Database, PgServer, PgVersion};
use rddr_proxy::{IncomingProxy, OutgoingProxy};

use crate::report::MitigationReport;
use crate::scenarios::{config, http, pg, scenario_cluster};

fn extract_token(html: &str) -> Option<String> {
    html.split("name=\"user_token\" value=\"")
        .nth(1)?
        .split('"')
        .next()
        .map(str::to_string)
}

/// Runs the scenario.
pub fn run() -> MitigationReport {
    let mut report = MitigationReport::new("DVWA-SQLI");
    let cluster = scenario_cluster();

    // The single shared backend database ("we modified DVWA slightly to use
    // an external database").
    let mut db = Database::new(PgVersion::parse("10.9").expect("static version"));
    seed_dvwa_schema(&mut db).expect("schema seeds");
    let mut handles = Vec::new();
    handles.push(
        cluster
            .run_container(
                "dvwa-db-0",
                Image::new("postgres", "10.9"),
                &ServiceAddr::new("db", 5432),
                Arc::new(PgServer::new(db)),
            )
            .expect("backend starts"),
    );

    // The outgoing request proxy between the N frontends and the backend.
    let outgoing_addr = ServiceAddr::new("rddr-out", 5432);
    let _outgoing = OutgoingProxy::start(
        Arc::new(cluster.net()),
        &outgoing_addr,
        ServiceAddr::new("db", 5432),
        config(3).build().expect("static config"),
        pg(),
    )
    .expect("outgoing proxy starts");

    // Three DVWA frontends: "one instance was configured for high input
    // sanitization, and the other two instances, forming the filter pair,
    // performed no input sanitization".
    for (i, (level, seed)) in [
        (SecurityLevel::Low, 0xd0_01u64),
        (SecurityLevel::Low, 0xd0_02),
        (SecurityLevel::High, 0xd0_03),
    ]
    .into_iter()
    .enumerate()
    {
        handles.push(
            cluster
                .run_container(
                    format!("dvwa-{i}"),
                    Image::new("dvwa", "v1"),
                    &ServiceAddr::new("dvwa", 8000 + i as u16),
                    Arc::new(DvwaSim::new(level, outgoing_addr.clone(), seed)),
                )
                .expect("frontends start"),
        );
    }

    // The incoming request proxy in front of the frontends, with the filter
    // pair on the two unsanitized instances.
    let incoming_addr = ServiceAddr::new("rddr-dvwa", 80);
    let _incoming = IncomingProxy::start(
        Arc::new(cluster.net()),
        &incoming_addr,
        (0..3).map(|i| ServiceAddr::new("dvwa", 8000 + i)).collect(),
        config(3).filter_pair(0, 1).build().expect("static config"),
        http(),
    )
    .expect("incoming proxy starts");
    let net = cluster.net();

    // ---- benign traffic: fetch the form (CSRF capture) and look up a user --
    report.benign_ok = (|| {
        let mut client = HttpClient::connect(&net, &incoming_addr).ok()?;
        let page = client.get("/vuln/sqli").ok()?;
        let token = extract_token(&page.body_text())?;
        report.note(format!("CSRF token forwarded to client: {token}"));
        let result = client
            .get(&format!("/vuln/sqli/run?id=3&user_token={token}"))
            .ok()?;
        (result.status == 200
            && result.body_text().contains("First name: Hack")
            && !result.body_text().contains("Gordon"))
        .then_some(())
    })()
    .is_some();

    // ---- exploit: the classic `' OR '1'='1` ----------------------------------
    match HttpClient::connect(&net, &incoming_addr) {
        Err(e) => report.note(format!("attacker connect failed: {e}")),
        Ok(mut client) => {
            let outcome = (|| {
                let page = client.get("/vuln/sqli").ok()?;
                let token = extract_token(&page.body_text())?;
                client
                    .get(&format!(
                        "/vuln/sqli/run?id={}&user_token={token}",
                        url_encode(SQLI_PAYLOAD)
                    ))
                    .ok()
            })();
            match outcome {
                None => {
                    report.exploit_blocked = true;
                    report.note("connection severed during the injection attempt");
                }
                Some(resp) => {
                    let text = resp.body_text();
                    // A successful injection dumps every user; the paper's
                    // mitigation leaves the attacker with an error page.
                    let dumped = ["Gordon", "Pablo", "admin"]
                        .iter()
                        .filter(|name| text.contains(**name))
                        .count();
                    if dumped >= 2 {
                        report.leak_reached_client = true;
                        report.note("full table dump reached the attacker");
                    } else {
                        report.exploit_blocked = true;
                        report.note(format!(
                            "injection answered with status {} and no row dump",
                            resp.status
                        ));
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn dvwa_sql_injection_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
