//! Table I row 4 — CVE-2019-18277: HTTP request smuggling through HAProxy
//! 1.5.3, mitigated by "using nginx as a diverse implementation of a
//! reverse proxy" (§V-C1).

use std::sync::Arc;

use rddr_httpsim::haproxy::{smuggling_payload, smuggling_target_service};
use rddr_httpsim::{HaproxySim, HttpClient, NginxSim, NginxVersion};
use rddr_net::ServiceAddr;
use rddr_orchestra::Image;
use rddr_proxy::IncomingProxy;

use crate::report::MitigationReport;
use crate::scenarios::{config, http, scenario_cluster, server_banner_variance};

/// Runs the scenario.
pub fn run() -> MitigationReport {
    let mut report = MitigationReport::new("CVE-2019-18277");
    let cluster = scenario_cluster();

    // The protected service S1, one replica per proxy instance. Its
    // /internal route "should not be invoked directly from outside the
    // deployment"; both proxies are "configured to deny the API call".
    let mut handles = Vec::new();
    for i in 0..2u16 {
        handles.push(
            cluster
                .run_container(
                    format!("s1-{i}"),
                    Image::new("s1", "v1"),
                    &ServiceAddr::new("s1", 9100 + i),
                    Arc::new(smuggling_target_service()),
                )
                .expect("scenario containers start"),
        );
    }
    handles.push(
        cluster
            .run_container(
                "haproxy-0",
                Image::new("haproxy", "1.5.3"),
                &ServiceAddr::new("proxy", 8080),
                Arc::new(HaproxySim::new(ServiceAddr::new("s1", 9100))),
            )
            .expect("haproxy starts"),
    );
    handles.push(
        cluster
            .run_container(
                "nginx-proxy-0",
                Image::new("nginx", "1.13.4"),
                &ServiceAddr::new("proxy", 8081),
                Arc::new(NginxSim::reverse_proxy(
                    NginxVersion::parse("1.13.4"),
                    ServiceAddr::new("s1", 9101),
                )),
            )
            .expect("nginx starts"),
    );

    let proxy_addr = ServiceAddr::new("rddr-proxy", 80);
    let _proxy = IncomingProxy::start(
        Arc::new(cluster.net()),
        &proxy_addr,
        vec![
            ServiceAddr::new("proxy", 8080),
            ServiceAddr::new("proxy", 8081),
        ],
        config(2)
            .variance(server_banner_variance())
            .build()
            .expect("static config"),
        http(),
    )
    .expect("proxy starts");
    let net = cluster.net();

    // ---- benign traffic: the public route, and the ACL itself ---------------
    report.benign_ok = (|| {
        let mut client = HttpClient::connect(&net, &proxy_addr).ok()?;
        let public = client.get("/public").ok()?;
        if public.status != 200 || public.body_text() != "public ok" {
            return None;
        }
        // A direct request for the denied route is 403 from both proxies.
        let mut client = HttpClient::connect(&net, &proxy_addr).ok()?;
        let denied = client.get("/internal/flush").ok()?;
        (denied.status == 403).then_some(())
    })()
    .is_some();

    // ---- exploit: the smuggling payload --------------------------------------
    match HttpClient::connect(&net, &proxy_addr) {
        Err(e) => report.note(format!("attacker connect failed: {e}")),
        Ok(mut client) => {
            if client.send_raw(&smuggling_payload()).is_err() {
                report.exploit_blocked = true;
            } else {
                // Drain whatever the attacker can get before the severance.
                let mut received = String::new();
                for _ in 0..3 {
                    match client.read_response() {
                        Ok(resp) => {
                            if resp.status == 403 {
                                report.exploit_blocked = true;
                            }
                            received.push_str(&resp.body_text());
                        }
                        Err(_) => {
                            report.exploit_blocked = true;
                            report.note("connection severed on divergent proxy responses");
                            break;
                        }
                    }
                }
                if received.contains("INTERNAL") {
                    report.leak_reached_client = true;
                    report.note("smuggled /internal response reached the attacker");
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn cve_2019_18277_is_mitigated() {
        let report = super::run();
        assert!(report.mitigated(), "{report}");
    }
}
