use std::fmt;

/// The measured outcome of one Table I scenario.
///
/// The paper's mitigation criterion (§IV-A): "a vulnerability is considered
/// mitigated if the information leak is detected and blocked" — while benign
/// traffic continues to flow.
#[derive(Debug, Clone, Default)]
pub struct MitigationReport {
    /// Scenario identifier (the CVE or unofficial name).
    pub id: String,
    /// Benign traffic passed through RDDR unmodified.
    pub benign_ok: bool,
    /// The exploit's effect was detected (connection severed or the
    /// divergent response suppressed).
    pub exploit_blocked: bool,
    /// Whether any leaked secret bytes reached the attacking client.
    pub leak_reached_client: bool,
    /// Free-form observations (what diverged, which phase caught it).
    pub notes: Vec<String>,
}

impl MitigationReport {
    /// Creates an empty report for a scenario.
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            ..Self::default()
        }
    }

    /// The paper's verdict: mitigated iff the leak was blocked and benign
    /// traffic still works.
    pub fn mitigated(&self) -> bool {
        self.benign_ok && self.exploit_blocked && !self.leak_reached_client
    }

    /// Records an observation.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl fmt::Display for MitigationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: benign={} blocked={} leaked={} => {}",
            self.id,
            self.benign_ok,
            self.exploit_blocked,
            self.leak_reached_client,
            if self.mitigated() {
                "MITIGATED"
            } else {
                "NOT MITIGATED"
            }
        )?;
        for n in &self.notes {
            writeln!(f, "  - {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigated_requires_all_three_conditions() {
        let mut r = MitigationReport::new("x");
        assert!(!r.mitigated());
        r.benign_ok = true;
        r.exploit_blocked = true;
        assert!(r.mitigated());
        r.leak_reached_client = true;
        assert!(!r.mitigated());
    }

    #[test]
    fn display_contains_verdict() {
        let mut r = MitigationReport::new("cve-x");
        r.benign_ok = true;
        r.exploit_blocked = true;
        r.note("divergence at response diff");
        let text = r.to_string();
        assert!(text.contains("MITIGATED"));
        assert!(text.contains("divergence at response diff"));
    }
}
