//! Seeded divergence-surface fuzzing for RDDR deployments.
//!
//! Every workload the repo tested against before this crate was a
//! hand-written script, so the divergence surface actually exercised was
//! the one already imagined — the paper's CVE scenarios and little else.
//! `rddr-fuzz` makes the workload generator a first-class adversary
//! (MicroFuzz's pipeline-aware fuzzing of microservices; DSpot's generated
//! inputs for assessing computational diversity):
//!
//! * **Generation** ([`generate`]) produces *protocol-valid* input streams —
//!   SQL statements over MiniPg/MiniCockroach on both storage engines, HTTP
//!   requests with adversarial `Range`/`Transfer-Encoding`/header-casing
//!   against the httpsim family, and markdown/SVG/XML payloads across the
//!   libsim pairs.
//! * **Execution** drives each stream through a *fresh* full N-version
//!   deployment (diverse versions, filter pairs, quorum policies — the same
//!   shapes `rddr-vulns` uses) and watches the audit log for non-unanimous
//!   verdicts.
//! * **Triage** ([`Verdict`]) classifies each divergence: replayed on a
//!   *homogeneous* deployment it either disappears (**true positive** —
//!   version-gated behaviour, e.g. a CVE path) or persists (**false
//!   positive** — noise the de-noiser should have masked). A divergence
//!   that disappears when the composed [`rddr_net::FaultPlan`] is removed
//!   is **chaos-only** — recovery-policy divergence that exists only under
//!   a fault schedule.
//! * **Shrinking** ([`ddmin`]) reduces every finding to a minimal
//!   reproducer by deterministic delta-debugging on the input stream.
//!
//! Every run is a pure function of `(seed, config)`: the same seed yields a
//! byte-identical corpus, findings list, and shrunk reproducers, so CI can
//! gate on exact counts (`tests/fuzz_replay.rs`, the `fuzz_bench` binary,
//! and the committed corpus under `tests/corpus/`).

pub mod case;
pub mod corpus;
mod exec;
pub mod gen;
pub mod harness;
pub mod shrink;
pub mod target;
pub mod triage;

pub use case::{FuzzCase, Reproducer};
pub use gen::{generate, GenOpts};
pub use harness::{fuzz, replay, FuzzConfig, FuzzReport, ReplayOutcome, TargetStats};
pub use shrink::{ddmin, ShrinkOutcome};
pub use target::TargetId;
pub use triage::{Finding, Verdict};

/// Errors from deployment, drive, or corpus I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzError(String);

impl FuzzError {
    /// Creates an error from any message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl std::fmt::Display for FuzzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fuzz: {}", self.0)
    }
}

impl std::error::Error for FuzzError {}

impl From<String> for FuzzError {
    fn from(message: String) -> Self {
        Self(message)
    }
}

impl From<rddr_net::NetError> for FuzzError {
    fn from(e: rddr_net::NetError) -> Self {
        Self(format!("net: {e}"))
    }
}

impl From<rddr_pgsim::SqlError> for FuzzError {
    fn from(e: rddr_pgsim::SqlError) -> Self {
        Self(format!("sql: {e}"))
    }
}

impl From<std::io::Error> for FuzzError {
    fn from(e: std::io::Error) -> Self {
        Self(format!("io: {e}"))
    }
}
