//! Verdict taxonomy and finding records.
//!
//! A non-unanimous verdict found on the mixed (version-diverse) deployment
//! is not automatically a bug worth keeping. The triage oracle replays the
//! case on control deployments:
//!
//! 1. If a fault schedule was active, replay on a fresh mixed deployment
//!    *without* the plan. Divergence gone ⇒ [`Verdict::ChaosOnly`] — the
//!    behaviour is gated on the fault schedule (e.g. recovery-policy
//!    divergence after a torn WAL tail).
//! 2. Replay on a *uniform* deployment (N copies of instance 0).
//!    Divergence persists ⇒ [`Verdict::FalsePositive`] — the noise is not
//!    version-gated and the de-noiser should have masked it. Divergence
//!    gone ⇒ [`Verdict::TruePositive`] — behaviour gated on the version /
//!    implementation mix, which is exactly what N-versioning exists to
//!    catch.

use crate::case::FuzzCase;
use crate::target::TargetId;

/// The triage class of one finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Version-gated behaviour: disappears on a homogeneous deployment.
    TruePositive,
    /// De-noiser miss: persists on a homogeneous deployment.
    FalsePositive,
    /// Fault-schedule-gated: disappears when the composed
    /// [`rddr_net::FaultPlan`] is removed.
    ChaosOnly,
}

impl Verdict {
    /// Stable machine name (used in corpus files and reports).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Verdict::TruePositive => "true-positive",
            Verdict::FalsePositive => "false-positive",
            Verdict::ChaosOnly => "chaos-only",
        }
    }

    /// Parses a [`Verdict::name`] back.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        [
            Verdict::TruePositive,
            Verdict::FalsePositive,
            Verdict::ChaosOnly,
        ]
        .into_iter()
        .find(|v| v.name() == name)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One deduplicated, triaged, shrunk divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The deployment the divergence was found on.
    pub target: TargetId,
    /// The triage class (of the shrunk case).
    pub verdict: Verdict,
    /// Normalized divergence signature (dedup key): offending instance,
    /// structural flag, and the audit detail with value noise collapsed.
    pub signature: String,
    /// Raw audit detail of the first divergence record.
    pub detail: String,
    /// The generated case as found.
    pub original: FuzzCase,
    /// The minimal reproducer after delta-debugging.
    pub shrunk: FuzzCase,
    /// The derived per-case seed (recreates the chaos plan on replay).
    pub case_seed: u64,
    /// Whether a fault schedule was active during the finding run.
    pub chaos: bool,
    /// Predicate evaluations the shrink spent.
    pub shrink_evals: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_names_roundtrip() {
        for v in [
            Verdict::TruePositive,
            Verdict::FalsePositive,
            Verdict::ChaosOnly,
        ] {
            assert_eq!(Verdict::parse(v.name()), Some(v), "{v}");
        }
        assert_eq!(Verdict::parse("maybe"), None);
    }
}
