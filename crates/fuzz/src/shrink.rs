//! Deterministic delta-debugging on the input stream.
//!
//! Classic ddmin (Zeller & Hildebrandt): partition the stream into `n`
//! chunks, try each complement; if a complement still fails, adopt it and
//! coarsen, otherwise refine granularity until single items are removed.
//! The predicate order is fully deterministic, so the same failing case
//! and predicate shrink to byte-identical reproducers on every run. A
//! predicate-evaluation budget bounds the walk; on exhaustion the smallest
//! stream seen so far is returned.

/// The result of one shrink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// The minimal item stream that still satisfies the predicate.
    pub items: Vec<String>,
    /// Predicate evaluations spent.
    pub evals: usize,
}

/// Minimizes `items` with respect to `fails` (which must hold for the full
/// input, and is assumed deterministic). `budget` caps predicate calls.
pub fn ddmin<F>(items: &[String], budget: usize, mut fails: F) -> ShrinkOutcome
where
    F: FnMut(&[String]) -> bool,
{
    let mut current: Vec<String> = items.to_vec();
    let mut evals = 0usize;
    let mut n = 2usize;
    while current.len() >= 2 && n <= current.len() && evals < budget {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() && evals < budget {
            let complement: Vec<String> = current
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= start + chunk)
                .map(|(_, s)| s.clone())
                .collect();
            start += chunk;
            if complement.is_empty() {
                continue;
            }
            evals += 1;
            if fails(&complement) {
                current = complement;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    ShrinkOutcome {
        items: current,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shrinks_to_the_single_failing_item() {
        let input = items(&["a", "b", "BOOM", "c", "d", "e", "f", "g"]);
        let out = ddmin(&input, 1000, |c| c.iter().any(|s| s == "BOOM"));
        assert_eq!(out.items, items(&["BOOM"]));
    }

    #[test]
    fn keeps_a_required_pair_spread_apart() {
        let input = items(&["x", "ARM", "y", "z", "FIRE", "w"]);
        let out = ddmin(&input, 1000, |c| {
            let arm = c.iter().position(|s| s == "ARM");
            let fire = c.iter().position(|s| s == "FIRE");
            matches!((arm, fire), (Some(a), Some(f)) if a < f)
        });
        assert_eq!(out.items, items(&["ARM", "FIRE"]));
    }

    #[test]
    fn budget_bounds_predicate_calls() {
        let input: Vec<String> = (0..64).map(|i| format!("i{i}")).collect();
        let mut calls = 0usize;
        let out = ddmin(&input, 5, |c| {
            calls += 1;
            c.iter().any(|s| s == "i63")
        });
        assert!(out.evals <= 5);
        assert_eq!(calls, out.evals);
        assert!(out.items.iter().any(|s| s == "i63"), "must stay failing");
    }

    #[test]
    fn single_item_input_is_already_minimal() {
        let input = items(&["only"]);
        let out = ddmin(&input, 100, |_| true);
        assert_eq!(out.items, input);
        assert_eq!(out.evals, 0);
    }

    #[test]
    fn same_input_shrinks_identically() {
        let input: Vec<String> = (0..23).map(|i| format!("s{i}")).collect();
        let pred = |c: &[String]| c.iter().filter(|s| s.ends_with('3')).count() >= 2;
        let a = ddmin(&input, 400, pred);
        let b = ddmin(&input, 400, pred);
        assert_eq!(a, b);
    }
}
